//! Attack outcomes, budgets and scoring helpers shared by all attacks.
//!
//! The unified [`AttackRun`] report (outcome + telemetry) is what every
//! engine returns through [`Attack::execute`](crate::engine::Attack); the
//! legacy per-family reports ([`OlReport`], [`OgReport`]) remain as thin
//! internal shapes the per-attack workers produce before `execute` lifts
//! them into an [`AttackRun`].
//!
//! This module also owns the hand-rolled JSON plumbing (the workspace is
//! offline and carries no serde): the escape/emit helpers the campaign
//! report and the journal share, and a minimal flat-object parser the
//! append-only campaign journal replays its records through.

use crate::engine::ThreatModel;
use crate::error::AttackError;
use kratt_locking::{LockedCircuit, SecretKey};
use kratt_netlist::Circuit;
use std::collections::HashMap;
use std::time::Duration;

/// Legacy name of the shared resource budget; use
/// [`Budget`](crate::engine::Budget) in new code.
pub type AttackBudget = crate::engine::Budget;

/// The key-input names of a locked netlist, in `keyinput` order — the name
/// list every `KeyGuess` ↔ `SecretKey` conversion is defined over. Thin
/// alias of [`Circuit::key_input_names`], kept for the many existing
/// call sites.
pub fn key_input_names(circuit: &Circuit) -> Vec<String> {
    circuit.key_input_names()
}

/// A (possibly partial) key guess: one value per deciphered key input, keyed
/// by the key-input net name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyGuess {
    /// Deciphered key bits by key-input name; undeciphered bits are absent.
    pub bits: HashMap<String, bool>,
}

impl KeyGuess {
    /// An empty guess (nothing deciphered).
    pub fn new() -> Self {
        KeyGuess::default()
    }

    /// Inserts one deciphered bit.
    pub fn set(&mut self, name: impl Into<String>, value: bool) {
        self.bits.insert(name.into(), value);
    }

    /// Number of deciphered key bits.
    pub fn deciphered(&self) -> usize {
        self.bits.len()
    }

    /// Converts the guess into a full [`SecretKey`] over the given key-input
    /// names, filling undeciphered bits with `false`. For the strict
    /// conversion that rejects partial guesses, use
    /// `SecretKey::try_from(NamedGuess { .. })`.
    pub fn to_secret_key(&self, key_names: &[String]) -> SecretKey {
        SecretKey::from_bits(
            key_names
                .iter()
                .map(|n| self.bits.get(n).copied().unwrap_or(false))
                .collect(),
        )
    }
}

impl FromIterator<(String, bool)> for KeyGuess {
    fn from_iter<T: IntoIterator<Item = (String, bool)>>(iter: T) -> Self {
        KeyGuess {
            bits: iter.into_iter().collect(),
        }
    }
}

/// An exact key spelled out as a full guess over the given key-input names —
/// the `SecretKey` → `KeyGuess` direction of the conversion pair.
impl From<(&SecretKey, &[String])> for KeyGuess {
    fn from((key, key_names): (&SecretKey, &[String])) -> Self {
        key_names
            .iter()
            .cloned()
            .zip(key.bits().iter().copied())
            .collect()
    }
}

/// A [`KeyGuess`] paired with the full key-input name list: the carrier of
/// the strict `KeyGuess` → `SecretKey` conversion.
#[derive(Debug, Clone, Copy)]
pub struct NamedGuess<'a> {
    /// The (possibly partial) guess.
    pub guess: &'a KeyGuess,
    /// All key-input names of the locked netlist, in `keyinput` order.
    pub key_names: &'a [String],
}

/// The strict conversion: fails with [`AttackError::PartialKey`] unless the
/// guess deciphers *every* key input. The lenient fill-with-zero variant is
/// [`KeyGuess::to_secret_key`].
impl TryFrom<NamedGuess<'_>> for SecretKey {
    type Error = AttackError;

    fn try_from(named: NamedGuess<'_>) -> Result<Self, Self::Error> {
        let missing = named
            .key_names
            .iter()
            .filter(|n| !named.guess.bits.contains_key(*n))
            .count();
        if missing > 0 {
            return Err(AttackError::PartialKey {
                missing,
                total: named.key_names.len(),
            });
        }
        Ok(named.guess.to_secret_key(named.key_names))
    }
}

/// Report of an oracle-less attack: the guess plus timing, in the shape of
/// the paper's Table II / IV rows (`cdk/dk` and CPU seconds).
#[derive(Debug, Clone)]
pub struct OlReport {
    /// The (partial) key guess.
    pub guess: KeyGuess,
    /// Wall-clock runtime of the attack.
    pub runtime: Duration,
}

/// Outcome of an oracle-guided attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OgOutcome {
    /// A complete key was recovered.
    Key(SecretKey),
    /// The attack exhausted its budget (the paper's "OoT").
    OutOfTime,
}

impl OgOutcome {
    /// The recovered key, if any.
    pub fn key(&self) -> Option<&SecretKey> {
        match self {
            OgOutcome::Key(k) => Some(k),
            OgOutcome::OutOfTime => None,
        }
    }
}

/// Report of an oracle-guided attack: outcome plus work counters, in the
/// shape of the paper's Table III / V rows.
#[derive(Debug, Clone)]
pub struct OgReport {
    /// Outcome (key or out-of-time).
    pub outcome: OgOutcome,
    /// Wall-clock runtime of the attack.
    pub runtime: Duration,
    /// Attack iterations performed (DIPs for the SAT-based family).
    pub iterations: usize,
    /// Number of oracle queries spent.
    pub oracle_queries: u64,
}

/// The unified outcome of an [`AttackRun`], covering what every attack in
/// the suite can produce.
#[derive(Debug, Clone)]
pub enum AttackOutcome {
    /// A complete key (the QBF / structural-analysis / DIP-loop successes).
    ExactKey(SecretKey),
    /// A partial, per-bit guess (SCOPE-style oracle-less attacks, FALL
    /// candidates that were not confirmed).
    PartialGuess(KeyGuess),
    /// The original circuit recovered *without* the key (the removal
    /// attack's key-less success — the limitation that motivates KRATT's
    /// QBF formulation).
    RecoveredCircuit(Circuit),
    /// Budgets were exhausted before a result was obtained (the paper's
    /// "OoT" cells).
    OutOfBudget,
}

impl AttackOutcome {
    /// The exact key, if one was recovered.
    pub fn exact_key(&self) -> Option<&SecretKey> {
        match self {
            AttackOutcome::ExactKey(key) => Some(key),
            _ => None,
        }
    }

    /// The recovered circuit, if the attack produced one.
    pub fn recovered_circuit(&self) -> Option<&Circuit> {
        match self {
            AttackOutcome::RecoveredCircuit(c) => Some(c),
            _ => None,
        }
    }

    /// Whether the run ended by exhausting its budget.
    pub fn is_out_of_budget(&self) -> bool {
        matches!(self, AttackOutcome::OutOfBudget)
    }

    /// The outcome as a per-bit guess over the given key-input names (exact
    /// keys expand to a full guess; circuit recovery and out-of-budget give
    /// an empty guess).
    pub fn as_guess(&self, key_names: &[String]) -> KeyGuess {
        match self {
            AttackOutcome::ExactKey(key) => KeyGuess::from((key, key_names)),
            AttackOutcome::PartialGuess(guess) => guess.clone(),
            AttackOutcome::RecoveredCircuit(_) | AttackOutcome::OutOfBudget => KeyGuess::new(),
        }
    }

    /// Short machine-readable kind tag (used by the JSON report).
    pub fn kind(&self) -> &'static str {
        match self {
            AttackOutcome::ExactKey(_) => "exact-key",
            AttackOutcome::PartialGuess(_) => "partial-guess",
            AttackOutcome::RecoveredCircuit(_) => "recovered-circuit",
            AttackOutcome::OutOfBudget => "out-of-budget",
        }
    }
}

impl From<OgOutcome> for AttackOutcome {
    fn from(outcome: OgOutcome) -> Self {
        match outcome {
            OgOutcome::Key(key) => AttackOutcome::ExactKey(key),
            OgOutcome::OutOfTime => AttackOutcome::OutOfBudget,
        }
    }
}

/// Wall-clock duration of one named pipeline step of an attack run.
#[derive(Debug, Clone)]
pub struct StepTiming {
    /// Step name (`"qbf"`, `"dip-loop"`, ...).
    pub name: String,
    /// Time spent in the step.
    pub duration: Duration,
}

impl StepTiming {
    /// A step timing.
    pub fn new(name: impl Into<String>, duration: Duration) -> Self {
        StepTiming {
            name: name.into(),
            duration,
        }
    }
}

/// Outcome and timing of one member engine inside a portfolio race.
#[derive(Debug, Clone)]
pub struct MemberRun {
    /// Registry name of the member engine.
    pub name: String,
    /// The member's outcome kind (`"exact-key"`, `"out-of-budget"`,
    /// `"cancelled"`, `"error: ..."`).
    pub outcome: String,
    /// Wall-clock time from race start to this member's finish.
    pub wall: Duration,
    /// Whether the member's exact-key claim was independently verified.
    pub verified: bool,
    /// Whether this member won the race.
    pub winner: bool,
}

/// The unified report of one [`Attack::execute`](crate::engine::Attack)
/// call: the outcome plus the telemetry every attack family shares
/// (runtime, iteration and oracle-query counters, per-step durations).
/// Subsumes the common core of the legacy `OlReport` / `OgReport` /
/// `FallReport` / `KrattReport` shapes.
#[derive(Debug, Clone)]
pub struct AttackRun {
    /// Registry name of the attack that produced this run.
    pub attack: String,
    /// Threat model the run executed under.
    pub threat_model: ThreatModel,
    /// The outcome.
    pub outcome: AttackOutcome,
    /// Wall-clock runtime of the whole run.
    pub runtime: Duration,
    /// Attack iterations performed (DIPs, analysed bits/nodes, ...).
    pub iterations: usize,
    /// Oracle queries spent (0 under the oracle-less model).
    pub oracle_queries: u64,
    /// Per-step durations.
    pub steps: Vec<StepTiming>,
    /// Per-member outcomes of a portfolio race (empty for single engines).
    pub members: Vec<MemberRun>,
}

impl AttackRun {
    /// An out-of-budget run (the shape every attack returns when its budget
    /// is exhausted before any work happened).
    pub fn out_of_budget(attack: &str, model: ThreatModel) -> Self {
        AttackRun {
            attack: attack.to_string(),
            threat_model: model,
            outcome: AttackOutcome::OutOfBudget,
            runtime: Duration::ZERO,
            iterations: 0,
            oracle_queries: 0,
            steps: Vec::new(),
            members: Vec::new(),
        }
    }

    /// The member row of the engine that won a portfolio race, if this run
    /// came from one.
    pub fn winning_member(&self) -> Option<&MemberRun> {
        self.members.iter().find(|m| m.winner)
    }

    /// The exact key, if one was recovered.
    pub fn exact_key(&self) -> Option<&SecretKey> {
        self.outcome.exact_key()
    }

    /// Renders the run as a machine-readable JSON object (the CLI's
    /// `--json` output). Written by hand because the workspace is offline
    /// and carries no serde.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        json_str(&mut out, "attack", &self.attack);
        out.push(',');
        json_str(&mut out, "threat_model", &self.threat_model.to_string());
        out.push_str(",\"outcome\":{");
        json_str(&mut out, "kind", self.outcome.kind());
        match &self.outcome {
            AttackOutcome::ExactKey(key) => {
                out.push(',');
                // Width-preserving hex, not the old bit-vector dump: a
                // 128-bit key renders as `128'h...`, and
                // `SecretKey::from_hex` round-trips it.
                json_str(&mut out, "key", &key.to_hex());
                out.push_str(&format!(",\"width\":{}", key.bits().len()));
            }
            AttackOutcome::PartialGuess(guess) => {
                out.push_str(",\"bits\":{");
                let mut names: Vec<&String> = guess.bits.keys().collect();
                names.sort();
                for (i, name) in names.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json_key(&mut out, name);
                    out.push_str(if guess.bits[*name] { "true" } else { "false" });
                }
                out.push('}');
            }
            AttackOutcome::RecoveredCircuit(circuit) => {
                out.push_str(&format!(
                    ",\"gates\":{},\"inputs\":{},\"outputs\":{}",
                    circuit.num_gates(),
                    circuit.num_inputs(),
                    circuit.num_outputs()
                ));
            }
            AttackOutcome::OutOfBudget => {}
        }
        out.push_str(&format!(
            "}},\"runtime_secs\":{:.6},\"iterations\":{},\"oracle_queries\":{},\"steps\":[",
            self.runtime.as_secs_f64(),
            self.iterations,
            self.oracle_queries
        ));
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_str(&mut out, "name", &step.name);
            out.push_str(&format!(",\"secs\":{:.6}}}", step.duration.as_secs_f64()));
        }
        out.push(']');
        // Only portfolio runs carry member rows; single-engine output is
        // byte-identical to what it was before portfolios existed.
        if !self.members.is_empty() {
            out.push_str(",\"members\":[");
            for (i, member) in self.members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('{');
                json_str(&mut out, "name", &member.name);
                out.push(',');
                json_str(&mut out, "outcome", &member.outcome);
                out.push_str(&format!(
                    ",\"wall_secs\":{:.6},\"verified\":{},\"winner\":{}}}",
                    member.wall.as_secs_f64(),
                    member.verified,
                    member.winner
                ));
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

/// Appends `"key":"escaped value"`. Shared with the campaign report.
pub(crate) fn json_str(out: &mut String, key: &str, value: &str) {
    json_key(out, key);
    out.push('"');
    json_escape(out, value);
    out.push('"');
}

/// Appends `"escaped key":`. Shared with the campaign report and journal.
pub(crate) fn json_key(out: &mut String, key: &str) {
    out.push('"');
    json_escape(out, key);
    out.push_str("\":");
}

fn json_escape(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A scalar value of a flat JSON object — all the journal and stream
/// records need (records are deliberately one level deep so a torn line
/// is trivially detectable).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JsonScalar {
    /// A JSON string.
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonScalar {
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one flat JSON object line (`{"k":"v","n":1.5,"b":true}`) into its
/// key/value pairs. Returns `None` on any syntax error — the journal treats
/// a malformed line (e.g. a torn final write after a crash) as absent.
pub(crate) fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonScalar)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut pairs = Vec::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_json_string(&mut chars)?;
            skip_ws(&mut chars);
            if chars.next()? != ':' {
                return None;
            }
            skip_ws(&mut chars);
            let value = parse_json_scalar(&mut chars)?;
            pairs.push((key, value));
            skip_ws(&mut chars);
            match chars.next()? {
                ',' => continue,
                '}' => break,
                _ => return None,
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None;
    }
    Some(pairs)
}

type CharStream<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn skip_ws(chars: &mut CharStream<'_>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_json_string(chars: &mut CharStream<'_>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let value = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(value)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_json_scalar(chars: &mut CharStream<'_>) -> Option<JsonScalar> {
    match chars.peek()? {
        '"' => parse_json_string(chars).map(JsonScalar::Str),
        't' | 'f' | 'n' => {
            let mut word = String::new();
            while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                word.push(chars.next()?);
            }
            match word.as_str() {
                "true" => Some(JsonScalar::Bool(true)),
                "false" => Some(JsonScalar::Bool(false)),
                "null" => Some(JsonScalar::Null),
                _ => None,
            }
        }
        _ => {
            let mut literal = String::new();
            while chars
                .peek()
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            {
                literal.push(chars.next()?);
            }
            literal.parse::<f64>().ok().map(JsonScalar::Num)
        }
    }
}

/// Scores a guess against the ground-truth secret of a locked circuit:
/// returns `(cdk, dk)` — correctly deciphered and deciphered key bits — the
/// two numbers reported per cell in the paper's Table II/IV/V.
pub fn score_guess(locked: &LockedCircuit, guess: &KeyGuess) -> (usize, usize) {
    let key_names = key_input_names(&locked.circuit);
    let mut correct = 0;
    let mut deciphered = 0;
    for (index, name) in key_names.iter().enumerate() {
        if let Some(&value) = guess.bits.get(name) {
            deciphered += 1;
            if locked.secret.bits().get(index).copied() == Some(value) {
                correct += 1;
            }
        }
    }
    (correct, deciphered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_locking::{LockingTechnique, SarLock};
    use kratt_netlist::GateType;
    use std::time::Duration;

    fn locked_toy() -> LockedCircuit {
        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x = c.add_input("x").unwrap();
        let ab = c.add_gate(GateType::And, "ab", &[a, b]).unwrap();
        let o = c.add_gate(GateType::Or, "o", &[ab, x]).unwrap();
        c.mark_output(o);
        SarLock::new(3)
            .lock(&c, &SecretKey::from_u64(0b101, 3))
            .unwrap()
    }

    #[test]
    fn guess_scoring_counts_correct_and_deciphered() {
        let locked = locked_toy();
        let mut guess = KeyGuess::new();
        guess.set("keyinput0", true); // correct (bit 0 of 0b101)
        guess.set("keyinput1", true); // wrong (bit 1 is 0)
                                      // keyinput2 left undeciphered.
        assert_eq!(score_guess(&locked, &guess), (1, 2));
        assert_eq!(guess.deciphered(), 2);
    }

    #[test]
    fn guess_converts_to_secret_key_with_default_false() {
        let mut guess = KeyGuess::new();
        guess.set("keyinput2", true);
        let names: Vec<String> = (0..3).map(|i| format!("keyinput{i}")).collect();
        let key = guess.to_secret_key(&names);
        assert_eq!(key.to_u64(), 0b100);
    }

    #[test]
    fn strict_conversion_rejects_partial_guesses() {
        let names: Vec<String> = (0..3).map(|i| format!("keyinput{i}")).collect();
        let mut guess = KeyGuess::new();
        guess.set("keyinput0", true);
        assert!(matches!(
            SecretKey::try_from(NamedGuess {
                guess: &guess,
                key_names: &names
            }),
            Err(AttackError::PartialKey {
                missing: 2,
                total: 3
            })
        ));
        guess.set("keyinput1", false);
        guess.set("keyinput2", true);
        let key = SecretKey::try_from(NamedGuess {
            guess: &guess,
            key_names: &names,
        })
        .unwrap();
        assert_eq!(key.to_u64(), 0b101);
    }

    #[test]
    fn exact_key_round_trips_through_a_full_guess() {
        let names: Vec<String> = (0..4).map(|i| format!("keyinput{i}")).collect();
        let key = SecretKey::from_u64(0b1010, 4);
        let guess = KeyGuess::from((&key, names.as_slice()));
        assert_eq!(guess.deciphered(), 4);
        let back = SecretKey::try_from(NamedGuess {
            guess: &guess,
            key_names: &names,
        })
        .unwrap();
        assert_eq!(back.to_u64(), key.to_u64());
    }

    #[test]
    fn budget_default_has_a_time_limit() {
        let budget = AttackBudget::default();
        assert!(budget.time_limit.is_some());
        let custom = AttackBudget::with_time_limit(Duration::from_secs(5));
        assert_eq!(custom.time_limit, Some(Duration::from_secs(5)));
    }

    #[test]
    fn outcome_key_accessor() {
        let outcome = OgOutcome::Key(SecretKey::from_u64(3, 2));
        assert!(outcome.key().is_some());
        assert!(OgOutcome::OutOfTime.key().is_none());
    }

    #[test]
    fn og_outcome_lifts_into_the_unified_outcome() {
        let lifted = AttackOutcome::from(OgOutcome::Key(SecretKey::from_u64(1, 1)));
        assert!(lifted.exact_key().is_some());
        assert!(!lifted.is_out_of_budget());
        assert!(AttackOutcome::from(OgOutcome::OutOfTime).is_out_of_budget());
    }

    #[test]
    fn attack_run_json_is_well_formed() {
        let mut run = AttackRun::out_of_budget("sat", ThreatModel::OracleGuided);
        let json = run.to_json();
        assert!(json.contains("\"attack\":\"sat\""));
        assert!(json.contains("\"kind\":\"out-of-budget\""));

        run.outcome = AttackOutcome::ExactKey(SecretKey::from_u64(0b10, 2));
        run.steps
            .push(StepTiming::new("dip-loop", Duration::from_millis(1500)));
        let json = run.to_json();
        assert!(json.contains("\"kind\":\"exact-key\""));
        assert!(json.contains("\"key\":\"2'h2\""), "keys render as hex");
        assert!(json.contains("\"width\":2"));
        assert!(json.contains("\"name\":\"dip-loop\""));
        assert!(json.contains("\"secs\":1.500000"));

        let mut guess = KeyGuess::new();
        guess.set("key\"input0", true);
        run.outcome = AttackOutcome::PartialGuess(guess);
        assert!(run.to_json().contains("\"key\\\"input0\":true"));
    }

    #[test]
    fn flat_object_parser_handles_records_and_rejects_torn_lines() {
        let pairs = parse_flat_object(
            r#"{"type":"cell","fp":"00ff","cdk":3,"secs":1.5,"ok":true,"err":null,"esc":"a\"b\\c\nd"}"#,
        )
        .expect("well-formed record");
        assert_eq!(pairs[0], ("type".into(), JsonScalar::Str("cell".into())));
        assert_eq!(pairs[1].1.as_str(), Some("00ff"));
        assert_eq!(pairs[2].1.as_f64(), Some(3.0));
        assert_eq!(pairs[3].1, JsonScalar::Num(1.5));
        assert_eq!(pairs[4].1, JsonScalar::Bool(true));
        assert_eq!(pairs[5].1, JsonScalar::Null);
        assert_eq!(pairs[6].1.as_str(), Some("a\"b\\c\nd"));
        assert_eq!(parse_flat_object("{}"), Some(Vec::new()));
        // Torn / malformed lines (crash mid-append) parse to None.
        assert!(parse_flat_object(r#"{"type":"cell","fp":"00"#).is_none());
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_none());
        assert!(parse_flat_object(r#"{"a":{"nested":1}}"#).is_none());
        assert!(parse_flat_object("").is_none());
    }

    #[test]
    fn outcome_as_guess_covers_every_variant() {
        let names: Vec<String> = (0..2).map(|i| format!("keyinput{i}")).collect();
        let exact = AttackOutcome::ExactKey(SecretKey::from_u64(0b01, 2));
        assert_eq!(exact.as_guess(&names).deciphered(), 2);
        assert!(exact.as_guess(&names).bits["keyinput0"]);
        assert_eq!(AttackOutcome::OutOfBudget.as_guess(&names).deciphered(), 0);
        assert_eq!(AttackOutcome::OutOfBudget.kind(), "out-of-budget");
    }
}
