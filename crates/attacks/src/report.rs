//! Attack outcomes, budgets and scoring helpers shared by all attacks.

use kratt_locking::{LockedCircuit, SecretKey};
use std::collections::HashMap;
use std::time::Duration;

/// Resource budget for an oracle-guided attack. The paper gives the baseline
/// attacks a two-day limit on a 32-core server; this reproduction scales the
/// limits down but keeps the semantics: an exhausted budget is reported as
/// "out of time" rather than failure.
#[derive(Debug, Clone)]
pub struct AttackBudget {
    /// Wall-clock limit for the whole attack.
    pub time_limit: Option<Duration>,
    /// Maximum number of attack iterations (DIPs, refinement rounds, ...).
    pub max_iterations: usize,
    /// Conflict budget handed to each individual SAT call.
    pub sat_conflict_limit: Option<u64>,
}

impl Default for AttackBudget {
    fn default() -> Self {
        AttackBudget {
            time_limit: Some(Duration::from_secs(60)),
            max_iterations: 100_000,
            sat_conflict_limit: None,
        }
    }
}

impl AttackBudget {
    /// A budget with only a wall-clock limit.
    pub fn with_time_limit(limit: Duration) -> Self {
        AttackBudget { time_limit: Some(limit), ..Default::default() }
    }
}

/// A (possibly partial) key guess: one value per deciphered key input, keyed
/// by the key-input net name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KeyGuess {
    /// Deciphered key bits by key-input name; undeciphered bits are absent.
    pub bits: HashMap<String, bool>,
}

impl KeyGuess {
    /// An empty guess (nothing deciphered).
    pub fn new() -> Self {
        KeyGuess::default()
    }

    /// Inserts one deciphered bit.
    pub fn set(&mut self, name: impl Into<String>, value: bool) {
        self.bits.insert(name.into(), value);
    }

    /// Number of deciphered key bits.
    pub fn deciphered(&self) -> usize {
        self.bits.len()
    }

    /// Converts the guess into a full [`SecretKey`] over the given key-input
    /// names, filling undeciphered bits with `false`.
    pub fn to_secret_key(&self, key_names: &[String]) -> SecretKey {
        SecretKey::from_bits(
            key_names.iter().map(|n| self.bits.get(n).copied().unwrap_or(false)).collect(),
        )
    }
}

impl FromIterator<(String, bool)> for KeyGuess {
    fn from_iter<T: IntoIterator<Item = (String, bool)>>(iter: T) -> Self {
        KeyGuess { bits: iter.into_iter().collect() }
    }
}

/// Report of an oracle-less attack: the guess plus timing, in the shape of
/// the paper's Table II / IV rows (`cdk/dk` and CPU seconds).
#[derive(Debug, Clone)]
pub struct OlReport {
    /// The (partial) key guess.
    pub guess: KeyGuess,
    /// Wall-clock runtime of the attack.
    pub runtime: Duration,
}

/// Outcome of an oracle-guided attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OgOutcome {
    /// A complete key was recovered.
    Key(SecretKey),
    /// The attack exhausted its budget (the paper's "OoT").
    OutOfTime,
}

impl OgOutcome {
    /// The recovered key, if any.
    pub fn key(&self) -> Option<&SecretKey> {
        match self {
            OgOutcome::Key(k) => Some(k),
            OgOutcome::OutOfTime => None,
        }
    }
}

/// Report of an oracle-guided attack: outcome plus work counters, in the
/// shape of the paper's Table III / V rows.
#[derive(Debug, Clone)]
pub struct OgReport {
    /// Outcome (key or out-of-time).
    pub outcome: OgOutcome,
    /// Wall-clock runtime of the attack.
    pub runtime: Duration,
    /// Attack iterations performed (DIPs for the SAT-based family).
    pub iterations: usize,
    /// Number of oracle queries spent.
    pub oracle_queries: u64,
}

/// Scores a guess against the ground-truth secret of a locked circuit:
/// returns `(cdk, dk)` — correctly deciphered and deciphered key bits — the
/// two numbers reported per cell in the paper's Table II/IV/V.
pub fn score_guess(locked: &LockedCircuit, guess: &KeyGuess) -> (usize, usize) {
    let key_names: Vec<String> = locked
        .circuit
        .key_inputs()
        .iter()
        .map(|&n| locked.circuit.net_name(n).to_string())
        .collect();
    let mut correct = 0;
    let mut deciphered = 0;
    for (index, name) in key_names.iter().enumerate() {
        if let Some(&value) = guess.bits.get(name) {
            deciphered += 1;
            if locked.secret.bits().get(index).copied() == Some(value) {
                correct += 1;
            }
        }
    }
    (correct, deciphered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_locking::{LockingTechnique, SarLock};
    use kratt_netlist::{Circuit, GateType};

    fn locked_toy() -> LockedCircuit {
        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x = c.add_input("x").unwrap();
        let ab = c.add_gate(GateType::And, "ab", &[a, b]).unwrap();
        let o = c.add_gate(GateType::Or, "o", &[ab, x]).unwrap();
        c.mark_output(o);
        SarLock::new(3).lock(&c, &SecretKey::from_u64(0b101, 3)).unwrap()
    }

    #[test]
    fn guess_scoring_counts_correct_and_deciphered() {
        let locked = locked_toy();
        let mut guess = KeyGuess::new();
        guess.set("keyinput0", true); // correct (bit 0 of 0b101)
        guess.set("keyinput1", true); // wrong (bit 1 is 0)
        // keyinput2 left undeciphered.
        assert_eq!(score_guess(&locked, &guess), (1, 2));
        assert_eq!(guess.deciphered(), 2);
    }

    #[test]
    fn guess_converts_to_secret_key_with_default_false() {
        let mut guess = KeyGuess::new();
        guess.set("keyinput2", true);
        let names: Vec<String> = (0..3).map(|i| format!("keyinput{i}")).collect();
        let key = guess.to_secret_key(&names);
        assert_eq!(key.to_u64(), 0b100);
    }

    #[test]
    fn budget_default_has_a_time_limit() {
        let budget = AttackBudget::default();
        assert!(budget.time_limit.is_some());
        let custom = AttackBudget::with_time_limit(Duration::from_secs(5));
        assert_eq!(custom.time_limit, Some(Duration::from_secs(5)));
    }

    #[test]
    fn outcome_key_accessor() {
        let outcome = OgOutcome::Key(SecretKey::from_u64(3, 2));
        assert!(outcome.key().is_some());
        assert!(OgOutcome::OutOfTime.key().is_none());
    }
}
