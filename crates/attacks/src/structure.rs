//! Structural primitives shared by the removal attack and by KRATT's logic
//! removal step.

use kratt_netlist::analysis::{fanout_cone_gates_in, fanout_map, topological_order};
use kratt_netlist::{Circuit, GateId, NetId};
use std::collections::{HashMap, HashSet};

/// Finds the *critical signal* `cs1` of a locked netlist: the output of the
/// first gate (in topological order) on the paths from the key inputs to the
/// primary outputs through which **all** key influence flows (the paper's
/// Section III-A, step (i)).
///
/// Concretely, the candidate gates are those reachable from every key input;
/// among them, `cs1` is the output of the topologically first gate whose
/// removal disconnects every key input from every primary output — i.e. the
/// single merge point of the locking/restore unit.
///
/// Returns `None` if the circuit has no key inputs or no such single merge
/// point exists (e.g. random XOR locking, where key gates are scattered).
pub fn find_critical_signal(circuit: &Circuit) -> Option<NetId> {
    let key_inputs = circuit.key_inputs();
    if key_inputs.is_empty() {
        return None;
    }
    // One fan-out map serves every traversal below: the per-key-input cones
    // and each candidate's reachability re-check.
    let fanout = fanout_map(circuit);
    // Gates reachable from every key input.
    let mut common: Option<HashSet<GateId>> = None;
    for &key in &key_inputs {
        let cone = fanout_cone_gates_in(circuit, &fanout, key);
        common = Some(match common {
            None => cone,
            Some(existing) => existing.intersection(&cone).copied().collect(),
        });
        if common.as_ref().map(|c| c.is_empty()).unwrap_or(false) {
            return None;
        }
    }
    let common = common?;
    let order = topological_order(circuit).ok()?;
    order
        .into_iter()
        .filter(|gid| common.contains(gid))
        .map(|gid| circuit.gate(gid).output)
        .find(|&candidate| !keys_reach_outputs_avoiding(circuit, &fanout, &key_inputs, candidate))
}

/// Whether any key input can still reach a primary output when forward
/// traversal is not allowed to pass through `blocked`. `fanout` is the
/// caller's shared fan-out map.
fn keys_reach_outputs_avoiding(
    circuit: &Circuit,
    fanout: &HashMap<NetId, Vec<GateId>>,
    key_inputs: &[NetId],
    blocked: NetId,
) -> bool {
    let outputs: HashSet<NetId> = circuit.outputs().iter().copied().collect();
    let mut stack: Vec<NetId> = key_inputs
        .iter()
        .copied()
        .filter(|&n| n != blocked)
        .collect();
    let mut seen: HashSet<NetId> = stack.iter().copied().collect();
    while let Some(net) = stack.pop() {
        if outputs.contains(&net) {
            return true;
        }
        if let Some(consumers) = fanout.get(&net) {
            for &gid in consumers {
                let out = circuit.gate(gid).output;
                if out == blocked {
                    continue;
                }
                if seen.insert(out) {
                    stack.push(out);
                }
            }
        }
    }
    false
}

/// Finds, for each protected primary input of the extracted locking/restore
/// unit, the key input(s) associated with it: the key inputs that share a
/// gate with the protected input inside the unit (possibly through
/// inverters), as in the paper's Section III-A. Anti-SAT style units
/// associate two key inputs per protected input.
///
/// The returned pairs are `(protected input name, key input names)`.
pub fn associate_keys_with_inputs(unit: &Circuit) -> Vec<(String, Vec<String>)> {
    let key_inputs: HashSet<NetId> = unit.key_inputs().into_iter().collect();
    let data_inputs: Vec<NetId> = unit.data_inputs();

    // Map each net to the primary input it transitively buffers/inverts, if
    // it is just a chain of NOT/BUF gates from that input.
    let mut alias: std::collections::HashMap<NetId, NetId> = std::collections::HashMap::new();
    for &pi in unit.inputs() {
        alias.insert(pi, pi);
    }
    if let Ok(order) = topological_order(unit) {
        for gid in order {
            let gate = unit.gate(gid);
            if gate.inputs.len() == 1 {
                if let Some(&root) = alias.get(&gate.inputs[0]) {
                    alias.insert(gate.output, root);
                }
            }
        }
    }

    let mut result = Vec::new();
    for &ppi in &data_inputs {
        let mut keys: Vec<String> = Vec::new();
        for (_, gate) in unit.gates() {
            let roots: Vec<NetId> = gate
                .inputs
                .iter()
                .filter_map(|n| alias.get(n).copied())
                .collect();
            if roots.contains(&ppi) {
                for &root in &roots {
                    if key_inputs.contains(&root) {
                        let name = unit.net_name(root).to_string();
                        if !keys.contains(&name) {
                            keys.push(name);
                        }
                    }
                }
            }
        }
        result.push((unit.net_name(ppi).to_string(), keys));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_locking::{AntiSat, LockingTechnique, SarLock, SecretKey, TtLock};
    use kratt_netlist::transform::extract_cone;
    use kratt_netlist::GateType;

    fn majority() -> Circuit {
        let mut c = Circuit::new("majority");
        let a = c.add_input("x1").unwrap();
        let b = c.add_input("x2").unwrap();
        let x = c.add_input("x3").unwrap();
        let ab = c.add_gate(GateType::And, "ab", &[a, b]).unwrap();
        let ax = c.add_gate(GateType::And, "ax", &[a, x]).unwrap();
        let bx = c.add_gate(GateType::And, "bx", &[b, x]).unwrap();
        let maj = c.add_gate(GateType::Or, "f", &[ab, ax, bx]).unwrap();
        c.mark_output(maj);
        c
    }

    #[test]
    fn critical_signal_of_sarlock_is_the_flip_root() {
        let locked = SarLock::new(3)
            .lock(&majority(), &SecretKey::from_u64(0b100, 3))
            .unwrap();
        let cs1 = find_critical_signal(&locked.circuit).expect("SFLT has a critical signal");
        // The critical signal is the flip root: its only consumer is the XOR
        // that corrupts the primary output, and its cone contains every key
        // input together with the hard-wired mask logic.
        let fanout = kratt_netlist::analysis::fanout_map(&locked.circuit);
        let consumers = &fanout[&cs1];
        assert_eq!(consumers.len(), 1);
        let consumer = locked.circuit.gate(consumers[0]);
        assert_eq!(consumer.ty, GateType::Xor);
        assert!(locked.circuit.is_output(consumer.output));
        let unit = extract_cone(&locked.circuit, &[cs1], &[]).unwrap();
        assert_eq!(unit.key_inputs().len(), 3);
        assert!(
            unit.num_gates() > 6,
            "unit must include comparator and mask logic"
        );
    }

    #[test]
    fn critical_signal_of_ttlock_is_the_restore_root() {
        let locked = TtLock::new(3)
            .lock(&majority(), &SecretKey::from_u64(0b010, 3))
            .unwrap();
        let cs1 = find_critical_signal(&locked.circuit).expect("DFLT has a critical signal");
        let unit = extract_cone(&locked.circuit, &[cs1], &[]).unwrap();
        // The restore unit depends on all 3 key inputs and the 3 PPIs only.
        assert_eq!(unit.key_inputs().len(), 3);
        assert_eq!(unit.data_inputs().len(), 3);
    }

    #[test]
    fn no_key_inputs_means_no_critical_signal() {
        assert!(find_critical_signal(&majority()).is_none());
    }

    #[test]
    fn association_pairs_each_ppi_with_one_key_for_comparator_units() {
        let locked = TtLock::new(3)
            .lock(&majority(), &SecretKey::from_u64(0b001, 3))
            .unwrap();
        let cs1 = find_critical_signal(&locked.circuit).unwrap();
        let unit = extract_cone(&locked.circuit, &[cs1], &[]).unwrap();
        let assoc = associate_keys_with_inputs(&unit);
        assert_eq!(assoc.len(), 3);
        for (ppi, keys) in &assoc {
            assert_eq!(keys.len(), 1, "PPI {ppi} should pair with exactly one key");
        }
        // Each key input appears exactly once overall.
        let mut all_keys: Vec<&String> = assoc.iter().flat_map(|(_, k)| k).collect();
        all_keys.sort();
        all_keys.dedup();
        assert_eq!(all_keys.len(), 3);
    }

    #[test]
    fn association_pairs_each_ppi_with_two_keys_for_anti_sat() {
        let locked = AntiSat::new(6)
            .lock(&majority(), &SecretKey::from_u64(0b101_010, 6))
            .unwrap();
        let cs1 = find_critical_signal(&locked.circuit).unwrap();
        let unit = extract_cone(&locked.circuit, &[cs1], &[]).unwrap();
        let assoc = associate_keys_with_inputs(&unit);
        assert_eq!(assoc.len(), 3);
        for (ppi, keys) in &assoc {
            assert_eq!(
                keys.len(),
                2,
                "PPI {ppi} should pair with two keys in Anti-SAT"
            );
        }
    }
}
