//! The FALL attack (functional analysis attacks on logic locking), the
//! baseline of Sirone & Subramanyan (DATE'19) that the paper runs against its
//! TTLock- and SFLL-locked circuits ("without success").
//!
//! FALL targets stripped-functionality locking. It works in three stages:
//!
//! 1. **Structural analysis** — locate the restore unit (to learn which
//!    primary inputs are protected and how they pair with key inputs) and
//!    collect candidate nodes of the functionality-stripped circuit whose
//!    fan-in support is exactly the protected inputs.
//! 2. **Functional analysis** — test each candidate node for unateness in
//!    every support variable. The perturb comparator of TTLock / SFLL-HD0 is
//!    a minterm of the protected pattern, so it is unate in every variable
//!    and its polarities spell out the secret: positive unate ⇒ key bit 1,
//!    negative unate ⇒ key bit 0.
//! 3. **Key confirmation** — check each candidate key against the oracle
//!    (when one is available) and report the first confirmed key.
//!
//! The attack inherits FALL's limitations, which is exactly what the paper
//! exploits: it only applies when a comparator-shaped, PPI-only cone survives
//! in the netlist, so resynthesis, non-zero Hamming distances or non-SFLL
//! techniques leave it with unconfirmed (or no) candidates.

use crate::engine::{Attack, AttackRequest, CostClass, Deadline, ThreatModel};
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::report::{key_input_names, AttackOutcome, AttackRun, KeyGuess, OgOutcome, StepTiming};
use crate::structure::{associate_keys_with_inputs, find_critical_signal};
use kratt_locking::SecretKey;
use kratt_netlist::analysis::support;
use kratt_netlist::sim::Simulator;
use kratt_netlist::transform::extract_cone;
use kratt_netlist::{Circuit, NetId};
use kratt_sat::{Encoder, Lit, Solver, SolverConfig, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

/// Protected primary inputs and, per input, its associated key input(s).
type ProtectedInputs = (Vec<String>, Vec<(String, Vec<String>)>);

/// Tuning knobs of the FALL attack.
#[derive(Debug, Clone)]
pub struct FallConfig {
    /// Maximum number of candidate nodes whose unateness is analysed.
    pub max_candidate_nodes: usize,
    /// Maximum number of candidate keys carried into key confirmation.
    pub max_candidate_keys: usize,
    /// Conflict budget per unateness SAT query.
    pub sat_conflict_limit: Option<u64>,
    /// Random input patterns used per key-confirmation check (the all-zero
    /// and all-one patterns are always included).
    pub confirmation_patterns: usize,
    /// Wall-clock budget.
    pub time_limit: Option<Duration>,
    /// Seed of the confirmation pattern generator.
    pub seed: u64,
}

impl Default for FallConfig {
    fn default() -> Self {
        FallConfig {
            max_candidate_nodes: 4096,
            max_candidate_keys: 64,
            sat_conflict_limit: Some(100_000),
            confirmation_patterns: 64,
            time_limit: Some(Duration::from_secs(60)),
            seed: 0xfa11,
        }
    }
}

/// Report of a FALL run.
#[derive(Debug, Clone)]
pub struct FallReport {
    /// Candidate keys produced by the functional analysis, most promising
    /// first (fewer non-unate rejections ⇒ earlier).
    pub candidates: Vec<KeyGuess>,
    /// The confirmed key, when an oracle was supplied and one candidate
    /// survived confirmation; [`OgOutcome::OutOfTime`] otherwise.
    pub outcome: OgOutcome,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// Number of candidate nodes whose unateness was analysed.
    pub analyzed_nodes: usize,
}

impl FallReport {
    /// The confirmed key, if any.
    pub fn key(&self) -> Option<&SecretKey> {
        self.outcome.key()
    }
}

/// Unateness of a node in one of its support variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unateness {
    Positive,
    Negative,
    Binate,
}

/// The FALL attack. See the module documentation.
#[derive(Debug, Clone, Default)]
pub struct FallAttack {
    config: FallConfig,
}

impl FallAttack {
    /// A FALL attack with default settings.
    pub fn new() -> Self {
        FallAttack::default()
    }

    /// A FALL attack with explicit settings.
    pub fn with_config(config: FallConfig) -> Self {
        FallAttack { config }
    }

    /// The full pipeline: structural analysis, unateness analysis, and —
    /// when an oracle is present — key confirmation. [`Attack::execute`]
    /// is the public entry point; a netlist FALL simply cannot handle (no
    /// critical signal, no comparator-shaped cones) produces an empty
    /// candidate list, not an error, matching how the original tool
    /// reports "no key found".
    fn run_inner(
        &self,
        locked: &Circuit,
        oracle: Option<&Oracle>,
        deadline: Deadline,
    ) -> Result<FallReport, AttackError> {
        let key_inputs = locked.key_inputs();
        if key_inputs.is_empty() {
            return Err(AttackError::NoKeyInputs);
        }
        if let Some(oracle) = oracle {
            for &input in &locked.data_inputs() {
                let name = locked.net_name(input);
                if oracle.circuit().find_net(name).is_none() {
                    return Err(AttackError::InterfaceMismatch(name.to_string()));
                }
            }
        }
        let key_names = key_input_names(locked);

        // --- Stage 1: restore-unit structure and candidate FSC nodes. -----
        let Some((ppi_names, associations)) = self.protected_inputs(locked) else {
            return Ok(FallReport {
                candidates: Vec::new(),
                outcome: OgOutcome::OutOfTime,
                runtime: deadline.elapsed(),
                analyzed_nodes: 0,
            });
        };
        let ppi_set: BTreeSet<&str> = ppi_names.iter().map(String::as_str).collect();
        let mut candidate_nodes: Vec<NetId> = Vec::new();
        for (_, gate) in locked.gates() {
            if candidate_nodes.len() >= self.config.max_candidate_nodes {
                break;
            }
            let sup: BTreeSet<&str> = support(locked, &[gate.output])
                .into_iter()
                .map(|n| locked.net_name(n))
                .collect();
            if sup == ppi_set {
                candidate_nodes.push(gate.output);
            }
        }

        // --- Stage 2: unateness analysis. ----------------------------------
        // Each candidate keeps the protected-input pattern it came from, so
        // key confirmation can probe the oracle exactly where a wrong
        // stripped-functionality key would show (random patterns alone almost
        // never hit a point-function corruption).
        let mut candidates: Vec<(KeyGuess, Vec<(String, bool)>)> = Vec::new();
        let mut analyzed = 0usize;
        for &node in &candidate_nodes {
            if candidates.len() >= self.config.max_candidate_keys {
                break;
            }
            if deadline.expired() {
                break;
            }
            analyzed += 1;
            let Some(pattern) = self.unate_pattern(locked, node, &ppi_names, &deadline)? else {
                continue;
            };
            // Map the protected pattern to key bits through the association.
            let mut guess = KeyGuess::new();
            for ((ppi, keys), value) in associations.iter().zip(&pattern) {
                debug_assert!(ppi_names.contains(ppi));
                for key in keys {
                    guess.set(key.clone(), *value);
                }
            }
            let ppi_pattern: Vec<(String, bool)> = ppi_names
                .iter()
                .cloned()
                .zip(pattern.iter().copied())
                .collect();
            if guess.deciphered() > 0 && candidates.iter().all(|(g, _)| g != &guess) {
                candidates.push((guess, ppi_pattern));
            }
        }

        // --- Stage 3: key confirmation against the oracle. ----------------
        let mut outcome = OgOutcome::OutOfTime;
        if let Some(oracle) = oracle {
            let locked_sim = Simulator::new(locked)?;
            // The probe set covers the protected patterns implied by *every*
            // candidate: a wrong candidate corrupts its own pattern or leaves
            // another candidate's pattern stripped, and both show up here.
            let probes: Vec<Vec<(String, bool)>> = candidates
                .iter()
                .map(|(_, pattern)| pattern.clone())
                .collect();
            for (guess, _) in &candidates {
                if deadline.expired() {
                    break;
                }
                let key = guess.to_secret_key(&key_names);
                if self.confirm_key(locked, &locked_sim, oracle, &key_names, &key, &probes)? {
                    outcome = OgOutcome::Key(key);
                    break;
                }
            }
        }

        let candidates = candidates.into_iter().map(|(guess, _)| guess).collect();
        Ok(FallReport {
            candidates,
            outcome,
            runtime: deadline.elapsed(),
            analyzed_nodes: analyzed,
        })
    }

    /// Stage 1 helper: the protected primary inputs and their key
    /// associations, read off the restore unit (the fan-in cone of the
    /// critical signal). `None` when the locked netlist has no single merge
    /// point or the unit pairs no inputs with keys.
    fn protected_inputs(&self, locked: &Circuit) -> Option<ProtectedInputs> {
        let cs1 = find_critical_signal(locked)?;
        let unit = extract_cone(locked, &[cs1], &[]).ok()?;
        let associations: Vec<(String, Vec<String>)> = associate_keys_with_inputs(&unit)
            .into_iter()
            .filter(|(_, keys)| !keys.is_empty())
            .collect();
        if associations.is_empty() {
            return None;
        }
        let ppi_names: Vec<String> = associations.iter().map(|(ppi, _)| ppi.clone()).collect();
        Some((ppi_names, associations))
    }

    /// Stage 2 helper: if `node` is unate in every protected input, the
    /// polarity vector (in `ppi_names` order); `None` if it is binate in any
    /// variable or a SAT budget ran out.
    fn unate_pattern(
        &self,
        locked: &Circuit,
        node: NetId,
        ppi_names: &[String],
        deadline: &Deadline,
    ) -> Result<Option<Vec<bool>>, AttackError> {
        let cone = extract_cone(locked, &[node], &[])?;
        let mut pattern = Vec::with_capacity(ppi_names.len());
        for name in ppi_names {
            match self.unateness_in(&cone, name, deadline)? {
                Unateness::Positive => pattern.push(true),
                Unateness::Negative => pattern.push(false),
                Unateness::Binate => return Ok(None),
            }
        }
        Ok(Some(pattern))
    }

    /// Determines the unateness of the cone's single output in the input
    /// named `variable` with two SAT queries on a doubled encoding.
    fn unateness_in(
        &self,
        cone: &Circuit,
        variable: &str,
        deadline: &Deadline,
    ) -> Result<Unateness, AttackError> {
        let mut solver = Solver::with_config(SolverConfig {
            conflict_limit: self.config.sat_conflict_limit,
            deadline: deadline.instant(),
            cancel: Some(deadline.cancel_flag()),
            ..Default::default()
        });
        let encoder = Encoder::new();
        // Copy A: variable forced to 0. Copy B: variable forced to 1, all
        // other inputs shared with copy A.
        let enc_a = encoder.encode(&mut solver, cone, &HashMap::new());
        let mut shared: HashMap<String, Var> = enc_a
            .inputs()
            .iter()
            .filter(|(name, _)| name != variable)
            .cloned()
            .collect();
        let var_b = solver.new_var();
        shared.insert(variable.to_string(), var_b);
        let enc_b = encoder.encode(&mut solver, cone, &shared);
        let var_a = enc_a
            .input_var(variable)
            .ok_or_else(|| AttackError::InterfaceMismatch(variable.to_string()))?;
        solver.add_clause([Lit::negative(var_a)]);
        solver.add_clause([Lit::positive(var_b)]);
        let out_a = enc_a.outputs()[0];
        let out_b = enc_b.outputs()[0];

        // Positive unate ⇔ no assignment with f(x=0)=1 and f(x=1)=0.
        let violates_positive =
            solver.solve_with_assumptions(&[Lit::positive(out_a), Lit::negative(out_b)]);
        // Negative unate ⇔ no assignment with f(x=0)=0 and f(x=1)=1.
        let violates_negative =
            solver.solve_with_assumptions(&[Lit::negative(out_a), Lit::positive(out_b)]);
        Ok(
            match (violates_positive.is_unsat(), violates_negative.is_unsat()) {
                (true, _) => Unateness::Positive,
                (false, true) => Unateness::Negative,
                // Binate, or the budget ran out on both queries — either way the
                // candidate is dropped.
                (false, false) => Unateness::Binate,
            },
        )
    }

    /// Stage 3 helper: key confirmation against the oracle. The probe set
    /// combines every candidate's implied protected pattern (where
    /// stripped-functionality corruption is guaranteed to surface) with
    /// random patterns.
    fn confirm_key(
        &self,
        locked: &Circuit,
        locked_sim: &Simulator<'_>,
        oracle: &Oracle,
        key_names: &[String],
        key: &SecretKey,
        probes: &[Vec<(String, bool)>],
    ) -> Result<bool, AttackError> {
        let data_inputs = locked.data_inputs();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut patterns: Vec<Vec<bool>> = vec![
            vec![false; data_inputs.len()],
            vec![true; data_inputs.len()],
        ];
        for probe in probes {
            let mut pattern = vec![false; data_inputs.len()];
            for (name, value) in probe {
                if let Some(position) = data_inputs
                    .iter()
                    .position(|&net| locked.net_name(net) == name)
                {
                    pattern[position] = *value;
                }
            }
            patterns.push(pattern);
        }
        for _ in 0..self.config.confirmation_patterns {
            patterns.push((0..data_inputs.len()).map(|_| rng.gen_bool(0.5)).collect());
        }
        for pattern in patterns {
            let assignment: Vec<(&str, bool)> = data_inputs
                .iter()
                .zip(&pattern)
                .map(|(&net, &value)| (locked.net_name(net), value))
                .collect();
            let oracle_out = oracle.query_by_name(&assignment)?;

            let mut locked_pattern = vec![false; locked.num_inputs()];
            for (&net, &value) in data_inputs.iter().zip(&pattern) {
                if let Some(position) = locked.input_position(net) {
                    locked_pattern[position] = value;
                }
            }
            for (name, &bit) in key_names.iter().zip(key.bits()) {
                if let Some(net) = locked.find_net(name) {
                    if let Some(position) = locked.input_position(net) {
                        locked_pattern[position] = bit;
                    }
                }
            }
            if locked_sim.run(&locked_pattern)? != oracle_out {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl Attack for FallAttack {
    fn name(&self) -> &'static str {
        "fall"
    }

    /// FALL runs under both models: oracle-less it stops after the
    /// candidate analysis, oracle-guided it additionally confirms a key.
    fn supports(&self, _model: ThreatModel) -> bool {
        true
    }

    /// Cone extraction plus a handful of two-query unateness SAT calls —
    /// cheap next to a CEGAR loop, so it interleaves through the injector.
    fn cost_class(&self) -> CostClass {
        CostClass::Cheap
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let deadline = request.deadline();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let base_queries = request.oracle.map(|o| o.queries()).unwrap_or(0);
        let attack = FallAttack {
            config: FallConfig {
                // One analysed node is one iteration of FALL's loop.
                max_candidate_nodes: self
                    .config
                    .max_candidate_nodes
                    .min(request.budget.max_iterations),
                sat_conflict_limit: request
                    .budget
                    .sat_conflict_limit
                    .or(self.config.sat_conflict_limit),
                time_limit: request.budget.time_limit,
                ..self.config.clone()
            },
        };
        let report = attack.run_inner(request.locked, request.oracle, deadline)?;
        // Unified outcome: a confirmed key beats everything; otherwise the
        // strongest unconfirmed candidate is the (partial) result, and an
        // empty candidate list is indistinguishable from running dry.
        let outcome = match (&report.outcome, report.candidates.first()) {
            (OgOutcome::Key(key), _) => AttackOutcome::ExactKey(key.clone()),
            (OgOutcome::OutOfTime, Some(best)) => AttackOutcome::PartialGuess(best.clone()),
            (OgOutcome::OutOfTime, None) => AttackOutcome::OutOfBudget,
        };
        Ok(AttackRun {
            attack: self.name().to_string(),
            threat_model: request.threat_model(),
            outcome,
            runtime: report.runtime,
            iterations: report.analyzed_nodes,
            oracle_queries: request
                .oracle
                .map(|o| o.queries().saturating_sub(base_queries))
                .unwrap_or(0),
            steps: vec![StepTiming::new(
                "structural+functional-analysis",
                report.runtime,
            )],
            members: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::score_guess;
    use kratt_locking::{Cac, LockingTechnique, SarLock, SfllHd, TtLock};
    use kratt_netlist::GateType;

    /// Drives the pipeline exactly like `execute` but returns the rich
    /// [`FallReport`] these assertions need (`run_inner` is private —
    /// external callers go through [`Attack::execute`]).
    fn report_of(
        attack: &FallAttack,
        locked: &Circuit,
        oracle: Option<&Oracle>,
    ) -> Result<FallReport, AttackError> {
        attack.run_inner(locked, oracle, Deadline::started(attack.config.time_limit))
    }

    fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn fall_breaks_clean_ttlock_with_the_oracle() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1010, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let report = report_of(&FallAttack::new(), &locked.circuit, Some(&oracle)).unwrap();
        match report.outcome {
            OgOutcome::Key(key) => assert_eq!(key.to_u64(), secret.to_u64()),
            OgOutcome::OutOfTime => panic!("FALL should confirm the key on clean TTLock"),
        }
        assert!(report.analyzed_nodes > 0);
    }

    #[test]
    fn fall_oracle_less_candidates_contain_the_secret_for_ttlock() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b0110, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let report = report_of(&FallAttack::new(), &locked.circuit, None).unwrap();
        assert!(!report.candidates.is_empty());
        assert!(
            report
                .candidates
                .iter()
                .any(|guess| score_guess(&locked, guess) == (4, 4)),
            "one candidate must equal the secret"
        );
        // Oracle-less runs never confirm a key.
        assert_eq!(report.outcome, OgOutcome::OutOfTime);
    }

    #[test]
    fn fall_also_handles_cac_whose_perturb_cone_is_identical() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b0011, 4);
        let locked = Cac::new(4).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let report = report_of(&FallAttack::new(), &locked.circuit, Some(&oracle)).unwrap();
        assert_eq!(report.key().map(SecretKey::to_u64), Some(secret.to_u64()));
    }

    #[test]
    fn fall_recovers_sfll_hd_keys_while_the_distance_cone_survives() {
        // On an unsynthesised SFLL-HD(1) netlist the monotone "Hamming
        // distance at least d" nodes of the perturb unit are unate with
        // polarities that spell out the secret (or its complement), so FALL
        // still confirms the key — consistent with the original FALL paper's
        // own results on SFLL-HD. The KRATT paper's "without success"
        // observation stems from commercial synthesis merging that cone into
        // the host logic, a transformation our functionality-preserving
        // resynthesis engine deliberately does not perform; EXPERIMENTS.md
        // records this as a known deviation.
        let original = adder4();
        let secret = SecretKey::from_u64(0b1001, 4);
        let locked = SfllHd::new(4, 1).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let report = report_of(&FallAttack::new(), &locked.circuit, Some(&oracle)).unwrap();
        assert_eq!(report.key().map(SecretKey::to_u64), Some(secret.to_u64()));
        // Both the secret and its complement show up as candidates; only the
        // secret survives confirmation.
        assert!(report.candidates.len() >= 2);
    }

    #[test]
    fn fall_does_not_confirm_a_key_on_sflts() {
        // SARLock's locking unit depends on the key inputs, so there is no
        // PPI-only comparator cone carrying the secret; FALL produces no
        // confirmed key (it targets SFLL-style techniques only).
        let original = adder4();
        let secret = SecretKey::from_u64(0b0101, 4);
        let locked = SarLock::new(4).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let report = report_of(&FallAttack::new(), &locked.circuit, Some(&oracle)).unwrap();
        assert_eq!(report.outcome, OgOutcome::OutOfTime);
    }

    #[test]
    fn unlocked_circuit_is_an_error_and_mismatched_oracle_is_detected() {
        let original = adder4();
        assert!(matches!(
            report_of(&FallAttack::new(), &original, None),
            Err(AttackError::NoKeyInputs)
        ));

        let secret = SecretKey::from_u64(0b1100, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let mut different = Circuit::new("other");
        let z = different.add_input("completely_different").unwrap();
        let o = different.add_gate(GateType::Buf, "o", &[z]).unwrap();
        different.mark_output(o);
        let oracle = Oracle::new(different).unwrap();
        assert!(matches!(
            report_of(&FallAttack::new(), &locked.circuit, Some(&oracle)),
            Err(AttackError::InterfaceMismatch(_))
        ));
    }

    #[test]
    fn candidate_budget_is_respected() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1010, 4);
        let locked = TtLock::new(4).lock(&original, &secret).unwrap();
        let config = FallConfig {
            max_candidate_nodes: 0,
            ..Default::default()
        };
        let report = report_of(&FallAttack::with_config(config), &locked.circuit, None).unwrap();
        assert_eq!(report.analyzed_nodes, 0);
        assert!(report.candidates.is_empty());
    }
}
