//! The name-based attack registry: maps attack names to boxed constructors
//! so front ends (the CLI's `--attack` flag, the batch harness, sweep
//! drivers) can instantiate engines from configuration strings.
//!
//! [`AttackRegistry::with_baselines`] registers every attack implemented in
//! this crate; the `kratt` crate's `attack_registry()` adds KRATT itself on
//! top and is what consumers normally start from.

use crate::appsat::AppSatAttack;
use crate::ddip::DoubleDipAttack;
use crate::engine::Attack;
use crate::error::AttackError;
use crate::fall::FallAttack;
use crate::removal::RemovalAttack;
use crate::sat_attack::SatAttack;
use crate::scope::ScopeAttack;

/// A boxed attack constructor.
type Constructor = Box<dyn Fn() -> Box<dyn Attack> + Send + Sync>;

/// A registry of attacks by name. Registration order is preserved: it is the
/// order `names`/`build_all` iterate in, and re-registering a name replaces
/// the constructor in place.
#[derive(Default)]
pub struct AttackRegistry {
    entries: Vec<(String, Constructor)>,
}

impl AttackRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        AttackRegistry::default()
    }

    /// A registry with every baseline attack of this crate registered under
    /// its paper name: `"sat"`, `"double-dip"`, `"appsat"`, `"fall"`,
    /// `"removal"`, `"scope"` and the legacy `"scope-resynth"` kernel.
    pub fn with_baselines() -> Self {
        let mut registry = AttackRegistry::new();
        registry.register("sat", || Box::new(SatAttack::new()));
        registry.register("double-dip", || Box::new(DoubleDipAttack::new()));
        registry.register("appsat", || Box::new(AppSatAttack::new()));
        registry.register("fall", || Box::new(FallAttack::new()));
        registry.register("removal", || Box::new(RemovalAttack::new()));
        registry.register("scope", || Box::new(ScopeAttack::new()));
        registry.register("scope-resynth", || Box::new(ScopeAttack::resynthesis()));
        registry
    }

    /// Registers (or replaces) an attack constructor under `name`.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        constructor: impl Fn() -> Box<dyn Attack> + Send + Sync + 'static,
    ) {
        let name = name.into();
        let constructor: Constructor = Box::new(constructor);
        match self
            .entries
            .iter_mut()
            .find(|(existing, _)| *existing == name)
        {
            Some(entry) => entry.1 = constructor,
            None => self.entries.push((name, constructor)),
        }
    }

    /// Whether an attack is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(existing, _)| existing == name)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// Constructs the attack registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::UnknownAttack`] for an unregistered name.
    pub fn build(&self, name: &str) -> Result<Box<dyn Attack>, AttackError> {
        self.entries
            .iter()
            .find(|(existing, _)| existing == name)
            .map(|(_, constructor)| constructor())
            .ok_or_else(|| AttackError::UnknownAttack(name.to_string()))
    }

    /// Constructs every registered attack, in registration order.
    pub fn build_all(&self) -> Vec<Box<dyn Attack>> {
        self.entries
            .iter()
            .map(|(_, constructor)| constructor())
            .collect()
    }
}

impl std::fmt::Debug for AttackRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ThreatModel;

    #[test]
    fn baselines_are_registered_in_order() {
        let registry = AttackRegistry::with_baselines();
        assert_eq!(
            registry.names(),
            vec![
                "sat",
                "double-dip",
                "appsat",
                "fall",
                "removal",
                "scope",
                "scope-resynth"
            ]
        );
        assert!(registry.contains("sat"));
        assert!(!registry.contains("kratt"));
    }

    #[test]
    fn build_resolves_names_and_rejects_unknown_ones() {
        let registry = AttackRegistry::with_baselines();
        let sat = registry.build("sat").unwrap();
        assert_eq!(sat.name(), "sat");
        assert!(sat.supports(ThreatModel::OracleGuided));
        assert!(matches!(
            registry.build("frobnicate"),
            Err(AttackError::UnknownAttack(name)) if name == "frobnicate"
        ));
        assert_eq!(registry.build_all().len(), registry.names().len());
    }

    #[test]
    fn re_registration_replaces_in_place() {
        let mut registry = AttackRegistry::with_baselines();
        registry.register("sat", || Box::new(ScopeAttack::new()));
        assert_eq!(registry.names().len(), 7);
        assert_eq!(registry.build("sat").unwrap().name(), "scope");
    }
}
