//! The oracle: a functional (activated) IC the oracle-guided adversary can
//! query with inputs and observe outputs, as in the paper's OG threat model.

use kratt_netlist::sim::Simulator;
use kratt_netlist::{Circuit, NetId, NetlistError};
use std::cell::Cell;

/// A simulated functional IC.
///
/// The oracle owns the *original* (unlocked) circuit and answers input/output
/// queries — one pattern at a time or in 64-wide bit-parallel sweeps
/// ([`Oracle::query_words`], [`Oracle::query_batch`]). It also counts
/// queries, since query count is a standard cost metric for oracle-guided
/// attacks; a batched sweep of `n` patterns counts as `n` queries, exactly
/// as if each pattern had been applied individually.
#[derive(Debug)]
pub struct Oracle {
    circuit: Circuit,
    queries: Cell<u64>,
}

impl Oracle {
    /// Creates an oracle for the given original circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit contains a combinational cycle.
    pub fn new(circuit: Circuit) -> Result<Self, NetlistError> {
        // Compile (and cache) the evaluation schedule up front so cycles
        // surface here, not on the first query.
        circuit.schedule()?;
        Ok(Oracle {
            circuit,
            queries: Cell::new(0),
        })
    }

    /// A simulator over the oracle's circuit. Cheap: the compiled schedule
    /// is cached on the circuit, so this is an `Arc` clone.
    fn simulator(&self) -> Simulator<'_> {
        Simulator::new(&self.circuit).expect("schedule compiled in Oracle::new")
    }

    /// The original circuit behind the oracle (its interface defines the
    /// query format). Attacks may inspect the interface but, by the threat
    /// model, must not look at the gates — they only exist here because the
    /// oracle is simulated.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of primary inputs the oracle expects per query.
    pub fn num_inputs(&self) -> usize {
        self.circuit.num_inputs()
    }

    /// Number of primary outputs per response.
    pub fn num_outputs(&self) -> usize {
        self.circuit.num_outputs()
    }

    /// Number of queries served so far.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Applies one input pattern (ordered as the original circuit's inputs)
    /// and returns the outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong pattern width.
    pub fn query(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let outputs = self.simulator().run(inputs)?;
        self.queries.set(self.queries.get() + 1);
        Ok(outputs)
    }

    /// Applies up to 64 packed input patterns in one bit-parallel sweep.
    /// `words[i]` carries primary input `i` across the patterns (bit *p* of
    /// the word is pattern *p*); only the low `patterns` lanes are live and
    /// exactly `patterns` queries are counted.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong word count.
    ///
    /// # Panics
    ///
    /// Panics if `patterns > 64`.
    pub fn query_words(&self, words: &[u64], patterns: usize) -> Result<Vec<u64>, NetlistError> {
        assert!(patterns <= 64, "a sweep holds at most 64 patterns");
        let outputs = self.simulator().run_words(words)?;
        self.queries.set(self.queries.get() + patterns as u64);
        Ok(outputs)
    }

    /// Queries an arbitrary number of patterns, packed into 64-wide sweeps
    /// internally. Row `i` of the result answers `patterns[i]`; the query
    /// counter advances by `patterns.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] if any row has the wrong
    /// width.
    pub fn query_batch(&self, patterns: &[Vec<bool>]) -> Result<Vec<Vec<bool>>, NetlistError> {
        let rows = self.simulator().run_batch(patterns)?;
        self.queries.set(self.queries.get() + patterns.len() as u64);
        Ok(rows)
    }

    fn position_of(&self, name: &str) -> Result<usize, NetlistError> {
        let net: NetId = self
            .circuit
            .find_net(name)
            .filter(|&n| self.circuit.is_input(n))
            .ok_or_else(|| NetlistError::UnknownNet(name.to_string()))?;
        Ok(self
            .circuit
            .input_position(net)
            .expect("input has a position"))
    }

    /// Queries with an assignment given by input *name*; unnamed inputs
    /// default to `false`. Convenient for attacks that only care about a
    /// subset of inputs (e.g. the protected primary inputs).
    ///
    /// # Errors
    ///
    /// Returns an error if an assignment names a net that is not a primary
    /// input of the oracle circuit.
    pub fn query_by_name(&self, assignment: &[(&str, bool)]) -> Result<Vec<bool>, NetlistError> {
        let mut pattern = vec![false; self.circuit.num_inputs()];
        for &(name, value) in assignment {
            pattern[self.position_of(name)?] = value;
        }
        self.query(&pattern)
    }

    /// Batched form of [`Oracle::query_by_name`]: every row of `rows` gives
    /// the values of the named inputs (`names[i]` ↦ `row[i]`), unnamed
    /// inputs default to `false`, and the rows are answered in 64-wide
    /// packed sweeps. Counts `rows.len()` queries.
    ///
    /// # Errors
    ///
    /// Returns an error if a name is not a primary input of the oracle
    /// circuit or a row's width differs from `names.len()`.
    pub fn query_batch_by_name(
        &self,
        names: &[String],
        rows: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, NetlistError> {
        let positions: Vec<usize> = names
            .iter()
            .map(|name| self.position_of(name))
            .collect::<Result<_, _>>()?;
        let mut patterns = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != names.len() {
                return Err(NetlistError::InputWidthMismatch {
                    expected: names.len(),
                    got: row.len(),
                });
            }
            let mut pattern = vec![false; self.circuit.num_inputs()];
            for (&position, &value) in positions.iter().zip(row) {
                pattern[position] = value;
            }
            patterns.push(pattern);
        }
        self.query_batch(&patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    fn xor_and() -> Circuit {
        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, b]).unwrap();
        let y = c.add_gate(GateType::And, "y", &[a, b]).unwrap();
        c.mark_output(x);
        c.mark_output(y);
        c
    }

    #[test]
    fn oracle_answers_and_counts_queries() {
        let oracle = Oracle::new(xor_and()).unwrap();
        assert_eq!(oracle.queries(), 0);
        assert_eq!(oracle.query(&[true, false]).unwrap(), vec![true, false]);
        assert_eq!(oracle.query(&[true, true]).unwrap(), vec![false, true]);
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.num_inputs(), 2);
        assert_eq!(oracle.num_outputs(), 2);
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let oracle = Oracle::new(xor_and()).unwrap();
        assert!(oracle.query(&[true]).is_err());
        assert!(oracle.query_words(&[0], 1).is_err());
        assert!(oracle.query_batch(&[vec![true]]).is_err());
    }

    #[test]
    fn batched_queries_match_scalar_and_count_per_pattern() {
        let scalar = Oracle::new(xor_and()).unwrap();
        let batched = Oracle::new(xor_and()).unwrap();
        let patterns: Vec<Vec<bool>> = (0u64..4).map(|p| vec![p & 1 != 0, p & 2 != 0]).collect();
        let expected: Vec<Vec<bool>> = patterns.iter().map(|p| scalar.query(p).unwrap()).collect();
        let rows = batched.query_batch(&patterns).unwrap();
        assert_eq!(rows, expected);
        // Batching is a transport optimisation, not a discount: the counted
        // telemetry matches the scalar path pattern for pattern.
        assert_eq!(batched.queries(), scalar.queries());
        assert_eq!(batched.queries(), 4);
    }

    #[test]
    fn query_words_counts_only_live_lanes() {
        let oracle = Oracle::new(xor_and()).unwrap();
        let out = oracle.query_words(&[0b01, 0b11], 2).unwrap();
        // Lane 0: a=1, b=1 -> x=0, y=1. Lane 1: a=0, b=1 -> x=1, y=0.
        assert_eq!(out[0] & 0b11, 0b10);
        assert_eq!(out[1] & 0b11, 0b01);
        assert_eq!(oracle.queries(), 2);
    }

    #[test]
    fn query_by_name_defaults_missing_inputs_to_zero() {
        let oracle = Oracle::new(xor_and()).unwrap();
        assert_eq!(
            oracle.query_by_name(&[("b", true)]).unwrap(),
            vec![true, false]
        );
        assert!(oracle.query_by_name(&[("ghost", true)]).is_err());
        assert!(
            oracle.query_by_name(&[("x", true)]).is_err(),
            "internal nets are not queryable"
        );
    }

    #[test]
    fn batched_by_name_matches_scalar_by_name() {
        let oracle = Oracle::new(xor_and()).unwrap();
        let names = vec!["b".to_string()];
        let rows = vec![vec![true], vec![false]];
        let batched = oracle.query_batch_by_name(&names, &rows).unwrap();
        assert_eq!(batched[0], oracle.query_by_name(&[("b", true)]).unwrap());
        assert_eq!(batched[1], oracle.query_by_name(&[("b", false)]).unwrap());
        assert_eq!(oracle.queries(), 4);
        assert!(oracle
            .query_batch_by_name(&names, &[vec![true, false]])
            .is_err());
        assert!(oracle
            .query_batch_by_name(&["ghost".to_string()], &[vec![true]])
            .is_err());
    }
}
