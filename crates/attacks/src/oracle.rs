//! The oracle: a functional (activated) IC the oracle-guided adversary can
//! query with inputs and observe outputs, as in the paper's OG threat model.

use kratt_netlist::analysis::topological_order;
use kratt_netlist::{Circuit, GateId, NetId, NetlistError};
use std::cell::Cell;

/// A simulated functional IC.
///
/// The oracle owns the *original* (unlocked) circuit and answers input/output
/// queries. It also counts queries, since query count is a standard cost
/// metric for oracle-guided attacks.
#[derive(Debug)]
pub struct Oracle {
    circuit: Circuit,
    topo: Vec<GateId>,
    queries: Cell<u64>,
}

impl Oracle {
    /// Creates an oracle for the given original circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit contains a combinational cycle.
    pub fn new(circuit: Circuit) -> Result<Self, NetlistError> {
        let topo = topological_order(&circuit)?;
        Ok(Oracle {
            circuit,
            topo,
            queries: Cell::new(0),
        })
    }

    /// The original circuit behind the oracle (its interface defines the
    /// query format). Attacks may inspect the interface but, by the threat
    /// model, must not look at the gates — they only exist here because the
    /// oracle is simulated.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of primary inputs the oracle expects per query.
    pub fn num_inputs(&self) -> usize {
        self.circuit.num_inputs()
    }

    /// Number of primary outputs per response.
    pub fn num_outputs(&self) -> usize {
        self.circuit.num_outputs()
    }

    /// Number of queries served so far.
    pub fn queries(&self) -> u64 {
        self.queries.get()
    }

    /// Applies one input pattern (ordered as the original circuit's inputs)
    /// and returns the outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InputWidthMismatch`] on a wrong pattern width.
    pub fn query(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.circuit.num_inputs() {
            return Err(NetlistError::InputWidthMismatch {
                expected: self.circuit.num_inputs(),
                got: inputs.len(),
            });
        }
        self.queries.set(self.queries.get() + 1);
        let mut values = vec![false; self.circuit.num_nets()];
        for (position, &net) in self.circuit.inputs().iter().enumerate() {
            values[net.index()] = inputs[position];
        }
        let mut scratch: Vec<bool> = Vec::with_capacity(8);
        for &gid in &self.topo {
            let gate = self.circuit.gate(gid);
            scratch.clear();
            scratch.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.ty.eval(&scratch);
        }
        Ok(self
            .circuit
            .outputs()
            .iter()
            .map(|&o| values[o.index()])
            .collect())
    }

    /// Queries with an assignment given by input *name*; unnamed inputs
    /// default to `false`. Convenient for attacks that only care about a
    /// subset of inputs (e.g. the protected primary inputs).
    ///
    /// # Errors
    ///
    /// Returns an error if an assignment names a net that is not a primary
    /// input of the oracle circuit.
    pub fn query_by_name(&self, assignment: &[(&str, bool)]) -> Result<Vec<bool>, NetlistError> {
        let mut pattern = vec![false; self.circuit.num_inputs()];
        for &(name, value) in assignment {
            let net: NetId = self
                .circuit
                .find_net(name)
                .filter(|&n| self.circuit.is_input(n))
                .ok_or_else(|| NetlistError::UnknownNet(name.to_string()))?;
            let position = self
                .circuit
                .input_position(net)
                .expect("input has a position");
            pattern[position] = value;
        }
        self.query(&pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    fn xor_and() -> Circuit {
        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[a, b]).unwrap();
        let y = c.add_gate(GateType::And, "y", &[a, b]).unwrap();
        c.mark_output(x);
        c.mark_output(y);
        c
    }

    #[test]
    fn oracle_answers_and_counts_queries() {
        let oracle = Oracle::new(xor_and()).unwrap();
        assert_eq!(oracle.queries(), 0);
        assert_eq!(oracle.query(&[true, false]).unwrap(), vec![true, false]);
        assert_eq!(oracle.query(&[true, true]).unwrap(), vec![false, true]);
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.num_inputs(), 2);
        assert_eq!(oracle.num_outputs(), 2);
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let oracle = Oracle::new(xor_and()).unwrap();
        assert!(oracle.query(&[true]).is_err());
    }

    #[test]
    fn query_by_name_defaults_missing_inputs_to_zero() {
        let oracle = Oracle::new(xor_and()).unwrap();
        assert_eq!(
            oracle.query_by_name(&[("b", true)]).unwrap(),
            vec![true, false]
        );
        assert!(oracle.query_by_name(&[("ghost", true)]).is_err());
        assert!(
            oracle.query_by_name(&[("x", true)]).is_err(),
            "internal nets are not queryable"
        );
    }
}
