//! The persistent campaign journal: a fingerprint-keyed, append-only
//! JSON-lines file that makes campaigns resumable and incremental.
//!
//! Every *committed* campaign cell (a verdict the verification step has
//! stamped — never an [`AttackError::Interrupted`](crate::AttackError) row)
//! is appended as one flat JSON object keyed by the cell fingerprint:
//! a hash of (host-netlist fingerprint, resolved scheme spec, prepare tag,
//! attack name). Re-running a campaign against the same journal replays
//! recorded cells from disk and schedules only the cells with no recorded
//! verdict, so a grown matrix attacks its new cells only and a crash
//! mid-sweep resumes from the last committed row.
//!
//! Two record types share the file:
//!
//! ```text
//! {"type":"instance","fp":"<16-hex instance fp>","locked_fp":"<16-hex>"}
//! {"type":"cell","fp":"<16-hex cell fp>", ...CampaignCell fields...}
//! ```
//!
//! `instance` records pin the fingerprint of the *locked* netlist the
//! deterministic scheme construction produced. When a resumed campaign
//! re-materialises an instance whose locked fingerprint no longer matches
//! (e.g. a scheme implementation changed between runs), the corpus surfaces
//! a structured setup error telling the operator the journal is stale —
//! silent mixing of old and new verdicts is the failure mode this guards
//! against.
//!
//! Torn writes are expected: a crash can leave a half-appended final line.
//! [`CampaignJournal::open`] parses line by line and skips anything
//! malformed, so a truncated tail costs exactly one re-attacked cell.

use crate::campaign::{cell_from_pairs, cell_json_body, CampaignCell, CampaignError};
use crate::report::{json_str, parse_flat_object, JsonScalar};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The fingerprint of one locked-instance address: host netlist ×
/// resolved spec × prepare tag. Stable across processes (the inputs are
/// already content hashes / canonical strings).
pub fn instance_fingerprint(host_fp: u64, spec: &str, prepare_tag: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    host_fp.hash(&mut hasher);
    spec.hash(&mut hasher);
    prepare_tag.hash(&mut hasher);
    hasher.finish()
}

/// The fingerprint of one campaign cell: its instance address plus the
/// attack name.
pub fn cell_fingerprint(instance_fp: u64, attack: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    instance_fp.hash(&mut hasher);
    attack.hash(&mut hasher);
    hasher.finish()
}

/// An open campaign journal: the replay index loaded from disk plus the
/// append handle new verdicts are committed through.
///
/// Appends happen from harness worker threads (one line per completed
/// cell, under a mutex, flushed immediately) — the "last committed row"
/// a crashed sweep resumes from is literally the last intact line.
pub struct CampaignJournal {
    path: PathBuf,
    file: Mutex<File>,
    cells: Mutex<HashMap<u64, CampaignCell>>,
    instances: Mutex<HashMap<u64, u64>>,
    write_errors: AtomicUsize,
}

impl std::fmt::Debug for CampaignJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignJournal")
            .field("path", &self.path)
            .field("cells", &self.cells.lock().expect("journal lock").len())
            .finish()
    }
}

impl CampaignJournal {
    /// Opens (creating if absent) a journal and loads its replay index.
    /// Malformed lines — e.g. the torn tail of a crashed append — are
    /// skipped; later records win when a fingerprint repeats.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Journal`] when the file cannot be read or
    /// opened for append.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, CampaignError> {
        let path = path.into();
        let mut cells = HashMap::new();
        let mut instances = HashMap::new();
        match File::open(&path) {
            Ok(existing) => {
                for line in BufReader::new(existing).lines() {
                    let line = line
                        .map_err(|e| CampaignError::Journal(format!("{}: {e}", path.display())))?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    let Some(pairs) = parse_flat_object(&line) else {
                        continue; // torn or foreign line: costs one re-attack
                    };
                    let field = |name: &str| {
                        pairs
                            .iter()
                            .find(|(key, _)| key == name)
                            .map(|(_, value)| value)
                    };
                    let Some(kind) = field("type").and_then(JsonScalar::as_str) else {
                        continue;
                    };
                    let Some(fp) = field("fp")
                        .and_then(JsonScalar::as_str)
                        .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                    else {
                        continue;
                    };
                    match kind {
                        "cell" => {
                            if let Some(cell) = cell_from_pairs(&pairs) {
                                cells.insert(fp, cell);
                            }
                        }
                        "instance" => {
                            if let Some(locked_fp) = field("locked_fp")
                                .and_then(JsonScalar::as_str)
                                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                            {
                                instances.insert(fp, locked_fp);
                            }
                        }
                        _ => {}
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(CampaignError::Journal(format!("{}: {e}", path.display()))),
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| CampaignError::Journal(format!("{}: {e}", path.display())))?;
        Ok(CampaignJournal {
            path,
            file: Mutex::new(file),
            cells: Mutex::new(cells),
            instances: Mutex::new(instances),
            write_errors: AtomicUsize::new(0),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of recorded cell verdicts.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("journal lock").len()
    }

    /// Whether the journal holds no cell verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The recorded verdict for a cell fingerprint, if any.
    pub fn cell(&self, fp: u64) -> Option<CampaignCell> {
        self.cells.lock().expect("journal lock").get(&fp).cloned()
    }

    /// The recorded locked-netlist fingerprint of an instance, if any.
    pub fn instance_locked_fp(&self, fp: u64) -> Option<u64> {
        self.instances
            .lock()
            .expect("journal lock")
            .get(&fp)
            .copied()
    }

    /// Records (once) which locked netlist an instance address produced,
    /// so a later resume can detect stale journals.
    pub fn record_instance(&self, fp: u64, locked_fp: u64) {
        {
            let mut instances = self.instances.lock().expect("journal lock");
            if instances.contains_key(&fp) {
                return;
            }
            instances.insert(fp, locked_fp);
        }
        let mut line = String::with_capacity(64);
        line.push('{');
        json_str(&mut line, "type", "instance");
        line.push(',');
        json_str(&mut line, "fp", &format!("{fp:016x}"));
        line.push(',');
        json_str(&mut line, "locked_fp", &format!("{locked_fp:016x}"));
        line.push_str("}\n");
        self.append(&line);
    }

    /// Commits one completed cell verdict. Thread-safe; flushed per line so
    /// the last committed row survives a crash.
    pub fn record_cell(&self, fp: u64, cell: &CampaignCell) {
        self.cells
            .lock()
            .expect("journal lock")
            .insert(fp, cell.clone());
        let mut line = String::with_capacity(256);
        line.push('{');
        json_str(&mut line, "type", "cell");
        line.push(',');
        json_str(&mut line, "fp", &format!("{fp:016x}"));
        line.push(',');
        cell_json_body(&mut line, cell);
        line.push_str("}\n");
        self.append(&line);
    }

    /// Append failures seen so far. A failing disk degrades durability, not
    /// correctness: the in-memory campaign still completes and reports; only
    /// resumability of the affected rows is lost.
    pub fn write_errors(&self) -> usize {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn append(&self, line: &str) {
        let mut file = self.file.lock().expect("journal lock");
        let failed = file.write_all(line.as_bytes()).is_err() || file.flush().is_err();
        if failed {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Verdict;
    use crate::harness::JobTelemetry;
    use std::time::Duration;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("kratt-journal-{tag}-{}.jsonl", std::process::id()))
    }

    fn sample_cell() -> CampaignCell {
        CampaignCell {
            host: "add4".to_string(),
            scheme: "sarlock:k=3".to_string(),
            lint: "2W".to_string(),
            attack: "sat".to_string(),
            outcome: Some("exact-key"),
            verdict: Verdict::Verified,
            key: Some("3'h5".to_string()),
            cdk: 3,
            dk: 3,
            runtime: Duration::from_millis(1500),
            iterations: 7,
            oracle_queries: 9,
            error: None,
            telemetry: JobTelemetry {
                worker: 2,
                queue_wait: Duration::from_millis(250),
                stolen: true,
            },
            replayed: false,
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = instance_fingerprint(1, "sarlock:k=3", "");
        assert_eq!(a, instance_fingerprint(1, "sarlock:k=3", ""));
        assert_ne!(a, instance_fingerprint(2, "sarlock:k=3", ""));
        assert_ne!(a, instance_fingerprint(1, "sarlock:k=4", ""));
        assert_ne!(a, instance_fingerprint(1, "sarlock:k=3", "resynth"));
        assert_ne!(cell_fingerprint(a, "sat"), cell_fingerprint(a, "scope"));
    }

    #[test]
    fn journal_round_trips_cells_and_instances() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let cell = sample_cell();
        let fp = cell_fingerprint(instance_fingerprint(42, "sarlock:k=3", ""), "sat");
        {
            let journal = CampaignJournal::open(&path).unwrap();
            assert!(journal.is_empty());
            journal.record_instance(7, 0xDEAD);
            journal.record_instance(7, 0xBEEF); // duplicate: first one wins
            journal.record_cell(fp, &cell);
            assert_eq!(journal.write_errors(), 0);
        }
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.len(), 1);
        assert_eq!(journal.instance_locked_fp(7), Some(0xDEAD));
        assert_eq!(journal.instance_locked_fp(8), None);
        let replayed = journal.cell(fp).expect("recorded cell");
        assert_eq!(replayed.host, cell.host);
        assert_eq!(replayed.scheme, cell.scheme);
        assert_eq!(replayed.lint, cell.lint);
        assert_eq!(replayed.attack, cell.attack);
        assert_eq!(replayed.outcome, cell.outcome);
        assert_eq!(replayed.verdict, cell.verdict);
        assert_eq!(replayed.key, cell.key);
        assert_eq!((replayed.cdk, replayed.dk), (3, 3));
        assert_eq!(replayed.runtime, cell.runtime);
        assert_eq!(replayed.iterations, 7);
        assert_eq!(replayed.oracle_queries, 9);
        assert_eq!(replayed.telemetry.worker, 2);
        assert!(replayed.telemetry.stolen);
        assert!(journal.cell(fp ^ 1).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_lines_cost_one_cell_not_the_journal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let cell = sample_cell();
        {
            let journal = CampaignJournal::open(&path).unwrap();
            journal.record_cell(1, &cell);
            journal.record_cell(2, &cell);
        }
        // Simulate a crash mid-append: truncate into the middle of the
        // second record.
        let text = std::fs::read_to_string(&path).unwrap();
        let first_len = text.find('\n').unwrap() + 1;
        std::fs::write(&path, &text[..first_len + 20]).unwrap();
        let journal = CampaignJournal::open(&path).unwrap();
        assert_eq!(journal.len(), 1, "intact line replayed, torn line skipped");
        assert!(journal.cell(1).is_some());
        assert!(journal.cell(2).is_none());
        let _ = std::fs::remove_file(&path);
    }
}
