//! The parallel batch harness: runs an attacks × benchmarks matrix across
//! worker threads and collects structured rows.
//!
//! This is what the paper's evaluation actually is — every (attack,
//! locked circuit) pair of Tables II–V driven under one budget — and what
//! the experiment binaries in `kratt-bench` are wrappers over. The harness
//! owns the fan-out with a **work-stealing scheduler**: heavy solver-bound
//! jobs (SAT/QBF CEGAR loops, [`CostClass::Heavy`]) are dealt round-robin
//! across per-worker deques so the long poles start immediately, cheap
//! structural jobs ([`CostClass::Cheap`] — SCOPE, FALL, removal) wait in a
//! global injector, and an idle worker drains its own deque front, then the
//! injector, then steals from the *back* of a victim's deque. Stragglers
//! therefore never idle the pool: whichever worker frees up first takes the
//! next job, wherever it was queued. Every job builds its own [`Oracle`]
//! (oracles count queries through interior mutability and are deliberately
//! not shared across threads), and rows come back in deterministic job
//! order regardless of scheduling.
//!
//! The whole matrix runs under one optional global [`Deadline`]
//! ([`ScheduleOptions::deadline`]): each job's budget is clamped to the
//! remaining matrix time, and jobs the deadline catches *before they start*
//! come back as [`AttackError::Interrupted`] rows — the hook the resumable
//! campaign journal uses to know which cells still need attacking.
//!
//! Cases can be supplied eagerly (a slice, [`Harness::run_matrix`]) or
//! lazily through a [`CaseSource`] ([`Harness::run_matrix_lazy`]): the
//! campaign pipeline locks benchmark hosts *on demand* when the first
//! worker reaches a case, memoised so the other attacks on the same
//! instance reuse it. A case that fails to materialise (e.g. a locking
//! scheme whose key width exceeds the host's protected-input count) becomes
//! one structured [`AttackError::Setup`] row per attack instead of a panic.

use crate::engine::{Attack, AttackRequest, Budget, CostClass, Deadline};
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::report::AttackRun;
use kratt_netlist::Circuit;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One benchmark instance of the matrix: a locked netlist plus, when the
/// scenario grants oracle access, the original circuit the oracle simulates.
///
/// The circuits are shared behind [`Arc`]s, so a case is cheap to clone —
/// which is what lets lazy [`CaseSource`]s hand the same instance to many
/// attack jobs without re-materialising it.
#[derive(Debug, Clone)]
pub struct MatrixCase {
    /// Display name of the case (`"c2670/SARLock"`, ...).
    pub name: String,
    /// The locked netlist under attack.
    pub locked: Arc<Circuit>,
    /// The original circuit behind the oracle; `None` runs the case under
    /// the oracle-less threat model.
    pub oracle: Option<Arc<Circuit>>,
}

impl MatrixCase {
    /// An oracle-less case.
    pub fn oracle_less(name: impl Into<String>, locked: Circuit) -> Self {
        MatrixCase {
            name: name.into(),
            locked: Arc::new(locked),
            oracle: None,
        }
    }

    /// An oracle-guided case.
    pub fn oracle_guided(name: impl Into<String>, locked: Circuit, original: Circuit) -> Self {
        MatrixCase {
            name: name.into(),
            locked: Arc::new(locked),
            oracle: Some(Arc::new(original)),
        }
    }

    /// An oracle-guided case over already-shared circuits.
    pub fn oracle_guided_shared(
        name: impl Into<String>,
        locked: Arc<Circuit>,
        original: Arc<Circuit>,
    ) -> Self {
        MatrixCase {
            name: name.into(),
            locked,
            oracle: Some(original),
        }
    }
}

/// A lazy producer of matrix cases: the harness asks for case `index` the
/// first time a worker reaches one of its jobs. Implementations must be
/// idempotent per index (workers may race on the first access) — memoise
/// expensive materialisation (the campaign corpus cache does).
pub trait CaseSource: Sync {
    /// Number of cases the source provides.
    fn num_cases(&self) -> usize;

    /// Display name of case `index`, available even when the case itself
    /// cannot be materialised (failed cases still need labelled rows).
    fn case_name(&self, index: usize) -> String;

    /// Materialises case `index`.
    ///
    /// # Errors
    ///
    /// Returns the error every attack row of this case will carry —
    /// typically [`AttackError::Setup`] when the scenario cannot be built.
    fn case(&self, index: usize) -> Result<MatrixCase, AttackError>;
}

/// The eager adapter: a pre-built slice of cases is a trivially lazy source.
impl CaseSource for [MatrixCase] {
    fn num_cases(&self) -> usize {
        self.len()
    }

    fn case_name(&self, index: usize) -> String {
        self[index].name.clone()
    }

    fn case(&self, index: usize) -> Result<MatrixCase, AttackError> {
        Ok(self[index].clone())
    }
}

/// A [`CaseSource`] built from a closure plus a name list; the closure runs
/// at most once per index (concurrent first accesses block on the winner),
/// so expensive case materialisation is never duplicated.
pub struct FnCaseSource<F> {
    names: Vec<String>,
    build: F,
    memo: Vec<OnceLock<Result<MatrixCase, AttackError>>>,
}

impl<F> FnCaseSource<F>
where
    F: Fn(usize) -> Result<MatrixCase, AttackError> + Sync,
{
    /// A source producing one case per name through `build`.
    pub fn new(names: Vec<String>, build: F) -> Self {
        let memo = (0..names.len()).map(|_| OnceLock::new()).collect();
        FnCaseSource { names, build, memo }
    }
}

impl<F> CaseSource for FnCaseSource<F>
where
    F: Fn(usize) -> Result<MatrixCase, AttackError> + Sync,
{
    fn num_cases(&self) -> usize {
        self.names.len()
    }

    fn case_name(&self, index: usize) -> String {
        self.names[index].clone()
    }

    fn case(&self, index: usize) -> Result<MatrixCase, AttackError> {
        self.memo[index].get_or_init(|| (self.build)(index)).clone()
    }
}

/// Per-job scheduler telemetry, carried on every [`MatrixRow`] and on the
/// streamed campaign verdict records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobTelemetry {
    /// Index of the worker thread that ran the job.
    pub worker: usize,
    /// Time the job spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// Whether the job was stolen from another worker's deque.
    pub stolen: bool,
}

/// Aggregate scheduler telemetry for one matrix run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Jobs actually scheduled (after the include filter).
    pub jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Successful steals from another worker's deque.
    pub steals: usize,
    /// Jobs the global deadline (or a halt) caught before they started.
    pub interrupted: usize,
    /// Wall-clock time from scheduler start to the last worker joining.
    pub makespan: Duration,
}

/// One cell of the matrix: the run (or error) of one attack on one case.
#[derive(Debug)]
pub struct MatrixRow {
    /// Registry name of the attack.
    pub attack: String,
    /// Name of the benchmark case.
    pub case: String,
    /// The attack's run, or the error it reported (an unsupported threat
    /// model shows up here as [`AttackError::Unsupported`], not as a panic).
    pub result: Result<AttackRun, AttackError>,
    /// Scheduler telemetry for the job that produced this row.
    pub telemetry: JobTelemetry,
}

impl MatrixRow {
    /// The run, if the attack executed.
    pub fn run(&self) -> Option<&AttackRun> {
        self.result.as_ref().ok()
    }

    /// Renders the row as one flat JSON-lines record (the matrix `--stream`
    /// row format, mirroring the campaign's cell records).
    pub fn to_json_line(&self) -> String {
        use crate::report::{json_key, json_str};
        let mut out = String::with_capacity(192);
        out.push('{');
        json_str(&mut out, "type", "row");
        out.push(',');
        json_str(&mut out, "case", &self.case);
        out.push(',');
        json_str(&mut out, "attack", &self.attack);
        out.push(',');
        match &self.result {
            Ok(run) => {
                json_str(&mut out, "outcome", run.outcome.kind());
                out.push_str(&format!(
                    ",\"runtime_secs\":{:.6},\"iterations\":{},\"oracle_queries\":{}",
                    run.runtime.as_secs_f64(),
                    run.iterations,
                    run.oracle_queries
                ));
            }
            Err(error) => {
                json_key(&mut out, "outcome");
                out.push_str("null,");
                json_str(&mut out, "error", &error.to_string());
            }
        }
        out.push_str(&format!(
            ",\"worker\":{},\"queue_wait_secs\":{:.6},\"stolen\":{}",
            self.telemetry.worker,
            self.telemetry.queue_wait.as_secs_f64(),
            self.telemetry.stolen
        ));
        out.push('}');
        out
    }
}

impl SchedulerStats {
    /// Renders the aggregate stats as the final `--stream` summary record.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        crate::report::json_str(&mut out, "type", "summary");
        out.push_str(&format!(
            ",\"jobs\":{},\"workers\":{},\"steals\":{},\"interrupted\":{},\"makespan_secs\":{:.6}}}",
            self.jobs,
            self.workers,
            self.steals,
            self.interrupted,
            self.makespan.as_secs_f64()
        ));
        out
    }
}

/// The per-row streaming/journaling hook of [`ScheduleOptions`].
pub type RowHook<'a> = &'a (dyn Fn(usize, &MatrixRow) + Sync);

/// Knobs for one scheduled matrix run. `Default` runs everything, without
/// a global deadline, callbacks or halt — i.e. [`Harness::run_matrix_lazy`]
/// semantics.
pub struct ScheduleOptions<'a> {
    /// One global wall-clock deadline over the whole matrix. Per-job budgets
    /// are clamped to the remaining matrix time; jobs caught before they
    /// start become [`AttackError::Interrupted`] rows.
    pub deadline: Deadline,
    /// Which (case index, attack index) jobs to schedule; `None` schedules
    /// all. Filtered-out jobs return `None` rows — the campaign journal
    /// replays those cells from disk instead.
    pub include: Option<&'a (dyn Fn(usize, usize) -> bool + Sync)>,
    /// Called from the worker thread right after each *executed* job (never
    /// for interrupted ones) with the job index and the finished row —
    /// the streaming/journaling hook. Must be cheap-ish and thread-safe.
    pub on_row: Option<RowHook<'a>>,
    /// Halt the scheduler after this many executed jobs: remaining jobs come
    /// back interrupted. Deterministic crash injection for resume tests.
    pub halt_after: Option<usize>,
}

impl Default for ScheduleOptions<'_> {
    fn default() -> Self {
        ScheduleOptions {
            deadline: Deadline::unlimited(),
            include: None,
            on_row: None,
            halt_after: None,
        }
    }
}

/// The result of a scheduled matrix run: rows in job order (`None` where the
/// include filter skipped the job) plus aggregate scheduler telemetry.
#[derive(Debug)]
pub struct ScheduleReport {
    /// One slot per (case, attack) job, case-major; `None` = filtered out.
    pub rows: Vec<Option<MatrixRow>>,
    /// Aggregate scheduler telemetry.
    pub stats: SchedulerStats,
}

/// The batch driver. See the module documentation.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Number of worker threads (at least 1).
    pub workers: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// A harness with one worker per available CPU.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Harness { workers }
    }

    /// A harness with an explicit worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Self {
        Harness {
            workers: workers.max(1),
        }
    }

    /// Runs every attack on every case under the shared budget and returns
    /// one row per (case, attack) pair, case-major — i.e.
    /// `rows[i * attacks.len() + j]` is attack `j` on case `i` — regardless
    /// of which worker finished first.
    pub fn run_matrix(
        &self,
        attacks: &[Box<dyn Attack>],
        cases: &[MatrixCase],
        budget: &Budget,
    ) -> Vec<MatrixRow> {
        self.run_matrix_lazy(attacks, cases, budget)
    }

    /// The lazy batch driver behind [`Harness::run_matrix`]: cases come from
    /// a [`CaseSource`] and are materialised only when a worker first needs
    /// them. A case whose materialisation fails yields one error row per
    /// attack (carrying the source's error) instead of aborting the matrix.
    pub fn run_matrix_lazy(
        &self,
        attacks: &[Box<dyn Attack>],
        source: &(impl CaseSource + ?Sized),
        budget: &Budget,
    ) -> Vec<MatrixRow> {
        self.run_matrix_scheduled(attacks, source, budget, &ScheduleOptions::default())
            .rows
            .into_iter()
            .map(|slot| slot.expect("no include filter, so every job was scheduled"))
            .collect()
    }

    /// The full work-stealing driver (see the module documentation for the
    /// queue discipline). Returns rows in job order — `None` where the
    /// include filter skipped the job — plus scheduler telemetry.
    pub fn run_matrix_scheduled(
        &self,
        attacks: &[Box<dyn Attack>],
        source: &(impl CaseSource + ?Sized),
        budget: &Budget,
        options: &ScheduleOptions<'_>,
    ) -> ScheduleReport {
        let num_attacks = attacks.len();
        let total = num_attacks * source.num_cases();
        let mut heavy: Vec<usize> = Vec::new();
        let mut cheap: Vec<usize> = Vec::new();
        for job in 0..total {
            let (case_index, attack_index) = (job / num_attacks.max(1), job % num_attacks.max(1));
            if let Some(include) = options.include {
                if !include(case_index, attack_index) {
                    continue;
                }
            }
            match attacks[attack_index].cost_class() {
                CostClass::Heavy => heavy.push(job),
                CostClass::Cheap => cheap.push(job),
            }
        }
        let scheduled = heavy.len() + cheap.len();
        let workers = self.workers.min(scheduled.max(1));

        // Heavy jobs are dealt round-robin across the worker deques (the
        // longest-pole-first makespan heuristic); cheap jobs wait in the
        // injector and fill the gaps as workers free up.
        let deques: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in heavy.iter().enumerate() {
            deques[i % workers]
                .lock()
                .expect("dealing happens before workers start")
                .push_back(*job);
        }
        let injector: Mutex<VecDeque<usize>> = Mutex::new(cheap.into_iter().collect());

        let slots: Mutex<Vec<Option<MatrixRow>>> = Mutex::new((0..total).map(|_| None).collect());
        let steals = AtomicUsize::new(0);
        let interrupted = AtomicUsize::new(0);
        let executed = AtomicUsize::new(0);
        let halted = AtomicBool::new(false);
        let start = Instant::now();

        // Caught panics become structured rows; silence the default hook
        // for the duration of the matrix so a repeatedly panicking attack
        // does not spray one backtrace per job over the real output (the
        // same technique libtest uses). Restored on every exit path by the
        // guard.
        let _hook_guard = QuietPanicGuard::engage();

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let deques = &deques;
                let injector = &injector;
                let slots = &slots;
                let steals = &steals;
                let interrupted = &interrupted;
                let executed = &executed;
                let halted = &halted;
                scope.spawn(move || loop {
                    let Some((job, stolen)) = next_job(worker, deques, injector) else {
                        return;
                    };
                    if stolen {
                        steals.fetch_add(1, Ordering::Relaxed);
                    }
                    let queue_wait = start.elapsed();
                    let case_index = job / num_attacks;
                    let attack = &attacks[job % num_attacks];
                    let cancelled = options.deadline.expired() || halted.load(Ordering::Acquire);
                    let result = if cancelled {
                        interrupted.fetch_add(1, Ordering::Relaxed);
                        Err(AttackError::Interrupted)
                    } else {
                        let effective = budget_under_deadline(budget, &options.deadline);
                        source
                            .case(case_index)
                            .and_then(|case| run_one_caught(attack.as_ref(), &case, &effective))
                    };
                    let row = MatrixRow {
                        attack: attack.name().to_string(),
                        case: source.case_name(case_index),
                        result,
                        telemetry: JobTelemetry {
                            worker,
                            queue_wait,
                            stolen,
                        },
                    };
                    if !cancelled {
                        if let Some(on_row) = options.on_row {
                            on_row(job, &row);
                        }
                        let done = executed.fetch_add(1, Ordering::Relaxed) + 1;
                        if options.halt_after.is_some_and(|limit| done >= limit) {
                            halted.store(true, Ordering::Release);
                        }
                    }
                    slots.lock().expect("no worker panicked holding the lock")[job] = Some(row);
                });
            }
        });

        let makespan = start.elapsed();
        ScheduleReport {
            rows: slots.into_inner().expect("scope joined every worker"),
            stats: SchedulerStats {
                jobs: scheduled,
                workers,
                steals: steals.load(Ordering::Relaxed),
                interrupted: interrupted.load(Ordering::Relaxed),
                makespan,
            },
        }
    }

    /// The pre-work-stealing static split, kept as the baseline the bench
    /// suite's scheduler records compare makespans against: jobs are pulled
    /// off a shared cursor in index order, with no deques, no stealing and
    /// no cost-class ordering.
    pub fn run_matrix_static(
        &self,
        attacks: &[Box<dyn Attack>],
        source: &(impl CaseSource + ?Sized),
        budget: &Budget,
    ) -> Vec<MatrixRow> {
        let total = attacks.len() * source.num_cases();
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<MatrixRow>>> = Mutex::new((0..total).map(|_| None).collect());
        let workers = self.workers.min(total.max(1));
        let start = Instant::now();
        let _hook_guard = QuietPanicGuard::engage();

        std::thread::scope(|scope| {
            for worker in 0..workers {
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || loop {
                    let job = cursor.fetch_add(1, Ordering::Relaxed);
                    if job >= total {
                        return;
                    }
                    let queue_wait = start.elapsed();
                    let case_index = job / attacks.len();
                    let attack = &attacks[job % attacks.len()];
                    let result = source
                        .case(case_index)
                        .and_then(|case| run_one_caught(attack.as_ref(), &case, budget));
                    let row = MatrixRow {
                        attack: attack.name().to_string(),
                        case: source.case_name(case_index),
                        result,
                        telemetry: JobTelemetry {
                            worker,
                            queue_wait,
                            stolen: false,
                        },
                    };
                    slots.lock().expect("no worker panicked holding the lock")[job] = Some(row);
                });
            }
        });

        slots
            .into_inner()
            .expect("scope joined every worker")
            .into_iter()
            .map(|slot| slot.expect("every job index was claimed exactly once"))
            .collect()
    }
}

/// One scheduling decision: own deque front → injector front → steal from
/// the first non-empty victim's *back* (ring order from the worker's right
/// neighbour, so contention spreads instead of piling on worker 0).
fn next_job(
    worker: usize,
    deques: &[Mutex<VecDeque<usize>>],
    injector: &Mutex<VecDeque<usize>>,
) -> Option<(usize, bool)> {
    if let Some(job) = deques[worker]
        .lock()
        .expect("no worker panics holding a deque lock")
        .pop_front()
    {
        return Some((job, false));
    }
    if let Some(job) = injector
        .lock()
        .expect("no worker panics holding the injector lock")
        .pop_front()
    {
        return Some((job, false));
    }
    for offset in 1..deques.len() {
        let victim = (worker + offset) % deques.len();
        if let Some(job) = deques[victim]
            .lock()
            .expect("no worker panics holding a deque lock")
            .pop_back()
        {
            return Some((job, true));
        }
    }
    None
}

/// Clamps a per-job budget to the time remaining on the matrix deadline, so
/// one straggler cannot run past the global limit.
fn budget_under_deadline(budget: &Budget, deadline: &Deadline) -> Budget {
    let mut effective = budget.clone();
    if let Some(remaining) = deadline.remaining() {
        effective.time_limit = Some(match effective.time_limit {
            Some(limit) => limit.min(remaining),
            None => remaining,
        });
    }
    effective
}

/// Swaps the process panic hook for a no-op and restores the original on
/// drop. Matrix workers catch their panics and report them as rows, so the
/// default stderr report would only be noise.
type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

struct QuietPanicGuard {
    previous: Option<PanicHook>,
}

impl QuietPanicGuard {
    fn engage() -> Self {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanicGuard {
            previous: Some(previous),
        }
    }
}

impl Drop for QuietPanicGuard {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            std::panic::set_hook(previous);
        }
    }
}

/// Runs one attack on one case with a panic firewall: a panicking attack
/// implementation poisons neither its worker thread nor the rest of the
/// matrix — the panic message comes back as [`AttackError::Panicked`] in
/// that row, labelled with the attack and case like every other row.
fn run_one_caught(
    attack: &dyn Attack,
    case: &MatrixCase,
    budget: &Budget,
) -> Result<AttackRun, AttackError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_one(attack, case, budget)
    }))
    .unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic payload of unknown type".to_string());
        Err(AttackError::Panicked(message))
    })
}

/// Runs one attack on one case: builds the case's private oracle (when the
/// case grants one) and executes the request under the shared budget.
fn run_one(
    attack: &dyn Attack,
    case: &MatrixCase,
    budget: &Budget,
) -> Result<AttackRun, AttackError> {
    let oracle = match &case.oracle {
        Some(original) => {
            Some(Oracle::new(original.as_ref().clone()).map_err(AttackError::Netlist)?)
        }
        None => None,
    };
    let request = AttackRequest {
        locked: &case.locked,
        oracle: oracle.as_ref(),
        budget: budget.clone(),
        cancel: None,
    };
    attack.execute(&request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::AttackRegistry;
    use kratt_locking::{LockingTechnique, SarLock, SecretKey};
    use kratt_netlist::{GateType, NetId};

    fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn matrix_rows_come_back_in_job_order() {
        let original = adder4();
        let registry = AttackRegistry::with_baselines();
        let attacks = vec![
            registry.build("sat").unwrap(),
            registry.build("scope").unwrap(),
        ];
        let cases: Vec<MatrixCase> = (0..3)
            .map(|i| {
                let secret = SecretKey::from_u64(0b101 ^ i, 3);
                let locked = SarLock::new(3).lock(&original, &secret).unwrap();
                MatrixCase::oracle_guided(format!("case{i}"), locked.circuit, original.clone())
            })
            .collect();
        let rows = Harness::with_workers(4).run_matrix(&attacks, &cases, &Budget::default());
        assert_eq!(rows.len(), 6);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.case, format!("case{}", i / 2));
            assert_eq!(row.attack, if i % 2 == 0 { "sat" } else { "scope" });
            let run = row
                .run()
                .expect("both attacks support oracle-guided requests");
            assert!(
                !run.outcome.is_out_of_budget(),
                "row {i} ran out of a generous budget"
            );
        }
    }

    #[test]
    fn unsupported_pairs_surface_as_row_errors() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b110, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let registry = AttackRegistry::with_baselines();
        let attacks = vec![registry.build("sat").unwrap()];
        let cases = vec![MatrixCase::oracle_less("ol", locked.circuit)];
        let rows = Harness::with_workers(1).run_matrix(&attacks, &cases, &Budget::default());
        assert!(matches!(
            rows[0].result,
            Err(AttackError::Unsupported { .. })
        ));
        assert!(rows[0].run().is_none());
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(Harness::with_workers(0).workers, 1);
        assert!(Harness::new().workers >= 1);
    }

    #[test]
    fn lazy_sources_materialise_each_case_once_and_setup_failures_become_rows() {
        let original = adder4();
        let registry = AttackRegistry::with_baselines();
        let attacks = vec![
            registry.build("sat").unwrap(),
            registry.build("scope").unwrap(),
        ];
        let builds = AtomicUsize::new(0);
        let source = FnCaseSource::new(
            vec!["good".to_string(), "impossible".to_string()],
            |index| {
                builds.fetch_add(1, Ordering::Relaxed);
                if index == 0 {
                    let secret = SecretKey::from_u64(0b010, 3);
                    let locked = SarLock::new(3).lock(&original, &secret).unwrap();
                    Ok(MatrixCase::oracle_guided(
                        "good",
                        locked.circuit,
                        original.clone(),
                    ))
                } else {
                    // A scheme whose key width exceeds the host's inputs.
                    Err(AttackError::from(
                        kratt_locking::scheme::scheme_registry()
                            .lock(&"ttlock:k=64".parse().unwrap(), &original)
                            .unwrap_err(),
                    ))
                }
            },
        );
        let rows = Harness::with_workers(4).run_matrix_lazy(&attacks, &source, &Budget::default());
        assert_eq!(rows.len(), 4);
        // Both attacks on the good case ran; the case was built exactly once
        // even though two jobs raced for it. The failed case was *attempted*
        // once and its error fanned out to every attack row, labelled.
        assert!(rows[0].run().is_some() && rows[1].run().is_some());
        assert_eq!(builds.load(Ordering::Relaxed), 2);
        for row in &rows[2..] {
            assert_eq!(row.case, "impossible");
            match &row.result {
                Err(AttackError::Setup(message)) => {
                    assert!(message.contains("data inputs"), "{message}")
                }
                other => panic!("expected a Setup row error, got {other:?}"),
            }
        }
    }

    /// An attack that always panics, standing in for an implementation bug.
    struct PanickingAttack;

    impl Attack for PanickingAttack {
        fn name(&self) -> &'static str {
            "panicker"
        }
        fn supports(&self, _model: crate::engine::ThreatModel) -> bool {
            true
        }
        fn execute(&self, _request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
            panic!("deliberate test panic");
        }
    }

    #[test]
    fn panicking_attack_becomes_a_row_error_not_an_abort() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b011, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let registry = AttackRegistry::with_baselines();
        let attacks: Vec<Box<dyn Attack>> =
            vec![Box::new(PanickingAttack), registry.build("scope").unwrap()];
        let cases = vec![MatrixCase::oracle_guided("case0", locked.circuit, original)];
        let rows = Harness::with_workers(2).run_matrix(&attacks, &cases, &Budget::default());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].attack, "panicker");
        match &rows[0].result {
            Err(AttackError::Panicked(message)) => {
                assert!(message.contains("deliberate test panic"))
            }
            other => panic!("expected a Panicked row error, got {other:?}"),
        }
        // The healthy attack in the same matrix still produced its row.
        assert!(rows[1].run().is_some(), "scope row survived the panic");
    }

    #[test]
    fn expired_global_deadline_interrupts_every_job() {
        let original = adder4();
        let registry = AttackRegistry::with_baselines();
        let attacks = vec![
            registry.build("sat").unwrap(),
            registry.build("scope").unwrap(),
        ];
        let secret = SecretKey::from_u64(0b100, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let cases = [MatrixCase::oracle_guided(
            "case0",
            locked.circuit,
            original.clone(),
        )];
        let options = ScheduleOptions {
            deadline: Budget::zero().start(),
            ..ScheduleOptions::default()
        };
        let report = Harness::with_workers(2).run_matrix_scheduled(
            &attacks,
            &cases[..],
            &Budget::default(),
            &options,
        );
        assert_eq!(report.stats.jobs, 2);
        assert_eq!(report.stats.interrupted, 2);
        for slot in &report.rows {
            let row = slot.as_ref().expect("no filter");
            assert!(matches!(row.result, Err(AttackError::Interrupted)));
        }
    }

    #[test]
    fn halt_after_executes_exactly_that_many_jobs() {
        let original = adder4();
        let registry = AttackRegistry::with_baselines();
        let attacks = vec![
            registry.build("scope").unwrap(),
            registry.build("fall").unwrap(),
        ];
        let cases: Vec<MatrixCase> = (0..3)
            .map(|i| {
                let secret = SecretKey::from_u64(i, 3);
                let locked = SarLock::new(3).lock(&original, &secret).unwrap();
                MatrixCase::oracle_guided(format!("case{i}"), locked.circuit, original.clone())
            })
            .collect();
        let options = ScheduleOptions {
            halt_after: Some(2),
            ..ScheduleOptions::default()
        };
        let report = Harness::with_workers(1).run_matrix_scheduled(
            &attacks,
            &cases[..],
            &Budget::default(),
            &options,
        );
        let executed = report
            .rows
            .iter()
            .flatten()
            .filter(|row| !matches!(row.result, Err(AttackError::Interrupted)))
            .count();
        assert_eq!(executed, 2);
        assert_eq!(report.stats.interrupted, 4);
    }

    #[test]
    fn include_filter_skips_jobs_and_leaves_empty_slots() {
        let original = adder4();
        let registry = AttackRegistry::with_baselines();
        let attacks = vec![
            registry.build("sat").unwrap(),
            registry.build("scope").unwrap(),
        ];
        let secret = SecretKey::from_u64(0b010, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let cases: Vec<MatrixCase> = (0..2)
            .map(|i| {
                MatrixCase::oracle_guided(
                    format!("case{i}"),
                    locked.circuit.clone(),
                    original.clone(),
                )
            })
            .collect();
        let seen = Mutex::new(Vec::new());
        let include = |case: usize, attack: usize| !(case == 0 && attack == 0);
        let on_row = |job: usize, row: &MatrixRow| {
            seen.lock().unwrap().push((job, row.attack.clone()));
        };
        let options = ScheduleOptions {
            include: Some(&include),
            on_row: Some(&on_row),
            ..ScheduleOptions::default()
        };
        let report = Harness::with_workers(2).run_matrix_scheduled(
            &attacks,
            &cases[..],
            &Budget::default(),
            &options,
        );
        assert_eq!(report.stats.jobs, 3);
        assert!(report.rows[0].is_none(), "filtered job has no row");
        assert!(report.rows[1..].iter().all(|slot| slot.is_some()));
        let mut seen = seen.into_inner().unwrap();
        seen.sort();
        assert_eq!(
            seen.iter().map(|(job, _)| *job).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "on_row fired exactly for the scheduled jobs"
        );
    }

    #[test]
    fn work_stealing_matches_the_static_split_rows() {
        let original = adder4();
        let registry = AttackRegistry::with_baselines();
        let attacks = vec![
            registry.build("sat").unwrap(),
            registry.build("scope").unwrap(),
        ];
        let cases: Vec<MatrixCase> = (0..2)
            .map(|i| {
                let secret = SecretKey::from_u64(0b011 ^ i, 3);
                let locked = SarLock::new(3).lock(&original, &secret).unwrap();
                MatrixCase::oracle_guided(format!("case{i}"), locked.circuit, original.clone())
            })
            .collect();
        let budget = Budget::default();
        let stealing = Harness::with_workers(3).run_matrix_lazy(&attacks, &cases[..], &budget);
        let fixed = Harness::with_workers(3).run_matrix_static(&attacks, &cases[..], &budget);
        assert_eq!(stealing.len(), fixed.len());
        for (a, b) in stealing.iter().zip(&fixed) {
            assert_eq!(a.attack, b.attack);
            assert_eq!(a.case, b.case);
            assert_eq!(a.result.is_ok(), b.result.is_ok());
        }
    }
}
