//! Error type shared by the attack implementations.

use kratt_netlist::NetlistError;
use std::fmt;

/// Errors an attack can report (besides the legitimate "out of time" outcome,
/// which is part of the report types, not an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The locked netlist has no key inputs — there is nothing to attack.
    NoKeyInputs,
    /// No single critical signal exists (the key inputs do not converge into
    /// one merge point), so removal-style attacks do not apply.
    NoCriticalSignal,
    /// The locked netlist and the oracle disagree on the data-input
    /// interface (an input exists in one but not the other).
    InterfaceMismatch(String),
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoKeyInputs => write!(f, "locked netlist has no key inputs"),
            AttackError::NoCriticalSignal => {
                write!(f, "key inputs do not converge into a single critical signal")
            }
            AttackError::InterfaceMismatch(name) => {
                write!(f, "input `{name}` is not shared between the locked netlist and the oracle")
            }
            AttackError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for AttackError {
    fn from(e: NetlistError) -> Self {
        AttackError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AttackError::NoKeyInputs.to_string().contains("key"));
        assert!(AttackError::InterfaceMismatch("G7".into()).to_string().contains("G7"));
        let wrapped: AttackError = NetlistError::UnknownNet("n".into()).into();
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
