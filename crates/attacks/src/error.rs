//! Error type shared by the attack implementations.

use crate::engine::ThreatModel;
use kratt_netlist::NetlistError;
use std::fmt;

/// Errors an attack can report (besides the legitimate "out of time" outcome,
/// which is part of the report types, not an error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackError {
    /// The locked netlist has no key inputs — there is nothing to attack.
    NoKeyInputs,
    /// No single critical signal exists (the key inputs do not converge into
    /// one merge point), so removal-style attacks do not apply.
    NoCriticalSignal,
    /// The locked netlist and the oracle disagree on the data-input
    /// interface (an input exists in one but not the other).
    InterfaceMismatch(String),
    /// The attack does not support the request's threat model (e.g. an
    /// oracle-less request against a DIP-loop attack).
    Unsupported {
        /// Registry name of the attack.
        attack: String,
        /// The unsupported threat model of the request.
        model: ThreatModel,
    },
    /// No attack with the given name is registered.
    UnknownAttack(String),
    /// A strict `KeyGuess` → `SecretKey` conversion was attempted on a
    /// partial guess.
    PartialKey {
        /// Key bits the guess does not decipher.
        missing: usize,
        /// Total key bits of the netlist.
        total: usize,
    },
    /// An underlying netlist operation failed.
    Netlist(NetlistError),
    /// The attack never ran because the scenario could not be set up — most
    /// commonly a locking scheme that fails on its host (e.g. a key width
    /// exceeding the protected-input count). Carried as a structured row
    /// error by the batch harness and campaign pipeline so one impossible
    /// (scheme, host) cell cannot abort a whole matrix.
    Setup(String),
    /// The job never started: the matrix-wide deadline expired (or the
    /// scheduler was halted) before a worker picked it up. Interrupted
    /// rows are never journaled, so a resumed campaign re-attacks exactly
    /// these cells.
    Interrupted,
    /// The attack panicked while running inside the batch harness; the
    /// payload is the panic message. Carried as a row error so one
    /// misbehaving (attack, case) pair cannot abort a whole matrix.
    Panicked(String),
    /// An attack-specific failure that has no structured variant.
    Other(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoKeyInputs => write!(f, "locked netlist has no key inputs"),
            AttackError::NoCriticalSignal => {
                write!(
                    f,
                    "key inputs do not converge into a single critical signal"
                )
            }
            AttackError::InterfaceMismatch(name) => {
                write!(
                    f,
                    "input `{name}` is not shared between the locked netlist and the oracle"
                )
            }
            AttackError::Unsupported { attack, model } => {
                write!(
                    f,
                    "attack `{attack}` does not support the {model} threat model"
                )
            }
            AttackError::UnknownAttack(name) => {
                write!(f, "no attack named `{name}` is registered")
            }
            AttackError::PartialKey { missing, total } => {
                write!(f, "guess leaves {missing} of {total} key bits undeciphered")
            }
            AttackError::Netlist(e) => write!(f, "netlist error: {e}"),
            AttackError::Setup(message) => write!(f, "scenario setup failed: {message}"),
            AttackError::Interrupted => {
                write!(
                    f,
                    "interrupted before the attack started (matrix deadline expired)"
                )
            }
            AttackError::Panicked(message) => write!(f, "attack panicked: {message}"),
            AttackError::Other(message) => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for AttackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttackError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for AttackError {
    fn from(e: NetlistError) -> Self {
        AttackError::Netlist(e)
    }
}

/// A locking failure is always a *setup* failure from the attack side: the
/// scenario never existed, so no attack ran.
impl From<kratt_locking::LockError> for AttackError {
    fn from(e: kratt_locking::LockError) -> Self {
        AttackError::Setup(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AttackError::NoKeyInputs.to_string().contains("key"));
        assert!(AttackError::InterfaceMismatch("G7".into())
            .to_string()
            .contains("G7"));
        let wrapped: AttackError = NetlistError::UnknownNet("n".into()).into();
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
