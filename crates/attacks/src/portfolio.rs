//! The portfolio attack: member engines racing under one shared budget.
//!
//! A [`PortfolioAttack`] spawns every member engine on its own scoped
//! thread, each with a clone of the request, a private oracle rebuilt from
//! the shared one (the oracle's query counter is not `Sync`), and a slice
//! of the one shared [`Budget`] (additive resources — iterations and
//! oracle queries — are split; the wall clock and per-call conflict limit
//! are not, because the members run concurrently). The members race to the
//! first *SAT-verified* exact-key claim: a claimant applies its key and
//! proves the unlocked circuit equivalent to the oracle's with the
//! campaign's complete equivalence kernel, then raises the shared
//! [`CancelFlag`] so the losers — whose SAT propagate loops, QBF CEGAR
//! refinement, DIP loops and structural scans all poll the flag wherever
//! they already poll their deadline — stop promptly instead of running
//! their slices dry.
//!
//! The merged [`AttackRun`] carries the winner's outcome, the portfolio's
//! total wall clock, the summed oracle queries of every member, and one
//! [`MemberRun`] row per member (arrival order) recording its outcome,
//! wall time, whether its claim verified, and whether it won the race.

use crate::engine::{Attack, AttackRequest, Budget, ThreatModel};
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::registry::AttackRegistry;
use crate::report::{AttackOutcome, AttackRun, MemberRun, StepTiming};
use kratt_locking::SecretKey;
use kratt_netlist::Circuit;
use kratt_sat::{cancel_requested, CancelFlag};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// The default member list: KRATT itself plus the two strongest
/// oracle-guided baselines of Table I.
pub const DEFAULT_MEMBERS: &[&str] = &["kratt", "sat", "appsat"];

/// Environment variable overriding the default member list
/// (comma-separated registry names, e.g. `kratt,sat,double-dip`).
pub const MEMBERS_ENV: &str = "KRATT_PORTFOLIO_MEMBERS";

/// How often the collector thread polls the caller's cancellation flag
/// while waiting for member results.
const COLLECT_POLL: Duration = Duration::from_millis(25);

/// A racing portfolio of attack engines (registered as `"portfolio"`).
pub struct PortfolioAttack {
    members: Vec<(String, Box<dyn Attack>)>,
}

impl std::fmt::Debug for PortfolioAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.members.iter().map(|(n, _)| n.as_str()).collect();
        f.debug_struct("PortfolioAttack")
            .field("members", &names)
            .finish()
    }
}

/// Parses a comma-separated member spec (empty items are skipped, so
/// `"kratt, sat,"` is two members).
pub fn parse_member_spec(spec: &str) -> Vec<String> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect()
}

impl PortfolioAttack {
    /// A portfolio over pre-built `(name, engine)` members.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Setup`] for an empty member list.
    pub fn new(members: Vec<(String, Box<dyn Attack>)>) -> Result<Self, AttackError> {
        if members.is_empty() {
            return Err(AttackError::Setup("portfolio member list is empty".into()));
        }
        Ok(PortfolioAttack { members })
    }

    /// A portfolio whose members are built from a registry by name.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Setup`] for an empty list, a duplicate
    /// member, or a `"portfolio"` entry (a portfolio cannot race itself),
    /// and [`AttackError::UnknownAttack`] for an unregistered name.
    pub fn from_registry(registry: &AttackRegistry, names: &[String]) -> Result<Self, AttackError> {
        let mut members = Vec::with_capacity(names.len());
        for name in names {
            if name == "portfolio" {
                return Err(AttackError::Setup(
                    "the portfolio cannot be its own member".into(),
                ));
            }
            if members.iter().any(|(existing, _)| existing == name) {
                return Err(AttackError::Setup(format!(
                    "duplicate portfolio member `{name}`"
                )));
            }
            members.push((name.clone(), registry.build(name)?));
        }
        PortfolioAttack::new(members)
    }

    /// The member list selected by [`MEMBERS_ENV`], falling back to
    /// [`DEFAULT_MEMBERS`].
    pub fn members_from_env() -> Vec<String> {
        match std::env::var(MEMBERS_ENV) {
            Ok(spec) if !parse_member_spec(&spec).is_empty() => parse_member_spec(&spec),
            _ => DEFAULT_MEMBERS.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The member names, in racing order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|(n, _)| n.as_str()).collect()
    }
}

/// What one member thread sends back over the collection channel.
struct RaceResult {
    name: String,
    run: Result<AttackRun, AttackError>,
    wall: Duration,
    verified: bool,
    /// Whether the flag was already up when this member finished — its
    /// `out-of-budget` outcome then reads `cancelled` in the member rows.
    cancelled: bool,
}

/// SAT-verifies an exact-key claim: applies the key and proves the
/// unlocked circuit equivalent to the oracle's original with the
/// campaign's complete kernel. Any failure (wrong key width, refutation,
/// inconclusive budget) counts as unverified — a portfolio never promotes
/// a claim it could not prove.
fn verify_exact(locked: &Circuit, original: &Circuit, key: &SecretKey) -> bool {
    match kratt_locking::apply_key(locked, key) {
        Ok(unlocked) => crate::campaign::equivalent_to(original, &unlocked).unwrap_or(false),
        Err(_) => false,
    }
}

/// Runs one member under a panic firewall and classifies its claim.
/// Returns `(run, verified, winning_claim)`. The member gets a private
/// oracle rebuilt from the original circuit — the shared [`Oracle`]'s
/// query counter is not `Sync`, so the shared instance never crosses into
/// the race threads.
fn run_member(
    attack: &dyn Attack,
    locked: &Circuit,
    original: Option<&Circuit>,
    budget: Budget,
    race: CancelFlag,
) -> (Result<AttackRun, AttackError>, bool, bool) {
    let oracle = match original {
        Some(circuit) => match Oracle::new(circuit.clone()) {
            Ok(oracle) => Some(oracle),
            Err(e) => return (Err(AttackError::Netlist(e)), false, false),
        },
        None => None,
    };
    let member_request = AttackRequest {
        locked,
        oracle: oracle.as_ref(),
        budget,
        cancel: Some(race),
    };
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        attack.execute(&member_request)
    }))
    .unwrap_or_else(|payload| {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic payload of unknown type".to_string());
        Err(AttackError::Panicked(message))
    });
    match run {
        Ok(run) => match &run.outcome {
            AttackOutcome::ExactKey(key) => {
                let verified = match original {
                    Some(circuit) => verify_exact(locked, circuit, key),
                    None => false,
                };
                // Without an oracle there is nothing to verify against;
                // the first exact claim still ends the race.
                let winning = verified || original.is_none();
                (Ok(run), verified, winning)
            }
            _ => (Ok(run), false, false),
        },
        Err(e) => (Err(e), false, false),
    }
}

impl Attack for PortfolioAttack {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn supports(&self, model: ThreatModel) -> bool {
        self.members.iter().any(|(_, a)| a.supports(model))
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let model = request.threat_model();
        let runnable: Vec<&(String, Box<dyn Attack>)> = self
            .members
            .iter()
            .filter(|(_, a)| a.supports(model))
            .collect();
        if runnable.is_empty() {
            return Err(AttackError::Unsupported {
                attack: self.name().to_string(),
                model,
            });
        }
        let deadline = request.deadline();
        if deadline.expired() {
            let mut run = AttackRun::out_of_budget(self.name(), model);
            run.runtime = deadline.elapsed();
            return Ok(run);
        }

        // Only `Sync` state crosses into the race threads: the shared
        // oracle's query counter is a `Cell`, so members see the original
        // circuit and rebuild private oracles from it.
        let locked = request.locked;
        let original = request.oracle.map(|oracle| oracle.circuit());
        let slice = request.budget.slice(runnable.len());
        let race = CancelFlag::default();
        let start = Instant::now();
        let (tx, rx) = mpsc::channel::<RaceResult>();
        let mut arrivals: Vec<RaceResult> = Vec::with_capacity(runnable.len());

        std::thread::scope(|scope| {
            for (name, attack) in &runnable {
                let tx = tx.clone();
                let race = race.clone();
                let slice = slice.clone();
                scope.spawn(move || {
                    let wall_start = Instant::now();
                    let (run, verified, winning_claim) =
                        run_member(attack.as_ref(), locked, original, slice, race.clone());
                    let cancelled = race.load(Ordering::Relaxed) && !winning_claim;
                    if winning_claim {
                        race.store(true, Ordering::Relaxed);
                    }
                    let _ = tx.send(RaceResult {
                        name: name.clone(),
                        run,
                        wall: wall_start.elapsed(),
                        verified,
                        cancelled,
                    });
                });
            }
            drop(tx);
            // Collect in arrival order, relaying the caller's own
            // cancellation (and the portfolio-wide deadline) into the race.
            while arrivals.len() < runnable.len() {
                match rx.recv_timeout(COLLECT_POLL) {
                    Ok(result) => arrivals.push(result),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        if cancel_requested(&request.cancel) || deadline.expired() {
                            race.store(true, Ordering::Relaxed);
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        });

        let runtime = start.elapsed();
        let is = |result: &RaceResult, want: fn(&AttackOutcome) -> bool| matches!(&result.run, Ok(run) if want(&run.outcome));
        // The race's podium: a verified exact claim beats an unverified
        // one, beats a recovered circuit, beats a partial guess, beats
        // out-of-budget. Ties break on arrival order.
        let winner_idx = arrivals
            .iter()
            .position(|r| r.verified)
            .or_else(|| {
                arrivals
                    .iter()
                    .position(|r| is(r, |o| matches!(o, AttackOutcome::ExactKey(_))))
            })
            .or_else(|| {
                arrivals
                    .iter()
                    .position(|r| is(r, |o| matches!(o, AttackOutcome::RecoveredCircuit(_))))
            })
            .or_else(|| {
                arrivals
                    .iter()
                    .position(|r| is(r, |o| matches!(o, AttackOutcome::PartialGuess(_))))
            })
            .or_else(|| arrivals.iter().position(|r| r.run.is_ok()));
        let Some(winner_idx) = winner_idx else {
            // Every member errored: the first error speaks for the race.
            return Err(arrivals
                .into_iter()
                .next()
                .map(|r| r.run.expect_err("no Ok arrival exists"))
                .unwrap_or_else(|| {
                    AttackError::Other("portfolio race produced no results".into())
                }));
        };

        let members: Vec<MemberRun> = arrivals
            .iter()
            .enumerate()
            .map(|(i, r)| MemberRun {
                name: r.name.clone(),
                outcome: match &r.run {
                    Ok(run) if r.cancelled && matches!(run.outcome, AttackOutcome::OutOfBudget) => {
                        "cancelled".to_string()
                    }
                    Ok(run) => run.outcome.kind().to_string(),
                    Err(e) => format!("error: {e}"),
                },
                wall: r.wall,
                verified: r.verified,
                winner: i == winner_idx,
            })
            .collect();
        let steps: Vec<StepTiming> = arrivals
            .iter()
            .map(|r| StepTiming::new(format!("member:{}", r.name), r.wall))
            .collect();
        let oracle_queries = arrivals
            .iter()
            .filter_map(|r| r.run.as_ref().ok())
            .map(|run| run.oracle_queries)
            .sum();
        let winner_run = arrivals[winner_idx]
            .run
            .as_ref()
            .expect("the podium only seats Ok runs");
        Ok(AttackRun {
            attack: self.name().to_string(),
            threat_model: model,
            outcome: winner_run.outcome.clone(),
            runtime,
            iterations: winner_run.iterations,
            oracle_queries,
            steps,
            members,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_locking::{LockingTechnique, SarLock, SecretKey};
    use kratt_netlist::GateType;

    fn adder(width: usize, name: &str) -> Circuit {
        let mut c = Circuit::new(name);
        let a: Vec<_> = (0..width)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<_> = (0..width)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..width {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn member_spec_parsing_skips_blanks() {
        assert_eq!(parse_member_spec("kratt, sat,"), vec!["kratt", "sat"]);
        assert!(parse_member_spec(" , ").is_empty());
    }

    #[test]
    fn from_registry_rejects_bad_member_lists() {
        let registry = AttackRegistry::with_baselines();
        let build = |names: &[&str]| {
            let names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
            PortfolioAttack::from_registry(&registry, &names)
        };
        assert!(matches!(build(&[]), Err(AttackError::Setup(_))));
        assert!(matches!(
            build(&["sat", "portfolio"]),
            Err(AttackError::Setup(_))
        ));
        assert!(matches!(build(&["sat", "sat"]), Err(AttackError::Setup(_))));
        assert!(matches!(
            build(&["no-such-engine"]),
            Err(AttackError::UnknownAttack(_))
        ));
        let portfolio = build(&["sat", "scope"]).unwrap();
        assert_eq!(portfolio.member_names(), vec!["sat", "scope"]);
    }

    #[test]
    fn supports_is_the_union_of_the_members() {
        let registry = AttackRegistry::with_baselines();
        let og_only = PortfolioAttack::from_registry(&registry, &["sat".to_string()]).unwrap();
        assert!(og_only.supports(ThreatModel::OracleGuided));
        assert!(!og_only.supports(ThreatModel::OracleLess));
        let mixed =
            PortfolioAttack::from_registry(&registry, &["sat".to_string(), "scope".to_string()])
                .unwrap();
        assert!(mixed.supports(ThreatModel::OracleGuided));
        assert!(mixed.supports(ThreatModel::OracleLess));
    }

    #[test]
    fn race_recovers_a_verified_key_and_reports_the_members() {
        let host = adder(3, "add3");
        let secret = SecretKey::from_u64(0b110, 3);
        let locked = SarLock::new(3).lock(&host, &secret).unwrap();
        let oracle = Oracle::new(host).unwrap();
        let registry = AttackRegistry::with_baselines();
        let portfolio = PortfolioAttack::from_registry(
            &registry,
            &["sat".to_string(), "double-dip".to_string()],
        )
        .unwrap();
        let request = AttackRequest::oracle_guided(&locked.circuit, &oracle);
        let run = portfolio.execute(&request).unwrap();
        assert_eq!(run.attack, "portfolio");
        let key = run.outcome.exact_key().expect("race recovers the key");
        assert_eq!(key.bits().len(), 3);
        assert_eq!(run.members.len(), 2);
        let winner = run.winning_member().expect("a member won");
        assert!(winner.verified);
        assert!(winner.wall <= run.runtime);
        assert_eq!(run.members.iter().filter(|m| m.winner).count(), 1);
        // The JSON report carries the member rows.
        let json = run.to_json();
        assert!(json.contains("\"members\":["));
        assert!(json.contains("\"winner\":true"));
    }

    #[test]
    fn unsupported_model_is_rejected_before_spawning() {
        let host = adder(3, "add3");
        let secret = SecretKey::from_u64(0b010, 3);
        let locked = SarLock::new(3).lock(&host, &secret).unwrap();
        let registry = AttackRegistry::with_baselines();
        let portfolio = PortfolioAttack::from_registry(&registry, &["sat".to_string()]).unwrap();
        let request = AttackRequest::oracle_less(&locked.circuit);
        assert!(matches!(
            portfolio.execute(&request),
            Err(AttackError::Unsupported { .. })
        ));
    }
}
