//! The unified attack API: every attack in the suite — the baselines here
//! and KRATT itself in `kratt-core` — is driven through the same
//! [`Attack`] trait as an interchangeable engine over a
//! (locked netlist, optional oracle, budget) request.
//!
//! * [`ThreatModel`] names the paper's two adversary models (oracle-less /
//!   oracle-guided); [`Attack::supports`] declares which ones an engine
//!   accepts and [`Attack::execute`] rejects the others with
//!   [`AttackError::Unsupported`].
//! * [`Budget`] is the one shared resource budget (wall clock, iterations,
//!   SAT conflicts, oracle queries). [`Budget::start`] turns it into a
//!   [`Deadline`] — an absolute point in time that is threaded down into the
//!   SAT and QBF solver loops so every component of an attack honours the
//!   same wall-clock limit cooperatively instead of restarting its own
//!   timer per solver call.
//! * [`AttackRequest`] bundles the three inputs; the unified
//!   [`AttackRun`](crate::report::AttackRun) result covers the outcomes of
//!   all attacks (exact key, partial guess, recovered circuit, out of
//!   budget) plus shared telemetry.

use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::report::AttackRun;
use kratt_netlist::Circuit;
pub use kratt_sat::CancelFlag;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The scheduling cost class of an attack.
///
/// The work-stealing batch harness deals [`Heavy`](CostClass::Heavy)
/// solver-bound jobs (SAT/QBF CEGAR loops that may run to their deadline)
/// out across the worker deques first so the long poles start immediately,
/// and interleaves [`Cheap`](CostClass::Cheap) structural jobs (SCOPE,
/// FALL, removal — simulation- and analysis-bound, typically milliseconds)
/// through the global injector to fill the gaps. The class is advisory:
/// it orders the queues, it never changes what runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Structural / simulation-bound; expected to finish quickly.
    Cheap,
    /// Solver-bound; may legitimately consume its whole budget.
    Heavy,
}

/// The two adversary models of the paper (Section II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreatModel {
    /// The attacker has only the locked netlist.
    OracleLess,
    /// The attacker additionally owns a functional (activated) IC and can
    /// query it as a black box.
    OracleGuided,
}

impl ThreatModel {
    /// Both models, in paper order.
    pub const ALL: [ThreatModel; 2] = [ThreatModel::OracleLess, ThreatModel::OracleGuided];
}

impl fmt::Display for ThreatModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreatModel::OracleLess => write!(f, "oracle-less"),
            ThreatModel::OracleGuided => write!(f, "oracle-guided"),
        }
    }
}

/// The one shared resource budget of an attack run. Replaces the previously
/// scattered per-attack knobs (`AttackBudget`, `QbfConfig::time_limit`, the
/// structural-analysis timeouts): a request carries a single `Budget` and
/// every engine derives its solver limits from it.
///
/// The paper gives the baseline attacks a two-day limit on a 32-core server;
/// this reproduction scales the limits down but keeps the semantics: an
/// exhausted budget is reported as the out-of-budget *outcome*, never as an
/// error.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Wall-clock limit for the whole attack (`None` = unlimited).
    pub time_limit: Option<Duration>,
    /// Maximum number of attack iterations (DIPs, refinement rounds, ...).
    pub max_iterations: usize,
    /// Conflict budget handed to each individual SAT call.
    pub sat_conflict_limit: Option<u64>,
    /// Cap on oracle queries (`None` = unlimited).
    pub max_oracle_queries: Option<u64>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            time_limit: Some(Duration::from_secs(60)),
            max_iterations: 100_000,
            sat_conflict_limit: None,
            max_oracle_queries: None,
        }
    }
}

impl Budget {
    /// A budget with only a wall-clock limit.
    pub fn with_time_limit(limit: Duration) -> Self {
        Budget {
            time_limit: Some(limit),
            ..Default::default()
        }
    }

    /// A budget without any limits (runs to completion).
    pub fn unlimited() -> Self {
        Budget {
            time_limit: None,
            max_iterations: usize::MAX,
            sat_conflict_limit: None,
            max_oracle_queries: None,
        }
    }

    /// An already-exhausted budget: every conforming attack returns the
    /// out-of-budget outcome immediately. Used by the conformance tests.
    pub fn zero() -> Self {
        Budget {
            time_limit: Some(Duration::ZERO),
            max_iterations: 0,
            sat_conflict_limit: Some(0),
            max_oracle_queries: Some(0),
        }
    }

    /// Starts the wall clock: captures "now" and converts the relative
    /// time limit into an absolute [`Deadline`].
    pub fn start(&self) -> Deadline {
        Deadline::started(self.time_limit)
    }

    /// Whether `queries` oracle queries exceed the query cap.
    pub fn oracle_queries_exhausted(&self, queries: u64) -> bool {
        self.max_oracle_queries
            .map(|cap| queries >= cap)
            .unwrap_or(false)
    }

    /// A per-member slice of this budget for an `n`-way portfolio race.
    ///
    /// The members run *concurrently*, so the wall clock and the per-call
    /// SAT conflict limit are shared as-is; the additive resources
    /// (iterations, oracle queries) are ceil-divided so the portfolio as a
    /// whole never spends more than the caller granted.
    pub fn slice(&self, n: usize) -> Budget {
        let n = n.max(1);
        Budget {
            time_limit: self.time_limit,
            max_iterations: self.max_iterations.div_ceil(n),
            sat_conflict_limit: self.sat_conflict_limit,
            max_oracle_queries: self.max_oracle_queries.map(|q| q.div_ceil(n as u64)),
        }
    }
}

/// An absolute wall-clock deadline plus the instant the attack started,
/// plus a shared cooperative [`CancelFlag`].
///
/// The deadline is cheap to clone (clones share the cancellation flag and
/// the expiry latch) and is handed down (as a raw [`Instant`] via
/// [`Deadline::instant`], and as a [`CancelFlag`] via
/// [`Deadline::cancel_flag`]) into `kratt-sat`'s `SolverConfig` and
/// `kratt-qbf`'s `QbfConfig`, so a long-running SAT or CEGAR loop aborts at
/// the *attack's* deadline — or the instant a portfolio sibling wins the
/// race — rather than restarting a fresh per-call timer.
///
/// [`Deadline::expired`] sits on hot loops (the DIP loop, FALL's per-node
/// scan, removal's cone walk), so it reads the clock only every
/// [`CLOCK_CHECK_INTERVAL`] calls and latches the first expiry it sees;
/// between clock reads it costs two relaxed atomic loads. The very first
/// call always reads the clock, so an already-spent budget is still
/// reported immediately.
#[derive(Debug, Clone)]
pub struct Deadline {
    start: Instant,
    end: Option<Instant>,
    cancel: CancelFlag,
    gate: Arc<ExpiryGate>,
}

/// How many [`Deadline::expired`] calls share one `Instant::now` read.
pub const CLOCK_CHECK_INTERVAL: u32 = 64;

/// Shared expiry state: once the clock has been observed past the end
/// instant the latch stays set, so clones agree and later calls skip the
/// syscall entirely.
#[derive(Debug, Default)]
struct ExpiryGate {
    latched: AtomicBool,
    calls: AtomicU32,
}

impl Deadline {
    /// A deadline `limit` from now (`None` = unlimited).
    pub fn started(limit: Option<Duration>) -> Self {
        let start = Instant::now();
        Deadline {
            start,
            end: limit.map(|l| start + l),
            cancel: CancelFlag::default(),
            gate: Arc::new(ExpiryGate::default()),
        }
    }

    /// A deadline that never expires.
    pub fn unlimited() -> Self {
        Deadline::started(None)
    }

    /// Replaces the cancellation flag with an externally shared one (the
    /// portfolio hands every member the same race flag this way).
    pub fn with_cancel(mut self, cancel: CancelFlag) -> Self {
        self.cancel = cancel;
        self
    }

    /// Whether the deadline has passed or the run was cancelled.
    pub fn expired(&self) -> bool {
        if self.is_cancelled() || self.gate.latched.load(Ordering::Relaxed) {
            return true;
        }
        let Some(end) = self.end else {
            return false;
        };
        // `fetch_add` returns the pre-increment value, so call 0 — the
        // entry check every engine performs — always reads the clock.
        let calls = self.gate.calls.fetch_add(1, Ordering::Relaxed);
        if !calls.is_multiple_of(CLOCK_CHECK_INTERVAL) {
            return false;
        }
        if Instant::now() >= end {
            self.gate.latched.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Raises the cancellation flag: every holder of this deadline (or of
    /// its [`cancel_flag`](Deadline::cancel_flag)) observes `expired() ==
    /// true` from its next check onwards.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether the cancellation flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The shared cancellation flag, in the form `SolverConfig::cancel` and
    /// `QbfConfig::cancel` take.
    pub fn cancel_flag(&self) -> CancelFlag {
        self.cancel.clone()
    }

    /// Wall-clock time since the attack started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time left before expiry; `None` means unlimited. Always reads the
    /// clock — budget-splitting callers need the exact value.
    pub fn remaining(&self) -> Option<Duration> {
        self.end
            .map(|end| end.saturating_duration_since(Instant::now()))
    }

    /// The absolute expiry instant, in the form the solver configs take.
    pub fn instant(&self) -> Option<Instant> {
        self.end
    }
}

/// Everything an attack needs: the locked netlist, oracle access when the
/// threat model grants it, and the shared [`Budget`].
#[derive(Debug)]
pub struct AttackRequest<'a> {
    /// The locked netlist under attack.
    pub locked: &'a Circuit,
    /// The functional IC, when the adversary has one.
    pub oracle: Option<&'a Oracle>,
    /// The shared resource budget.
    pub budget: Budget,
    /// An externally shared cancellation flag: when present, the deadline
    /// engines derive via [`AttackRequest::deadline`] reports `expired()`
    /// as soon as the flag is raised (the portfolio race uses this to stop
    /// losing members).
    pub cancel: Option<CancelFlag>,
}

impl<'a> AttackRequest<'a> {
    /// An oracle-less request with the default budget.
    pub fn oracle_less(locked: &'a Circuit) -> Self {
        AttackRequest {
            locked,
            oracle: None,
            budget: Budget::default(),
            cancel: None,
        }
    }

    /// An oracle-guided request with the default budget.
    pub fn oracle_guided(locked: &'a Circuit, oracle: &'a Oracle) -> Self {
        AttackRequest {
            locked,
            oracle: Some(oracle),
            budget: Budget::default(),
            cancel: None,
        }
    }

    /// Replaces the budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a shared cancellation flag (see [`AttackRequest::cancel`]).
    pub fn with_cancel(mut self, cancel: CancelFlag) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Starts the budget's wall clock and attaches the request's
    /// cancellation flag. Engines should derive their deadline here rather
    /// than from `budget.start()` so external cancellation reaches them.
    pub fn deadline(&self) -> Deadline {
        let deadline = self.budget.start();
        match &self.cancel {
            Some(flag) => deadline.with_cancel(flag.clone()),
            None => deadline,
        }
    }

    /// The threat model this request grants.
    pub fn threat_model(&self) -> ThreatModel {
        if self.oracle.is_some() {
            ThreatModel::OracleGuided
        } else {
            ThreatModel::OracleLess
        }
    }

    /// The oracle, or the [`AttackError::Unsupported`] error an
    /// oracle-guided-only attack reports on an oracle-less request.
    pub fn require_oracle(&self, attack: &str) -> Result<&'a Oracle, AttackError> {
        self.oracle.ok_or_else(|| AttackError::Unsupported {
            attack: attack.to_string(),
            model: ThreatModel::OracleLess,
        })
    }
}

/// A logic-locking attack as an interchangeable engine.
///
/// Implementors are stateless configuration objects (`Send + Sync`), so one
/// instance can serve many concurrent [`execute`](Attack::execute) calls —
/// which is what the batch [`Harness`](crate::harness::Harness) does.
pub trait Attack: Send + Sync {
    /// The registry name of the attack (`"sat"`, `"kratt"`, ...).
    fn name(&self) -> &'static str;

    /// Whether the attack accepts requests under the given threat model.
    /// [`execute`](Attack::execute) returns [`AttackError::Unsupported`]
    /// exactly when this returns `false` for the request's model.
    fn supports(&self, model: ThreatModel) -> bool;

    /// The scheduling cost class the batch harness orders job queues by.
    /// Defaults to [`CostClass::Heavy`] — the conservative choice for
    /// solver-bound engines; fast structural attacks override to
    /// [`CostClass::Cheap`].
    fn cost_class(&self) -> CostClass {
        CostClass::Heavy
    }

    /// Runs the attack on a request.
    ///
    /// Exhausting the budget is *not* an error: conforming implementations
    /// return [`AttackOutcome::OutOfBudget`](crate::report::AttackOutcome)
    /// (immediately, when the request's budget is already spent).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::Unsupported`] for an unsupported threat model,
    /// [`AttackError::NoKeyInputs`] for an unlocked netlist, and propagates
    /// interface/netlist errors.
    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_default_has_a_time_limit() {
        let budget = Budget::default();
        assert!(budget.time_limit.is_some());
        let custom = Budget::with_time_limit(Duration::from_secs(5));
        assert_eq!(custom.time_limit, Some(Duration::from_secs(5)));
        assert!(Budget::unlimited().time_limit.is_none());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let deadline = Budget::zero().start();
        assert!(deadline.expired());
        assert_eq!(deadline.remaining(), Some(Duration::ZERO));
        assert!(deadline.instant().is_some());
        assert!(Budget::zero().oracle_queries_exhausted(0));
    }

    #[test]
    fn unlimited_deadline_never_expires() {
        let deadline = Deadline::unlimited();
        assert!(!deadline.expired());
        assert!(deadline.remaining().is_none());
        assert!(deadline.instant().is_none());
    }

    #[test]
    fn cancellation_makes_a_deadline_expire() {
        let deadline = Deadline::unlimited();
        assert!(!deadline.expired());
        let clone = deadline.clone();
        deadline.cancel();
        assert!(clone.expired());
        assert!(clone.is_cancelled());
        // The flag propagates into deadlines built around the same token.
        let other = Deadline::unlimited().with_cancel(deadline.cancel_flag());
        assert!(other.expired());
    }

    #[test]
    fn expiry_latches_and_interval_gates_the_clock() {
        // Already expired at call 0: the entry check latches, so every
        // later call — including the clock-gated ones — stays true.
        let deadline = Deadline::started(Some(Duration::ZERO));
        for _ in 0..(CLOCK_CHECK_INTERVAL * 2) {
            assert!(deadline.expired());
        }
        // A live deadline stays false through the gated calls.
        let live = Deadline::started(Some(Duration::from_secs(3600)));
        for _ in 0..(CLOCK_CHECK_INTERVAL * 2) {
            assert!(!live.expired());
        }
    }

    #[test]
    fn request_cancel_flag_reaches_the_derived_deadline() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        c.mark_output(a);
        let flag = CancelFlag::default();
        let request = AttackRequest::oracle_less(&c)
            .with_budget(Budget::unlimited())
            .with_cancel(flag.clone());
        let deadline = request.deadline();
        assert!(!deadline.expired());
        flag.store(true, Ordering::Relaxed);
        assert!(deadline.expired());
    }

    #[test]
    fn budget_slices_divide_additive_resources_only() {
        let budget = Budget {
            time_limit: Some(Duration::from_secs(9)),
            max_iterations: 10,
            sat_conflict_limit: Some(500),
            max_oracle_queries: Some(7),
        };
        let slice = budget.slice(3);
        assert_eq!(slice.time_limit, budget.time_limit);
        assert_eq!(slice.sat_conflict_limit, budget.sat_conflict_limit);
        assert_eq!(slice.max_iterations, 4);
        assert_eq!(slice.max_oracle_queries, Some(3));
        // Unlimited budgets stay unlimited; n = 0 is treated as 1.
        let unlimited = Budget::unlimited().slice(0);
        assert_eq!(unlimited.max_iterations, usize::MAX);
        assert!(unlimited.max_oracle_queries.is_none());
    }

    #[test]
    fn oracle_query_cap_is_checked() {
        let budget = Budget {
            max_oracle_queries: Some(10),
            ..Budget::default()
        };
        assert!(!budget.oracle_queries_exhausted(9));
        assert!(budget.oracle_queries_exhausted(10));
        assert!(!Budget::default().oracle_queries_exhausted(u64::MAX));
    }

    #[test]
    fn threat_model_display_and_request_shape() {
        assert_eq!(ThreatModel::OracleLess.to_string(), "oracle-less");
        assert_eq!(ThreatModel::OracleGuided.to_string(), "oracle-guided");
        let mut c = Circuit::new("t");
        let a = c.add_input("a").unwrap();
        c.mark_output(a);
        let request = AttackRequest::oracle_less(&c).with_budget(Budget::zero());
        assert_eq!(request.threat_model(), ThreatModel::OracleLess);
        assert!(matches!(
            request.require_oracle("sat"),
            Err(AttackError::Unsupported {
                model: ThreatModel::OracleLess,
                ..
            })
        ));
    }
}
