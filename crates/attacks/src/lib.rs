//! Baseline logic-locking attacks and the oracle abstraction.
//!
//! These are the attacks the paper compares KRATT against:
//!
//! * [`Oracle`] — the "functional IC bought on the market": it answers
//!   input/output queries for the original circuit and counts how many
//!   queries an attack spends.
//! * [`ScopeAttack`] — the oracle-less SCOPE constant-propagation attack
//!   \[Alaql et al., TVLSI'21\]: per key bit, compare the synthesised circuit
//!   with the bit tied to 0 and to 1 and guess from the structural asymmetry.
//! * [`SatAttack`] — the oracle-guided SAT-based attack \[Subramanyan et
//!   al., HOST'15\]: iteratively find distinguishing input patterns (DIPs)
//!   with a key-pair miter, query the oracle, and constrain until all
//!   remaining keys are equivalent.
//! * [`DoubleDipAttack`] — the Double DIP variant \[Shen & Zhou\] that
//!   eliminates at least two wrong keys per iteration.
//! * [`AppSatAttack`] — the approximate AppSAT variant \[Shamsi et al.\]
//!   that terminates early with an approximately correct key.
//! * [`RemovalAttack`] — the removal attack \[Yasin et al., TETC'20\] that
//!   identifies the critical signal of an SFLT, strips its cone and rewires
//!   the output to a constant.
//! * [`FallAttack`] — the FALL functional-analysis attack \[Sirone &
//!   Subramanyan, DATE'19\] against stripped-functionality locking, which the
//!   paper reports running "without success" on its synthesised circuits.
//! * [`structure::find_critical_signal`] — the shared structural primitive
//!   (the first gate all key inputs pass through) used both by the removal
//!   attack and by KRATT's logic-removal step.
//!
//! Every attack is additionally exposed through the unified attack API:
//!
//! * [`Attack`] — the engine trait (`name` / `supports` / `execute`) every
//!   attack implements, driven by an [`AttackRequest`] (locked netlist,
//!   optional oracle, shared [`Budget`]) and returning a unified
//!   [`AttackRun`] report.
//! * [`AttackRegistry`] — name-based construction (`"sat"`,
//!   `"double-dip"`, `"appsat"`, `"fall"`, `"removal"`, `"scope"`; the
//!   `kratt` crate adds `"kratt"`).
//! * [`Harness`] — the parallel attacks × benchmarks batch driver behind
//!   the experiment binaries, fed eagerly (a case slice) or lazily through
//!   a [`CaseSource`].
//! * [`Campaign`] — the end-to-end lock → attack → verify pipeline: scheme
//!   specs × hosts × attacks expanded into harness jobs, locked instances
//!   memoised in a content-addressed [`CorpusCache`], every claimed key
//!   verified against the planted secret. Built through the validating
//!   [`CampaignBuilder`] (typed [`CampaignError`]s for empty or
//!   contradictory axes), and runnable as a *service*: a persistent
//!   [`CampaignJournal`] replays recorded verdicts so re-runs attack only
//!   unrecorded cells, and [`Campaign::run_observed`] streams each verdict
//!   as it commits.
//! * The [`Harness`] schedules jobs with per-worker work-stealing deques:
//!   [`CostClass::Heavy`] solver jobs are dealt across workers first,
//!   [`CostClass::Cheap`] structural jobs interleave through a global
//!   injector, all under one global [`Deadline`]
//!   ([`Harness::run_matrix_scheduled`], with [`SchedulerStats`] and
//!   per-row [`JobTelemetry`]).
//!
//! The unified attack API is the *only* entry point: the legacy per-attack
//! inherent `run` methods were removed, callers go through
//! [`Attack::execute`] or the [`AttackRegistry`]. Budgets are unified in
//! [`Budget`] (the old [`AttackBudget`] name is an alias), and its
//! [`Deadline`] is threaded into the SAT/QBF loops so every component of an
//! attack honours one wall clock cooperatively.

pub mod appsat;
pub mod campaign;
pub mod ddip;
pub mod engine;
pub mod error;
pub mod fall;
pub mod harness;
pub mod journal;
pub mod oracle;
pub mod portfolio;
pub mod registry;
pub mod removal;
pub mod report;
pub mod sat_attack;
pub mod scope;
pub mod scope_replay;
pub mod structure;

pub use appsat::AppSatAttack;
pub use campaign::{
    Campaign, CampaignBuilder, CampaignCell, CampaignError, CampaignHost, CampaignReport,
    CorpusCache, LockedInstance, PrepareHook, Verdict,
};
pub use ddip::DoubleDipAttack;
pub use engine::{Attack, AttackRequest, Budget, CostClass, Deadline, ThreatModel};
pub use error::AttackError;
pub use fall::{FallAttack, FallConfig, FallReport};
pub use harness::{
    CaseSource, FnCaseSource, Harness, JobTelemetry, MatrixCase, MatrixRow, RowHook,
    ScheduleOptions, ScheduleReport, SchedulerStats,
};
pub use journal::CampaignJournal;
pub use oracle::Oracle;
pub use portfolio::PortfolioAttack;
pub use registry::AttackRegistry;
pub use removal::RemovalAttack;
pub use report::{
    key_input_names, score_guess, AttackBudget, AttackOutcome, AttackRun, KeyGuess, MemberRun,
    NamedGuess, OgOutcome, OgReport, OlReport, StepTiming,
};
pub use sat_attack::{measure_dip_encoding, DipEncodeStats, DipEngineKind, SatAttack};
pub use scope::{ScopeAttack, ScopeEngine};
pub use scope_replay::ScopePlan;
