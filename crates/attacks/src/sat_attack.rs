//! The oracle-guided SAT-based attack and the shared DIP-loop machinery used
//! by its Double DIP and AppSAT variants.

use crate::engine::{Attack, AttackRequest, Budget, Deadline, ThreatModel};
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::report::{AttackBudget, AttackRun, OgOutcome, OgReport, StepTiming};
use kratt_locking::SecretKey;
use kratt_netlist::Circuit;
use kratt_sat::{Encoder, Lit, SatResult, Solver, SolverConfig, Var};
use std::collections::HashMap;

/// Result of the final key extraction after DIP exhaustion.
pub(crate) enum KeyExtraction {
    /// A key consistent with every IO constraint.
    Key(SecretKey),
    /// The constraints are unsatisfiable (degenerate instances only — after
    /// exhaustion at least the oracle's own key should be consistent).
    NoneConsistent,
    /// The SAT budget ran out before the extraction finished.
    Budget,
}

/// Result of one distinguishing-input search.
pub(crate) enum DipSearch {
    /// A DIP was found; carries the data-input pattern and the candidate key
    /// (the `K_A` assignment of the satisfying model).
    Found {
        dip: Vec<bool>,
        candidate_key: Vec<bool>,
    },
    /// No DIP exists any more: all keys consistent with the constraints are
    /// functionally equivalent.
    Exhausted,
    /// The SAT budget ran out.
    Budget,
}

/// The incremental two-copy miter the whole SAT-attack family is built on.
pub(crate) struct DipEngine<'a> {
    locked: &'a Circuit,
    oracle: &'a Oracle,
    solver: Solver,
    encoder: Encoder,
    key_a: Vec<Var>,
    key_b: Vec<Var>,
    data_names: Vec<String>,
    data_vars: Vec<Var>,
    key_names: Vec<String>,
    constraints: Vec<(Vec<bool>, Vec<bool>)>,
    deadline: Deadline,
    /// The oracle's lifetime query count when this engine was created, so
    /// budget accounting and telemetry report this run's queries only even
    /// when a caller reuses one oracle across runs.
    base_queries: u64,
}

impl<'a> DipEngine<'a> {
    pub(crate) fn new(
        locked: &'a Circuit,
        oracle: &'a Oracle,
        budget: &AttackBudget,
        deadline: Deadline,
    ) -> Result<Self, AttackError> {
        let key_names: Vec<String> = locked
            .key_inputs()
            .iter()
            .map(|&n| locked.net_name(n).to_string())
            .collect();
        if key_names.is_empty() {
            return Err(AttackError::NoKeyInputs);
        }
        let data_names: Vec<String> = locked
            .data_inputs()
            .iter()
            .map(|&n| locked.net_name(n).to_string())
            .collect();
        for name in &data_names {
            let known = oracle
                .circuit()
                .find_net(name)
                .map(|n| oracle.circuit().is_input(n))
                .unwrap_or(false);
            if !known {
                return Err(AttackError::InterfaceMismatch(name.clone()));
            }
        }

        // The attack's one absolute deadline bounds every SAT call; no
        // per-call time limit, which would restart the clock per DIP.
        let mut solver = Solver::with_config(SolverConfig {
            conflict_limit: budget.sat_conflict_limit,
            deadline: deadline.instant(),
            ..Default::default()
        });
        let encoder = Encoder::new();
        let enc_a = encoder.encode(&mut solver, locked, &HashMap::new());
        // Copy B shares the data inputs but uses fresh key variables.
        let shared: HashMap<String, Var> = enc_a
            .inputs()
            .iter()
            .filter(|(name, _)| data_names.contains(name))
            .cloned()
            .collect();
        let enc_b = encoder.encode(&mut solver, locked, &shared);
        let miter = encoder.miter(&mut solver, &enc_a, &enc_b);
        solver.add_clause([Lit::positive(miter)]);

        let key_a = key_names
            .iter()
            .map(|n| enc_a.input_var(n).expect("key input encoded"))
            .collect();
        let key_b = key_names
            .iter()
            .map(|n| enc_b.input_var(n).expect("key input encoded"))
            .collect();
        let data_vars = data_names
            .iter()
            .map(|n| enc_a.input_var(n).expect("data input encoded"))
            .collect();
        let key_a: Vec<Var> = key_a;
        let _ = &enc_a;
        Ok(DipEngine {
            locked,
            oracle,
            solver,
            encoder,
            key_a,
            key_b,
            data_names,
            data_vars,
            key_names,
            constraints: Vec::new(),
            deadline,
            base_queries: oracle.queries(),
        })
    }

    /// Names of the key inputs, in `keyinput` order.
    pub(crate) fn key_names(&self) -> &[String] {
        &self.key_names
    }

    /// Searches for the next distinguishing input pattern.
    pub(crate) fn find_dip(&mut self) -> DipSearch {
        match self.solver.solve() {
            SatResult::Sat(model) => DipSearch::Found {
                dip: self.data_vars.iter().map(|&v| model.value(v)).collect(),
                candidate_key: self.key_a.iter().map(|&v| model.value(v)).collect(),
            },
            SatResult::Unsat => DipSearch::Exhausted,
            SatResult::Unknown => DipSearch::Budget,
        }
    }

    /// Queries the oracle for the given data-input pattern.
    pub(crate) fn query_oracle(&self, dip: &[bool]) -> Result<Vec<bool>, AttackError> {
        let assignment: Vec<(&str, bool)> = self
            .data_names
            .iter()
            .map(String::as_str)
            .zip(dip.iter().copied())
            .collect();
        Ok(self.oracle.query_by_name(&assignment)?)
    }

    /// Adds the IO constraint "both key copies must reproduce `outputs` on
    /// `dip`" to the miter.
    pub(crate) fn constrain(&mut self, dip: &[bool], outputs: &[bool]) {
        for keys in [&self.key_a, &self.key_b] {
            let shared: HashMap<String, Var> = self
                .key_names
                .iter()
                .cloned()
                .zip(keys.iter().copied())
                .collect();
            let copy = self.encoder.encode(&mut self.solver, self.locked, &shared);
            for (name, &value) in self.data_names.iter().zip(dip) {
                let var = copy.input_var(name).expect("data input encoded");
                self.solver.add_clause([Lit::with_polarity(var, value)]);
            }
            for (&out_var, &value) in copy.outputs().iter().zip(outputs) {
                self.solver.add_clause([Lit::with_polarity(out_var, value)]);
            }
        }
        self.constraints.push((dip.to_vec(), outputs.to_vec()));
    }

    /// Extracts a key consistent with every accumulated IO constraint. Called
    /// after [`DipSearch::Exhausted`]: any such key is functionally correct.
    pub(crate) fn extract_key(&self, budget: &AttackBudget) -> Result<KeyExtraction, AttackError> {
        let mut solver = Solver::with_config(SolverConfig {
            conflict_limit: budget.sat_conflict_limit,
            deadline: self.deadline.instant(),
            ..Default::default()
        });
        let key_vars: Vec<Var> = self.key_names.iter().map(|_| solver.new_var()).collect();
        let shared_keys: HashMap<String, Var> = self
            .key_names
            .iter()
            .cloned()
            .zip(key_vars.iter().copied())
            .collect();
        for (dip, outputs) in &self.constraints {
            let copy = self.encoder.encode(&mut solver, self.locked, &shared_keys);
            for (name, &value) in self.data_names.iter().zip(dip) {
                let var = copy.input_var(name).expect("data input encoded");
                solver.add_clause([Lit::with_polarity(var, value)]);
            }
            for (&out_var, &value) in copy.outputs().iter().zip(outputs) {
                solver.add_clause([Lit::with_polarity(out_var, value)]);
            }
        }
        match solver.solve() {
            SatResult::Sat(model) => Ok(KeyExtraction::Key(SecretKey::from_bits(
                key_vars.iter().map(|&v| model.value(v)).collect(),
            ))),
            SatResult::Unsat => Ok(KeyExtraction::NoneConsistent),
            // The shared deadline or conflict budget ran out mid-extraction:
            // this must surface as out-of-time, never as a fabricated key.
            SatResult::Unknown => Ok(KeyExtraction::Budget),
        }
    }

    /// Simulates the locked circuit under `key` on the given data pattern.
    pub(crate) fn simulate_locked(
        &self,
        key: &[bool],
        data: &[bool],
    ) -> Result<Vec<bool>, AttackError> {
        let sim = kratt_netlist::sim::Simulator::new(self.locked)?;
        let mut pattern = vec![false; self.locked.num_inputs()];
        for (name, &value) in self.data_names.iter().zip(data) {
            let net = self.locked.find_net(name).expect("data input exists");
            pattern[self.locked.input_position(net).expect("is input")] = value;
        }
        for (name, &value) in self.key_names.iter().zip(key) {
            let net = self.locked.find_net(name).expect("key input exists");
            pattern[self.locked.input_position(net).expect("is input")] = value;
        }
        Ok(sim.run(&pattern)?)
    }

    /// Number of data (non-key) inputs.
    pub(crate) fn num_data_inputs(&self) -> usize {
        self.data_names.len()
    }

    /// Number of oracle queries this run has spent so far.
    pub(crate) fn oracle_queries(&self) -> u64 {
        self.oracle.queries().saturating_sub(self.base_queries)
    }
}

/// The SAT-based attack of Subramanyan et al. (HOST'15): iteratively find
/// DIPs, query the oracle, and constrain the key space until every remaining
/// key is functionally correct.
#[derive(Debug, Clone, Default)]
pub struct SatAttack {
    /// Resource budget; an exhausted budget reports `OoT` like the paper.
    pub budget: AttackBudget,
}

impl SatAttack {
    /// SAT attack with the default budget.
    pub fn new() -> Self {
        SatAttack::default()
    }

    /// SAT attack with an explicit budget.
    pub fn with_budget(budget: AttackBudget) -> Self {
        SatAttack { budget }
    }

    /// Runs the attack against a locked netlist with oracle access.
    ///
    /// # Errors
    ///
    /// Returns an error if the netlist has no key inputs or its interface
    /// does not match the oracle.
    pub fn run(&self, locked: &Circuit, oracle: &Oracle) -> Result<OgReport, AttackError> {
        let deadline = self.budget.start();
        Ok(self
            .run_with_deadline(locked, oracle, &self.budget, deadline)?
            .0)
    }

    /// The DIP loop under an explicit deadline; also returns step timings.
    fn run_with_deadline(
        &self,
        locked: &Circuit,
        oracle: &Oracle,
        budget: &Budget,
        deadline: Deadline,
    ) -> Result<(OgReport, Vec<StepTiming>), AttackError> {
        let mut engine = DipEngine::new(locked, oracle, budget, deadline)?;
        let encode_time = deadline.elapsed();
        let mut iterations = 0usize;
        loop {
            if deadline.expired()
                || iterations >= budget.max_iterations
                || budget.oracle_queries_exhausted(engine.oracle_queries())
            {
                return Ok(out_of_time(deadline, iterations, &engine, encode_time));
            }
            match engine.find_dip() {
                DipSearch::Found { dip, .. } => {
                    let outputs = engine.query_oracle(&dip)?;
                    engine.constrain(&dip, &outputs);
                    iterations += 1;
                }
                DipSearch::Exhausted => {
                    let loop_time = deadline.elapsed() - encode_time;
                    let outcome = match engine.extract_key(budget)? {
                        KeyExtraction::Key(key) => OgOutcome::Key(key),
                        KeyExtraction::NoneConsistent => {
                            OgOutcome::Key(SecretKey::from_bits(vec![
                                false;
                                engine.key_names().len()
                            ]))
                        }
                        KeyExtraction::Budget => {
                            return Ok(out_of_time(deadline, iterations, &engine, encode_time))
                        }
                    };
                    let report = OgReport {
                        outcome,
                        runtime: deadline.elapsed(),
                        iterations,
                        oracle_queries: engine.oracle_queries(),
                    };
                    let steps = vec![
                        StepTiming::new("encode", encode_time),
                        StepTiming::new("dip-loop", loop_time),
                        StepTiming::new(
                            "key-extraction",
                            deadline.elapsed() - encode_time - loop_time,
                        ),
                    ];
                    return Ok((report, steps));
                }
                DipSearch::Budget => {
                    return Ok(out_of_time(deadline, iterations, &engine, encode_time));
                }
            }
        }
    }
}

/// The "OoT" report shape shared by the DIP-family loops.
fn out_of_time(
    deadline: Deadline,
    iterations: usize,
    engine: &DipEngine<'_>,
    encode_time: std::time::Duration,
) -> (OgReport, Vec<StepTiming>) {
    let report = OgReport {
        outcome: OgOutcome::OutOfTime,
        runtime: deadline.elapsed(),
        iterations,
        oracle_queries: engine.oracle_queries(),
    };
    let steps = vec![
        StepTiming::new("encode", encode_time),
        StepTiming::new("dip-loop", deadline.elapsed().saturating_sub(encode_time)),
    ];
    (report, steps)
}

/// Wraps a DIP-family [`OgReport`] into the unified [`AttackRun`].
pub(crate) fn og_run(attack: &str, report: OgReport, steps: Vec<StepTiming>) -> AttackRun {
    AttackRun {
        attack: attack.to_string(),
        threat_model: ThreatModel::OracleGuided,
        outcome: report.outcome.into(),
        runtime: report.runtime,
        iterations: report.iterations,
        oracle_queries: report.oracle_queries,
        steps,
    }
}

impl Attack for SatAttack {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn supports(&self, model: ThreatModel) -> bool {
        model == ThreatModel::OracleGuided
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let oracle = request.require_oracle(self.name())?;
        let deadline = request.budget.start();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let (report, steps) =
            self.run_with_deadline(request.locked, oracle, &request.budget, deadline)?;
        Ok(og_run(self.name(), report, steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_locking::{LockingTechnique, RandomXorLocking, SarLock, SecretKey};
    use kratt_netlist::{GateType, NetId};
    use std::time::Duration;

    pub(crate) fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn sat_attack_breaks_random_xor_locking() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b101101, 6);
        let locked = RandomXorLocking::new(6, 11)
            .lock(&original, &secret)
            .unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = SatAttack::new().run(&locked.circuit, &oracle).unwrap();
        let key = report.outcome.key().expect("RLL must be broken").clone();
        // The recovered key must be functionally correct (it may differ
        // bitwise if the instance has multiple correct keys).
        let unlocked = locked.apply_key(&key).unwrap();
        assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap());
        assert!(report.iterations <= 64, "RLL should fall within a few DIPs");
    }

    #[test]
    fn sat_attack_breaks_small_sarlock_eventually() {
        // With only 3 key bits the exponential DIP count is tiny, so even a
        // SAT-resilient scheme falls; this checks the full loop end to end.
        let original = adder4();
        let secret = SecretKey::from_u64(0b110, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = SatAttack::new().run(&locked.circuit, &oracle).unwrap();
        let key = report
            .outcome
            .key()
            .expect("3-bit SARLock must be broken")
            .clone();
        let unlocked = locked.apply_key(&key).unwrap();
        assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn sat_attack_times_out_on_a_larger_point_function() {
        // 9 protected bits means up to ~2^9 DIPs; with a tiny iteration
        // budget the attack must report OoT, which is the Table III shape.
        let original = adder4();
        let secret = SecretKey::from_u64(0x1ab & 0x1ff, 9);
        let locked = SarLock::new(9).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let attack = SatAttack::with_budget(AttackBudget {
            time_limit: Some(Duration::from_secs(2)),
            max_iterations: 5,
            ..AttackBudget::default()
        });
        let report = attack.run(&locked.circuit, &oracle).unwrap();
        assert_eq!(report.outcome, OgOutcome::OutOfTime);
        assert!(report.iterations <= 5);
    }

    #[test]
    fn missing_key_inputs_is_an_error() {
        let original = adder4();
        let oracle = Oracle::new(original.clone()).unwrap();
        assert!(matches!(
            SatAttack::new().run(&original, &oracle),
            Err(AttackError::NoKeyInputs)
        ));
    }

    #[test]
    fn interface_mismatch_is_detected() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1, 1);
        let locked = RandomXorLocking::new(1, 1)
            .lock(&original, &secret)
            .unwrap();
        // Oracle over a circuit with differently named inputs.
        let mut other = Circuit::new("other");
        let x = other.add_input("weird").unwrap();
        let y = other.add_gate(GateType::Not, "y", &[x]).unwrap();
        other.mark_output(y);
        let oracle = Oracle::new(other).unwrap();
        assert!(matches!(
            SatAttack::new().run(&locked.circuit, &oracle),
            Err(AttackError::InterfaceMismatch(_))
        ));
    }
}
