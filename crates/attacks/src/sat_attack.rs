//! The oracle-guided SAT-based attack and the shared DIP-loop machinery used
//! by its Double DIP and AppSAT variants.

use crate::engine::{Attack, AttackRequest, Budget, Deadline, ThreatModel};
use crate::error::AttackError;
use crate::oracle::Oracle;
use crate::report::{AttackBudget, AttackRun, OgOutcome, OgReport, StepTiming};
use kratt_locking::SecretKey;
use kratt_netlist::sim::Simulator;
use kratt_netlist::{Aig, AigLit, Circuit};
use kratt_sat::{Encoder, Lit, SatResult, Solver, SolverConfig, Var};
use std::collections::HashMap;

/// Whether the DIP engines keep one incremental solver across the whole
/// CEGAR loop (assumption-gated miter, learned clauses retained into key
/// extraction). On by default; set `KRATT_INCREMENTAL_SAT=0` to fall back to
/// the legacy re-encoding key extraction for debugging/comparison.
pub(crate) fn incremental_sat_enabled() -> bool {
    std::env::var("KRATT_INCREMENTAL_SAT").map_or(true, |v| v != "0")
}

/// Which miter construction the DIP-family engines encode.
///
/// The AIG engine is the default: it lowers the locked circuit into one
/// structurally hashed AIG whose two key copies share all data-input logic,
/// runs [`Aig::rewrite`] as a pre-encode optimiser, and encodes with
/// `encode_aig` — a CNF image measured 58–100% smaller in vars/clauses than
/// the per-gate Tseitin encoding on the tracked ISCAS miters. The gate
/// engine is kept for A/B comparison (`KRATT_DIP_ENGINE=gate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DipEngineKind {
    /// Legacy per-gate Tseitin encoding of two circuit copies.
    Gate,
    /// Structurally hashed, rewritten AIG miter encoded with `encode_aig`.
    #[default]
    Aig,
}

impl DipEngineKind {
    /// Parses `"gate"` / `"aig"` (the CLI and env-var spellings).
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "gate" => Some(DipEngineKind::Gate),
            "aig" => Some(DipEngineKind::Aig),
            _ => None,
        }
    }

    /// The engine selected by `KRATT_DIP_ENGINE` (default: `aig`).
    pub fn from_env() -> Self {
        std::env::var("KRATT_DIP_ENGINE")
            .ok()
            .and_then(|v| DipEngineKind::parse(&v))
            .unwrap_or_default()
    }

    /// The CLI/env spelling of this engine.
    pub fn name(self) -> &'static str {
        match self {
            DipEngineKind::Gate => "gate",
            DipEngineKind::Aig => "aig",
        }
    }
}

/// Name suffix of the second key copy's inputs inside the AIG miter. The
/// data inputs share their real names (so both halves strash together); only
/// the key inputs are duplicated under this suffix.
const KEY_B_SUFFIX: &str = "__kratt_b";

/// Result of the final key extraction after DIP exhaustion.
pub(crate) enum KeyExtraction {
    /// A key consistent with every IO constraint.
    Key(SecretKey),
    /// The constraints are unsatisfiable (degenerate instances only — after
    /// exhaustion at least the oracle's own key should be consistent).
    NoneConsistent,
    /// The SAT budget ran out before the extraction finished.
    Budget,
}

/// Result of one distinguishing-input search.
pub(crate) enum DipSearch {
    /// A DIP was found; carries the data-input pattern and the candidate key
    /// (the `K_A` assignment of the satisfying model).
    Found {
        dip: Vec<bool>,
        candidate_key: Vec<bool>,
    },
    /// No DIP exists any more: all keys consistent with the constraints are
    /// functionally equivalent.
    Exhausted,
    /// The SAT budget ran out.
    Budget,
}

/// Why a multi-DIP batch stopped before reaching its size cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BatchEnd {
    /// No DIP exists at all any more (only meaningful when the batch is
    /// empty: a non-empty batch stops on "no further *distinct* DIP", which
    /// says nothing about exhaustion once the batch is constrained).
    Exhausted,
    /// The SAT budget ran out mid-batch.
    Budget,
}

/// Up to `max` distinct DIPs found in one solver session, plus the reason
/// the batch ended early (if it did).
pub(crate) struct DipBatch {
    /// `(data pattern, candidate key)` pairs, in discovery order.
    pub dips: Vec<(Vec<bool>, Vec<bool>)>,
    /// Why the batch stopped short of its cap, when it did.
    pub end: Option<BatchEnd>,
}

/// The incremental two-copy miter the whole SAT-attack family is built on.
///
/// One CDCL solver lives for the whole CEGAR loop: the miter clause is gated
/// behind an activation literal, DIP search solves under the assumption that
/// the gate is open, and key extraction solves the *same* solver with the
/// gate closed — so the learned clauses of every iteration carry over and
/// the miter is never re-encoded.
pub(crate) struct DipEngine<'a> {
    locked: &'a Circuit,
    locked_sim: Simulator<'a>,
    oracle: &'a Oracle,
    solver: Solver,
    encoder: Encoder,
    /// Activation literal of the miter clause (`act → outputs differ`).
    miter_act: Var,
    key_a: Vec<Var>,
    key_b: Vec<Var>,
    data_names: Vec<String>,
    data_vars: Vec<Var>,
    key_names: Vec<String>,
    /// Positions of the data / key inputs inside `locked.inputs()`.
    data_positions: Vec<usize>,
    key_positions: Vec<usize>,
    constraints: Vec<(Vec<bool>, Vec<bool>)>,
    deadline: Deadline,
    incremental: bool,
    engine: DipEngineKind,
    /// `(vars, clauses)` of the initial miter encoding, captured before any
    /// IO-constraint copy is added — the per-iteration baseline the bench
    /// `dip_aig` kernel tracks.
    encode_footprint: (usize, usize),
    /// The oracle's lifetime query count when this engine was created, so
    /// budget accounting and telemetry report this run's queries only even
    /// when a caller reuses one oracle across runs.
    base_queries: u64,
}

impl<'a> DipEngine<'a> {
    pub(crate) fn new(
        locked: &'a Circuit,
        oracle: &'a Oracle,
        budget: &AttackBudget,
        deadline: Deadline,
    ) -> Result<Self, AttackError> {
        Self::with_engine(locked, oracle, budget, deadline, DipEngineKind::from_env())
    }

    pub(crate) fn with_engine(
        locked: &'a Circuit,
        oracle: &'a Oracle,
        budget: &AttackBudget,
        deadline: Deadline,
        engine: DipEngineKind,
    ) -> Result<Self, AttackError> {
        let key_names = locked.key_input_names();
        if key_names.is_empty() {
            return Err(AttackError::NoKeyInputs);
        }
        let data_names = locked.data_input_names();
        for name in &data_names {
            let known = oracle
                .circuit()
                .find_net(name)
                .map(|n| oracle.circuit().is_input(n))
                .unwrap_or(false);
            if !known {
                return Err(AttackError::InterfaceMismatch(name.clone()));
            }
        }

        // The attack's one absolute deadline bounds every SAT call; no
        // per-call time limit, which would restart the clock per DIP.
        let mut solver = Solver::with_config(SolverConfig {
            conflict_limit: budget.sat_conflict_limit,
            deadline: deadline.instant(),
            cancel: Some(deadline.cancel_flag()),
            ..Default::default()
        });
        let encoder = Encoder::new();
        let (miter_lit, key_a, key_b, data_vars) = match engine {
            DipEngineKind::Gate => {
                let enc_a = encoder.encode(&mut solver, locked, &HashMap::new());
                // Copy B shares the data inputs but uses fresh key variables.
                let shared: HashMap<String, Var> = enc_a
                    .inputs()
                    .iter()
                    .filter(|(name, _)| data_names.contains(name))
                    .cloned()
                    .collect();
                let enc_b = encoder.encode(&mut solver, locked, &shared);
                let miter = encoder.miter(&mut solver, &enc_a, &enc_b);
                let key_a: Vec<Var> = key_names
                    .iter()
                    .map(|n| enc_a.input_var(n).expect("key input encoded"))
                    .collect();
                let key_b: Vec<Var> = key_names
                    .iter()
                    .map(|n| enc_b.input_var(n).expect("key input encoded"))
                    .collect();
                let data_vars: Vec<Var> = data_names
                    .iter()
                    .map(|n| enc_a.input_var(n).expect("data input encoded"))
                    .collect();
                (Lit::positive(miter), key_a, key_b, data_vars)
            }
            DipEngineKind::Aig => {
                // Both key copies live in one structurally hashed AIG: copy A
                // keeps the real input names, copy B binds every key input to
                // a renamed fresh input, so the whole data-input logic hashes
                // to shared nodes and only the key-dependent cones duplicate.
                let mut aig = Aig::new(format!("{}_dip_miter", locked.name()));
                let lits_a = aig.lower_circuit(locked, &HashMap::new())?;
                let outs_a: Vec<AigLit> =
                    locked.outputs().iter().map(|o| lits_a[o.index()]).collect();
                let bound: HashMap<String, AigLit> = key_names
                    .iter()
                    .map(|n| (n.clone(), aig.add_input(format!("{n}{KEY_B_SUFFIX}"))))
                    .collect();
                let lits_b = aig.lower_circuit(locked, &bound)?;
                let outs_b: Vec<AigLit> =
                    locked.outputs().iter().map(|o| lits_b[o.index()]).collect();
                let miter = aig.miter(&outs_a, &outs_b);
                aig.add_output("__kratt_miter", miter);
                // Pre-encode optimisation: cut rewriting shrinks the miter
                // cone once, and every CEGAR iteration then solves against
                // the smaller image.
                let aig = aig.rewrite();
                let enc = encoder.encode_aig(&mut solver, &aig, &HashMap::new());
                let miter_lit = *enc.outputs().last().expect("miter output registered");
                let key_a: Vec<Var> = key_names
                    .iter()
                    .map(|n| enc.input_var(n).expect("key input encoded"))
                    .collect();
                let key_b: Vec<Var> = key_names
                    .iter()
                    .map(|n| {
                        enc.input_var(&format!("{n}{KEY_B_SUFFIX}"))
                            .expect("key copy input encoded")
                    })
                    .collect();
                let data_vars: Vec<Var> = data_names
                    .iter()
                    .map(|n| enc.input_var(n).expect("data input encoded"))
                    .collect();
                (miter_lit, key_a, key_b, data_vars)
            }
        };
        // The miter is gated, not asserted: DIP search assumes `miter_act`,
        // key extraction assumes its negation on the same solver.
        let miter_act = solver.new_var();
        solver.add_clause([Lit::negative(miter_act), miter_lit]);
        let encode_footprint = (solver.num_vars(), solver.num_clauses());

        let position_of = |name: &String| {
            let net = locked.find_net(name).expect("input exists");
            locked.input_position(net).expect("is input")
        };
        let data_positions = data_names.iter().map(position_of).collect();
        let key_positions = key_names.iter().map(position_of).collect();
        Ok(DipEngine {
            locked,
            locked_sim: Simulator::new(locked)?,
            oracle,
            solver,
            encoder,
            miter_act,
            key_a,
            key_b,
            data_names,
            data_vars,
            key_names,
            data_positions,
            key_positions,
            constraints: Vec::new(),
            deadline,
            incremental: incremental_sat_enabled(),
            engine,
            encode_footprint,
            base_queries: oracle.queries(),
        })
    }

    /// `(vars, clauses)` of the initial miter encoding — the image every
    /// CEGAR iteration re-solves, before any IO-constraint copies.
    pub(crate) fn encode_footprint(&self) -> (usize, usize) {
        self.encode_footprint
    }

    /// Overrides the incremental-solving switch (tests exercise both paths).
    #[cfg(test)]
    pub(crate) fn set_incremental(&mut self, incremental: bool) {
        self.incremental = incremental;
    }

    /// Names of the key inputs, in `keyinput` order.
    pub(crate) fn key_names(&self) -> &[String] {
        &self.key_names
    }

    /// Searches for the next distinguishing input pattern.
    pub(crate) fn find_dip(&mut self) -> DipSearch {
        let mut batch = self.find_dips(1);
        match batch.dips.pop() {
            Some((dip, candidate_key)) => DipSearch::Found { dip, candidate_key },
            None => match batch.end {
                Some(BatchEnd::Exhausted) => DipSearch::Exhausted,
                _ => DipSearch::Budget,
            },
        }
    }

    /// Searches for up to `max` *distinct* DIPs in one solver session, so
    /// the oracle can be queried for all of them in a single bit-parallel
    /// sweep ([`DipEngine::constrain_batch`]). Already-found patterns are
    /// excluded via blocking clauses gated behind per-batch activation
    /// literals, which become inert once the batch ends — no constraint
    /// about the key space is implied by them.
    pub(crate) fn find_dips(&mut self, max: usize) -> DipBatch {
        let mut dips: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        let mut assumptions: Vec<Lit> = vec![Lit::positive(self.miter_act)];
        let mut end = None;
        while dips.len() < max {
            debug_assert_eq!(assumptions.len(), dips.len() + 1);
            match self.solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    let dip: Vec<bool> = self.data_vars.iter().map(|&v| model.value(v)).collect();
                    let candidate: Vec<bool> = self.key_a.iter().map(|&v| model.value(v)).collect();
                    if dips.len() + 1 < max {
                        // Block this data pattern for the rest of the batch.
                        let blocker = self.solver.new_var();
                        let mut clause: Vec<Lit> = Vec::with_capacity(dip.len() + 1);
                        clause.push(Lit::negative(blocker));
                        clause.extend(
                            self.data_vars
                                .iter()
                                .zip(&dip)
                                .map(|(&var, &value)| Lit::with_polarity(var, !value)),
                        );
                        self.solver.add_clause(clause);
                        assumptions.push(Lit::positive(blocker));
                    }
                    dips.push((dip, candidate));
                }
                SatResult::Unsat => {
                    if dips.is_empty() {
                        end = Some(BatchEnd::Exhausted);
                    }
                    // A non-empty batch merely ran out of distinct patterns.
                    break;
                }
                SatResult::Unknown => {
                    end = Some(BatchEnd::Budget);
                    break;
                }
            }
        }
        // Retire the batch's blocking clauses: asserting ¬blocker at level 0
        // satisfies them permanently, so they stop costing propagation and
        // branching effort over the thousands of rounds a resilient lock
        // can run.
        for &blocker in assumptions.iter().skip(1) {
            self.solver.add_clause([!blocker]);
        }
        DipBatch { dips, end }
    }

    /// Queries the oracle for the given data-input pattern.
    pub(crate) fn query_oracle(&self, dip: &[bool]) -> Result<Vec<bool>, AttackError> {
        let assignment: Vec<(&str, bool)> = self
            .data_names
            .iter()
            .map(String::as_str)
            .zip(dip.iter().copied())
            .collect();
        Ok(self.oracle.query_by_name(&assignment)?)
    }

    /// Queries the oracle for many data-input patterns in packed 64-wide
    /// sweeps. Counts one query per pattern, exactly like the scalar path.
    pub(crate) fn query_oracle_batch(
        &self,
        dips: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, AttackError> {
        Ok(self.oracle.query_batch_by_name(&self.data_names, dips)?)
    }

    /// Queries the oracle for a batch of DIPs in one sweep and adds the IO
    /// constraints for every `(dip, outputs)` pair.
    pub(crate) fn constrain_batch(
        &mut self,
        dips: &[(Vec<bool>, Vec<bool>)],
    ) -> Result<(), AttackError> {
        let patterns: Vec<Vec<bool>> = dips.iter().map(|(dip, _)| dip.clone()).collect();
        let outputs = self.query_oracle_batch(&patterns)?;
        for (dip, out) in patterns.iter().zip(&outputs) {
            self.constrain(dip, out);
        }
        Ok(())
    }

    /// Adds the IO constraint "both key copies must reproduce `outputs` on
    /// `dip`" to the miter.
    pub(crate) fn constrain(&mut self, dip: &[bool], outputs: &[bool]) {
        for keys in [&self.key_a, &self.key_b] {
            let shared: HashMap<String, Var> = self
                .key_names
                .iter()
                .cloned()
                .zip(keys.iter().copied())
                .collect();
            match self.engine {
                DipEngineKind::Gate => {
                    let copy = self.encoder.encode(&mut self.solver, self.locked, &shared);
                    for (name, &value) in self.data_names.iter().zip(dip) {
                        let var = copy.input_var(name).expect("data input encoded");
                        self.solver.add_clause([Lit::with_polarity(var, value)]);
                    }
                    for (&out_var, &value) in copy.outputs().iter().zip(outputs) {
                        self.solver.add_clause([Lit::with_polarity(out_var, value)]);
                    }
                }
                DipEngineKind::Aig => encode_aig_constraint_copy(
                    &self.encoder,
                    &mut self.solver,
                    self.locked,
                    &self.data_names,
                    dip,
                    outputs,
                    &shared,
                ),
            }
        }
        self.constraints.push((dip.to_vec(), outputs.to_vec()));
    }

    /// Extracts a key consistent with every accumulated IO constraint. Called
    /// after [`DipSearch::Exhausted`]: any such key is functionally correct.
    ///
    /// On the incremental path this re-solves the *same* solver as the DIP
    /// loop with the miter gate closed (`¬miter_act`), so the `K_A` copy —
    /// already constrained by every IO pair — yields the key directly with
    /// all learned clauses retained. The legacy path
    /// (`KRATT_INCREMENTAL_SAT=0`) rebuilds a fresh solver and re-encodes
    /// one circuit copy per constraint.
    pub(crate) fn extract_key(
        &mut self,
        budget: &AttackBudget,
    ) -> Result<KeyExtraction, AttackError> {
        if self.incremental {
            return Ok(
                match self
                    .solver
                    .solve_with_assumptions(&[Lit::negative(self.miter_act)])
                {
                    SatResult::Sat(model) => KeyExtraction::Key(SecretKey::from_bits(
                        self.key_a.iter().map(|&v| model.value(v)).collect(),
                    )),
                    SatResult::Unsat => KeyExtraction::NoneConsistent,
                    SatResult::Unknown => KeyExtraction::Budget,
                },
            );
        }
        let mut solver = Solver::with_config(SolverConfig {
            conflict_limit: budget.sat_conflict_limit,
            deadline: self.deadline.instant(),
            cancel: Some(self.deadline.cancel_flag()),
            ..Default::default()
        });
        let key_vars: Vec<Var> = self.key_names.iter().map(|_| solver.new_var()).collect();
        let shared_keys: HashMap<String, Var> = self
            .key_names
            .iter()
            .cloned()
            .zip(key_vars.iter().copied())
            .collect();
        for (dip, outputs) in &self.constraints {
            match self.engine {
                DipEngineKind::Gate => {
                    let copy = self.encoder.encode(&mut solver, self.locked, &shared_keys);
                    for (name, &value) in self.data_names.iter().zip(dip) {
                        let var = copy.input_var(name).expect("data input encoded");
                        solver.add_clause([Lit::with_polarity(var, value)]);
                    }
                    for (&out_var, &value) in copy.outputs().iter().zip(outputs) {
                        solver.add_clause([Lit::with_polarity(out_var, value)]);
                    }
                }
                DipEngineKind::Aig => encode_aig_constraint_copy(
                    &self.encoder,
                    &mut solver,
                    self.locked,
                    &self.data_names,
                    dip,
                    outputs,
                    &shared_keys,
                ),
            }
        }
        match solver.solve() {
            SatResult::Sat(model) => Ok(KeyExtraction::Key(SecretKey::from_bits(
                key_vars.iter().map(|&v| model.value(v)).collect(),
            ))),
            SatResult::Unsat => Ok(KeyExtraction::NoneConsistent),
            // The shared deadline or conflict budget ran out mid-extraction:
            // this must surface as out-of-time, never as a fabricated key.
            SatResult::Unknown => Ok(KeyExtraction::Budget),
        }
    }

    /// The full-width locked-circuit input pattern for `(key, data)`.
    fn locked_pattern(&self, key: &[bool], data: &[bool]) -> Vec<bool> {
        let mut pattern = vec![false; self.locked.num_inputs()];
        for (&position, &value) in self.data_positions.iter().zip(data) {
            pattern[position] = value;
        }
        for (&position, &value) in self.key_positions.iter().zip(key) {
            pattern[position] = value;
        }
        pattern
    }

    /// Simulates the locked circuit under `key` on many data patterns in
    /// packed 64-wide sweeps.
    pub(crate) fn simulate_locked_batch(
        &self,
        key: &[bool],
        data: &[Vec<bool>],
    ) -> Result<Vec<Vec<bool>>, AttackError> {
        let patterns: Vec<Vec<bool>> = data
            .iter()
            .map(|row| self.locked_pattern(key, row))
            .collect();
        Ok(self.locked_sim.run_batch(&patterns)?)
    }

    /// Number of data (non-key) inputs.
    pub(crate) fn num_data_inputs(&self) -> usize {
        self.data_names.len()
    }

    /// Number of oracle queries this run has spent so far.
    pub(crate) fn oracle_queries(&self) -> u64 {
        self.oracle.queries().saturating_sub(self.base_queries)
    }
}

/// Encodes one IO-constraint copy of `locked` AIG-side: the data inputs are
/// bound to the DIP's constants *before* lowering, so constant folding
/// collapses most of the circuit and only the key-dependent residue reaches
/// the solver. Key inputs share the given solver variables; every output
/// literal is pinned to the oracle's response with a unit clause.
fn encode_aig_constraint_copy(
    encoder: &Encoder,
    solver: &mut Solver,
    locked: &Circuit,
    data_names: &[String],
    dip: &[bool],
    outputs: &[bool],
    shared_keys: &HashMap<String, Var>,
) {
    let mut scratch = Aig::new("dip_constraint");
    let bound: HashMap<String, AigLit> = data_names
        .iter()
        .zip(dip)
        .map(|(name, &value)| (name.clone(), AigLit::TRUE.when(value)))
        .collect();
    let lits = scratch
        .lower_circuit(locked, &bound)
        .expect("locked circuit already lowered acyclically in DipEngine::with_engine");
    for &o in locked.outputs() {
        scratch.add_output(locked.net_name(o), lits[o.index()]);
    }
    let enc = encoder.encode_aig(solver, &scratch, shared_keys);
    for (&out_lit, &value) in enc.outputs().iter().zip(outputs) {
        solver.add_clause([if value { out_lit } else { !out_lit }]);
    }
}

/// CNF footprint of the initial DIP miter under one engine, as measured by
/// the bench `dip_aig` kernel and the A/B analysis tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DipEncodeStats {
    /// Solver variables after the miter encode (before any constraints).
    pub vars: usize,
    /// Solver clauses after the miter encode (before any constraints).
    pub clauses: usize,
}

/// Builds the DIP miter for `locked` under `engine` and reports its CNF
/// footprint without running the CEGAR loop.
pub fn measure_dip_encoding(
    locked: &Circuit,
    oracle: &Oracle,
    engine: DipEngineKind,
) -> Result<DipEncodeStats, AttackError> {
    let budget = AttackBudget::default();
    let deadline = budget.start();
    let dip = DipEngine::with_engine(locked, oracle, &budget, deadline, engine)?;
    let (vars, clauses) = dip.encode_footprint();
    Ok(DipEncodeStats { vars, clauses })
}

/// The SAT-based attack of Subramanyan et al. (HOST'15): iteratively find
/// DIPs, query the oracle, and constrain the key space until every remaining
/// key is functionally correct.
#[derive(Debug, Clone)]
pub struct SatAttack {
    /// Resource budget; an exhausted budget reports `OoT` like the paper.
    pub budget: AttackBudget,
    /// Number of distinct DIPs collected per solver session and queried
    /// against the oracle in one packed 64-wide sweep. `1` (the default)
    /// is the classic one-DIP-per-round loop; the default can be raised
    /// globally with the `KRATT_DIP_BATCH` environment variable.
    pub dip_batch: usize,
    /// Miter construction ([`DipEngineKind::Aig`] by default; overridable
    /// globally with `KRATT_DIP_ENGINE=gate` or per-attack with
    /// [`SatAttack::with_engine`]).
    pub engine: DipEngineKind,
}

impl Default for SatAttack {
    fn default() -> Self {
        let dip_batch = std::env::var("KRATT_DIP_BATCH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(1)
            .clamp(1, 64);
        SatAttack {
            budget: AttackBudget::default(),
            dip_batch,
            engine: DipEngineKind::from_env(),
        }
    }
}

impl SatAttack {
    /// SAT attack with the default budget.
    pub fn new() -> Self {
        SatAttack::default()
    }

    /// SAT attack with an explicit budget.
    pub fn with_budget(budget: AttackBudget) -> Self {
        SatAttack {
            budget,
            ..Default::default()
        }
    }

    /// Replaces the DIP batch size (clamped to `1..=64`).
    pub fn with_dip_batch(mut self, dip_batch: usize) -> Self {
        self.dip_batch = dip_batch.clamp(1, 64);
        self
    }

    /// Replaces the miter engine (gate-level vs AIG-side encoding).
    pub fn with_engine(mut self, engine: DipEngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The DIP loop under an explicit deadline; also returns step timings.
    /// [`Attack::execute`] is the public entry point.
    fn run_with_deadline(
        &self,
        locked: &Circuit,
        oracle: &Oracle,
        budget: &Budget,
        deadline: Deadline,
    ) -> Result<(OgReport, Vec<StepTiming>), AttackError> {
        let mut engine =
            DipEngine::with_engine(locked, oracle, budget, deadline.clone(), self.engine)?;
        let encode_time = deadline.elapsed();
        let mut iterations = 0usize;
        loop {
            if deadline.expired()
                || iterations >= budget.max_iterations
                || budget.oracle_queries_exhausted(engine.oracle_queries())
            {
                return Ok(out_of_time(deadline, iterations, &engine, encode_time));
            }
            // Clamp the batch so neither the iteration nor the oracle-query
            // budget can be overshot mid-sweep.
            let mut batch_cap = self
                .dip_batch
                .max(1)
                .min(budget.max_iterations - iterations);
            if let Some(cap) = budget.max_oracle_queries {
                batch_cap = batch_cap.min((cap - engine.oracle_queries()) as usize);
            }
            let batch = engine.find_dips(batch_cap);
            if !batch.dips.is_empty() {
                engine.constrain_batch(&batch.dips)?;
                iterations += batch.dips.len();
            }
            match batch.end {
                None => {}
                Some(BatchEnd::Budget) => {
                    return Ok(out_of_time(deadline, iterations, &engine, encode_time));
                }
                Some(BatchEnd::Exhausted) => {
                    let loop_time = deadline.elapsed() - encode_time;
                    let outcome = match engine.extract_key(budget)? {
                        KeyExtraction::Key(key) => OgOutcome::Key(key),
                        KeyExtraction::NoneConsistent => {
                            OgOutcome::Key(SecretKey::from_bits(vec![
                                false;
                                engine.key_names().len()
                            ]))
                        }
                        KeyExtraction::Budget => {
                            return Ok(out_of_time(deadline, iterations, &engine, encode_time))
                        }
                    };
                    let report = OgReport {
                        outcome,
                        runtime: deadline.elapsed(),
                        iterations,
                        oracle_queries: engine.oracle_queries(),
                    };
                    let steps = vec![
                        StepTiming::new("encode", encode_time),
                        StepTiming::new("dip-loop", loop_time),
                        StepTiming::new(
                            "key-extraction",
                            deadline.elapsed() - encode_time - loop_time,
                        ),
                    ];
                    return Ok((report, steps));
                }
            }
        }
    }
}

/// The "OoT" report shape shared by the DIP-family loops.
fn out_of_time(
    deadline: Deadline,
    iterations: usize,
    engine: &DipEngine<'_>,
    encode_time: std::time::Duration,
) -> (OgReport, Vec<StepTiming>) {
    let report = OgReport {
        outcome: OgOutcome::OutOfTime,
        runtime: deadline.elapsed(),
        iterations,
        oracle_queries: engine.oracle_queries(),
    };
    let steps = vec![
        StepTiming::new("encode", encode_time),
        StepTiming::new("dip-loop", deadline.elapsed().saturating_sub(encode_time)),
    ];
    (report, steps)
}

/// Wraps a DIP-family [`OgReport`] into the unified [`AttackRun`].
pub(crate) fn og_run(attack: &str, report: OgReport, steps: Vec<StepTiming>) -> AttackRun {
    AttackRun {
        attack: attack.to_string(),
        threat_model: ThreatModel::OracleGuided,
        outcome: report.outcome.into(),
        runtime: report.runtime,
        iterations: report.iterations,
        oracle_queries: report.oracle_queries,
        steps,
        members: Vec::new(),
    }
}

impl Attack for SatAttack {
    fn name(&self) -> &'static str {
        "sat"
    }

    fn supports(&self, model: ThreatModel) -> bool {
        model == ThreatModel::OracleGuided
    }

    fn execute(&self, request: &AttackRequest<'_>) -> Result<AttackRun, AttackError> {
        let oracle = request.require_oracle(self.name())?;
        let deadline = request.deadline();
        if deadline.expired() {
            return Ok(AttackRun::out_of_budget(
                self.name(),
                request.threat_model(),
            ));
        }
        let (report, steps) =
            self.run_with_deadline(request.locked, oracle, &request.budget, deadline)?;
        Ok(og_run(self.name(), report, steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_locking::{LockingTechnique, RandomXorLocking, SarLock, SecretKey};
    use kratt_netlist::{GateType, NetId};
    use std::time::Duration;

    /// Runs the DIP loop directly to keep the rich [`OgReport`] assertions;
    /// external callers go through [`Attack::execute`].
    fn report_of(
        attack: &SatAttack,
        locked: &Circuit,
        oracle: &Oracle,
    ) -> Result<OgReport, AttackError> {
        let deadline = attack.budget.start();
        Ok(attack
            .run_with_deadline(locked, oracle, &attack.budget, deadline)?
            .0)
    }

    pub(crate) fn adder4() -> Circuit {
        let mut c = Circuit::new("adder4");
        let a: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("a{i}")).unwrap())
            .collect();
        let b: Vec<NetId> = (0..4)
            .map(|i| c.add_input(format!("b{i}")).unwrap())
            .collect();
        let mut carry = c.add_input("cin").unwrap();
        for i in 0..4 {
            let s1 = c
                .add_gate(GateType::Xor, format!("s1_{i}"), &[a[i], b[i]])
                .unwrap();
            let sum = c
                .add_gate(GateType::Xor, format!("sum{i}"), &[s1, carry])
                .unwrap();
            let c1 = c
                .add_gate(GateType::And, format!("c1_{i}"), &[a[i], b[i]])
                .unwrap();
            let c2 = c
                .add_gate(GateType::And, format!("c2_{i}"), &[s1, carry])
                .unwrap();
            carry = c
                .add_gate(GateType::Or, format!("cout{i}"), &[c1, c2])
                .unwrap();
            c.mark_output(sum);
        }
        c.mark_output(carry);
        c
    }

    #[test]
    fn sat_attack_breaks_random_xor_locking() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b101101, 6);
        let locked = RandomXorLocking::new(6, 11)
            .lock(&original, &secret)
            .unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = report_of(&SatAttack::new(), &locked.circuit, &oracle).unwrap();
        let key = report.outcome.key().expect("RLL must be broken").clone();
        // The recovered key must be functionally correct (it may differ
        // bitwise if the instance has multiple correct keys).
        let unlocked = locked.apply_key(&key).unwrap();
        assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap());
        assert!(report.iterations <= 64, "RLL should fall within a few DIPs");
    }

    #[test]
    fn sat_attack_breaks_small_sarlock_eventually() {
        // With only 3 key bits the exponential DIP count is tiny, so even a
        // SAT-resilient scheme falls; this checks the full loop end to end.
        let original = adder4();
        let secret = SecretKey::from_u64(0b110, 3);
        let locked = SarLock::new(3).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let report = report_of(&SatAttack::new(), &locked.circuit, &oracle).unwrap();
        let key = report
            .outcome
            .key()
            .expect("3-bit SARLock must be broken")
            .clone();
        let unlocked = locked.apply_key(&key).unwrap();
        assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap());
    }

    #[test]
    fn sat_attack_times_out_on_a_larger_point_function() {
        // 9 protected bits means up to ~2^9 DIPs; with a tiny iteration
        // budget the attack must report OoT, which is the Table III shape.
        let original = adder4();
        let secret = SecretKey::from_u64(0x1ab & 0x1ff, 9);
        let locked = SarLock::new(9).lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let attack = SatAttack::with_budget(AttackBudget {
            time_limit: Some(Duration::from_secs(2)),
            max_iterations: 5,
            ..AttackBudget::default()
        });
        let report = report_of(&attack, &locked.circuit, &oracle).unwrap();
        assert_eq!(report.outcome, OgOutcome::OutOfTime);
        assert!(report.iterations <= 5);
    }

    #[test]
    fn batched_dip_sweeps_recover_a_key_and_count_queries_per_dip() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b101101, 6);
        let locked = RandomXorLocking::new(6, 11)
            .lock(&original, &secret)
            .unwrap();
        for batch in [1usize, 4, 16] {
            let oracle = Oracle::new(original.clone()).unwrap();
            let attack = SatAttack::new().with_dip_batch(batch);
            let report = report_of(&attack, &locked.circuit, &oracle).unwrap();
            let key = report.outcome.key().expect("RLL must fall").clone();
            let unlocked = locked.apply_key(&key).unwrap();
            assert!(
                kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap(),
                "batch {batch}: recovered key does not unlock"
            );
            // Batched sweeps are a transport optimisation: every DIP still
            // costs exactly one counted oracle query.
            assert_eq!(
                report.oracle_queries, report.iterations as u64,
                "batch {batch}: queries and DIPs must stay 1:1"
            );
        }
    }

    #[test]
    fn incremental_and_legacy_key_extraction_agree() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1101, 4);
        let locked = RandomXorLocking::new(4, 7)
            .lock(&original, &secret)
            .unwrap();
        let budget = AttackBudget::default();
        for incremental in [true, false] {
            let oracle = Oracle::new(original.clone()).unwrap();
            let deadline = budget.start();
            let mut engine = DipEngine::new(&locked.circuit, &oracle, &budget, deadline).unwrap();
            engine.set_incremental(incremental);
            loop {
                match engine.find_dip() {
                    DipSearch::Found { dip, .. } => {
                        let outputs = engine.query_oracle(&dip).unwrap();
                        engine.constrain(&dip, &outputs);
                    }
                    DipSearch::Exhausted => break,
                    DipSearch::Budget => panic!("generous budget exhausted"),
                }
            }
            let key = match engine.extract_key(&budget).unwrap() {
                KeyExtraction::Key(key) => key,
                other => panic!(
                    "expected a key (incremental = {incremental}), got {}",
                    match other {
                        KeyExtraction::NoneConsistent => "NoneConsistent",
                        _ => "Budget",
                    }
                ),
            };
            let unlocked = locked.apply_key(&key).unwrap();
            assert!(
                kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap(),
                "incremental = {incremental}: extracted key does not unlock"
            );
        }
    }

    #[test]
    fn aig_and_gate_engines_recover_functionally_equivalent_keys() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b101101, 6);
        let locked = RandomXorLocking::new(6, 11)
            .lock(&original, &secret)
            .unwrap();
        let budget = AttackBudget::default();
        for engine in [DipEngineKind::Gate, DipEngineKind::Aig] {
            for incremental in [true, false] {
                let oracle = Oracle::new(original.clone()).unwrap();
                let deadline = budget.start();
                let mut dip_engine =
                    DipEngine::with_engine(&locked.circuit, &oracle, &budget, deadline, engine)
                        .unwrap();
                dip_engine.set_incremental(incremental);
                loop {
                    match dip_engine.find_dip() {
                        DipSearch::Found { dip, .. } => {
                            let outputs = dip_engine.query_oracle(&dip).unwrap();
                            dip_engine.constrain(&dip, &outputs);
                        }
                        DipSearch::Exhausted => break,
                        DipSearch::Budget => panic!("generous budget exhausted"),
                    }
                }
                let key = match dip_engine.extract_key(&budget).unwrap() {
                    KeyExtraction::Key(key) => key,
                    _ => panic!(
                        "{} engine (incremental = {incremental}): no key",
                        engine.name()
                    ),
                };
                let unlocked = locked.apply_key(&key).unwrap();
                assert!(
                    kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap(),
                    "{} engine (incremental = {incremental}): key does not unlock",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn aig_engine_encodes_a_smaller_miter_than_the_gate_engine() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b101101, 6);
        let locked = RandomXorLocking::new(6, 11)
            .lock(&original, &secret)
            .unwrap();
        let oracle = Oracle::new(original).unwrap();
        let gate = measure_dip_encoding(&locked.circuit, &oracle, DipEngineKind::Gate).unwrap();
        let aig = measure_dip_encoding(&locked.circuit, &oracle, DipEngineKind::Aig).unwrap();
        assert!(
            aig.vars < gate.vars && aig.clauses < gate.clauses,
            "aig {aig:?} should be smaller than gate {gate:?}"
        );
    }

    #[test]
    fn batched_sweeps_work_on_the_aig_engine() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b101101, 6);
        let locked = RandomXorLocking::new(6, 11)
            .lock(&original, &secret)
            .unwrap();
        let oracle = Oracle::new(original.clone()).unwrap();
        let attack = SatAttack::new()
            .with_engine(DipEngineKind::Aig)
            .with_dip_batch(8);
        let report = report_of(&attack, &locked.circuit, &oracle).unwrap();
        let key = report.outcome.key().expect("RLL must fall").clone();
        let unlocked = locked.apply_key(&key).unwrap();
        assert!(kratt_netlist::sim::exhaustively_equivalent(&original, &unlocked).unwrap());
        assert_eq!(report.oracle_queries, report.iterations as u64);
    }

    #[test]
    fn missing_key_inputs_is_an_error() {
        let original = adder4();
        let oracle = Oracle::new(original.clone()).unwrap();
        assert!(matches!(
            report_of(&SatAttack::new(), &original, &oracle),
            Err(AttackError::NoKeyInputs)
        ));
    }

    #[test]
    fn interface_mismatch_is_detected() {
        let original = adder4();
        let secret = SecretKey::from_u64(0b1, 1);
        let locked = RandomXorLocking::new(1, 1)
            .lock(&original, &secret)
            .unwrap();
        // Oracle over a circuit with differently named inputs.
        let mut other = Circuit::new("other");
        let x = other.add_input("weird").unwrap();
        let y = other.add_gate(GateType::Not, "y", &[x]).unwrap();
        other.mark_output(y);
        let oracle = Oracle::new(other).unwrap();
        assert!(matches!(
            report_of(&SatAttack::new(), &locked.circuit, &oracle),
            Err(AttackError::InterfaceMismatch(_))
        ));
    }
}
