//! A 2QBF (∃∀) solver built on the `kratt-sat` CDCL engine.
//!
//! KRATT formulates the key recovery of single-flip locking techniques as the
//! quantified Boolean formula
//!
//! ```text
//! ∃ K  ∀ PPI .  locking_unit(PPI, K) = constant
//! ```
//!
//! i.e. "is there a key under which the locking unit output is stuck at a
//! constant for every protected primary input pattern?". The paper solves
//! these with DepQBF; this crate provides the reproduction's replacement: a
//! counterexample-guided abstraction refinement (CEGAR) loop that alternates
//! between a *synthesis* SAT instance (propose a key consistent with all
//! counterexamples seen so far) and a *verification* SAT instance (find a
//! universal assignment breaking the candidate). CEGAR is complete for the
//! exists-forall fragment, which is the only fragment KRATT ever emits.
//!
//! # Example
//!
//! ```
//! use kratt_netlist::{Circuit, GateType};
//! use kratt_qbf::{ExistsForallSolver, QbfResult};
//!
//! # fn main() -> Result<(), kratt_netlist::NetlistError> {
//! // out = (x AND k0) AND NOT k1: with k0 = 0 the output is 0 for every x.
//! let mut c = Circuit::new("unit");
//! let x = c.add_input("x")?;
//! let k0 = c.add_input("keyinput0")?;
//! let k1 = c.add_input("keyinput1")?;
//! let a = c.add_gate(GateType::And, "a", &[x, k0])?;
//! let nk1 = c.add_gate(GateType::Not, "nk1", &[k1])?;
//! let out = c.add_gate(GateType::And, "out", &[a, nk1])?;
//! c.mark_output(out);
//!
//! let solver = ExistsForallSolver::new(&c, &[k0, k1], &[x], out, false);
//! match solver.solve() {
//!     QbfResult::Sat(assignment) => assert!(!assignment["keyinput0"] || assignment["keyinput1"]),
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

pub mod bdd;
pub mod qdimacs;

use kratt_netlist::aig::{Aig, AigLit};
use kratt_netlist::{Circuit, NetId};
use kratt_sat::{cancel_requested, AigEncoding, CancelFlag, Encoder, Lit, SatResult, Solver, Var};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration of the 2QBF solver.
#[derive(Debug, Clone)]
pub struct QbfConfig {
    /// Maximum number of CEGAR refinement iterations before giving up.
    pub max_iterations: usize,
    /// Wall-clock budget for the whole solve.
    pub time_limit: Option<Duration>,
    /// Absolute deadline shared with the rest of the attack that issued the
    /// solve. The effective limit is the earlier of `time_limit` (relative
    /// to the start of the solve) and this instant; it is also handed to
    /// the underlying SAT solvers so a single stuck SAT call cannot
    /// overshoot the attack's wall-clock budget.
    pub deadline: Option<Instant>,
    /// Conflict budget handed to each underlying SAT call.
    pub sat_conflict_limit: Option<u64>,
    /// Node budget of the BDD fast path that is tried before CEGAR (0
    /// disables it). Locking-unit functions have compact BDDs under an
    /// interleaved order, which is what makes 64–128-bit keys tractable.
    pub bdd_node_limit: usize,
    /// Cooperative cancellation flag shared with the attack that issued the
    /// solve: checked wherever the deadline is (solve entry and each CEGAR
    /// iteration) and handed to the underlying SAT solvers, so a portfolio
    /// sibling's win stops a running CEGAR loop promptly.
    pub cancel: Option<CancelFlag>,
}

impl Default for QbfConfig {
    fn default() -> Self {
        QbfConfig {
            max_iterations: 10_000,
            time_limit: Some(Duration::from_secs(60)),
            deadline: None,
            sat_conflict_limit: None,
            bdd_node_limit: 1 << 21,
            cancel: None,
        }
    }
}

impl QbfConfig {
    /// The effective absolute deadline of a solve starting now: the earlier
    /// of the relative `time_limit` and the shared `deadline`.
    fn effective_deadline(&self) -> Option<Instant> {
        let per_call = self.time_limit.map(|limit| Instant::now() + limit);
        match (per_call, self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// Outcome of a 2QBF solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QbfResult {
    /// The formula is true; the map gives a witness assignment (by net name)
    /// for the existential variables.
    Sat(HashMap<String, bool>),
    /// The formula is false: no existential assignment works for every
    /// universal assignment.
    Unsat,
    /// The iteration, conflict or time budget was exhausted.
    Unknown,
}

impl QbfResult {
    /// Returns the witness if the result is SAT.
    pub fn witness(&self) -> Option<&HashMap<String, bool>> {
        match self {
            QbfResult::Sat(w) => Some(w),
            _ => None,
        }
    }

    /// `true` if the result is [`QbfResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, QbfResult::Sat(_))
    }
}

/// Outcome of [`ExistsForallSolver::solve_targets_with_stats`]: the same
/// prefix solved for several output constants over one shared incremental
/// solver pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiTargetResult {
    /// Some constant is achievable; carries the witness and that constant.
    Sat {
        /// Witness assignment (by net name) for the existential variables.
        witness: HashMap<String, bool>,
        /// The output constant the witness achieves.
        target: bool,
    },
    /// No queried constant is achievable.
    Unsat,
    /// The budget was exhausted before a verdict on at least one constant
    /// (and no constant was proven achievable).
    Unknown,
}

/// Statistics of one CEGAR solve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QbfStats {
    /// Number of candidate/counterexample refinement iterations.
    pub iterations: usize,
    /// Total conflicts across both underlying SAT solvers.
    pub sat_conflicts: u64,
}

/// A solver for `∃ E ∀ U . circuit(E, U) [output net] = target`.
///
/// `E` (existential) and `U` (universal) must together cover every primary
/// input of the circuit; inputs in neither list are treated as universal
/// (the sound, conservative choice for an attack: the key must work for every
/// value of anything that is not a key input).
#[derive(Debug)]
pub struct ExistsForallSolver<'a> {
    circuit: &'a Circuit,
    existential: Vec<NetId>,
    universal: Vec<NetId>,
    output: NetId,
    target: bool,
    config: QbfConfig,
}

impl<'a> ExistsForallSolver<'a> {
    /// Creates a solver for the given circuit and quantifier prefix.
    ///
    /// `output` is the net whose value must equal `target` for all universal
    /// assignments. Primary inputs not listed in `existential` are treated as
    /// universal even if absent from `universal`.
    pub fn new(
        circuit: &'a Circuit,
        existential: &[NetId],
        universal: &[NetId],
        output: NetId,
        target: bool,
    ) -> Self {
        let mut universal: Vec<NetId> = universal.to_vec();
        for &pi in circuit.inputs() {
            if !existential.contains(&pi) && !universal.contains(&pi) {
                universal.push(pi);
            }
        }
        ExistsForallSolver {
            circuit,
            existential: existential.to_vec(),
            universal,
            output,
            target,
            config: QbfConfig::default(),
        }
    }

    /// Replaces the CEGAR configuration.
    pub fn with_config(mut self, config: QbfConfig) -> Self {
        self.config = config;
        self
    }

    /// Serialises this instance in QDIMACS format (the DepQBF input format
    /// the original tool uses), without solving it. See [`qdimacs::export`].
    pub fn to_qdimacs(&self) -> String {
        qdimacs::export(
            self.circuit,
            &self.existential,
            &self.universal,
            self.output,
            self.target,
        )
    }

    /// Solves the formula. See [`QbfResult`].
    pub fn solve(&self) -> QbfResult {
        self.solve_with_stats().0
    }

    /// Solves the formula and also returns iteration statistics.
    ///
    /// The BDD fast path is tried first (it decides the comparator / AND-tree
    /// shaped locking units of the paper in milliseconds even for 128-bit
    /// keys); if its node budget is exceeded, the complete CEGAR loop takes
    /// over.
    pub fn solve_with_stats(&self) -> (QbfResult, QbfStats) {
        if self
            .config
            .effective_deadline()
            .map(|d| Instant::now() >= d)
            .unwrap_or(false)
            || cancel_requested(&self.config.cancel)
        {
            return (QbfResult::Unknown, QbfStats::default());
        }
        if self.config.bdd_node_limit > 0 {
            if let Some(mut results) = self.solve_with_bdd_targets(&[self.target]) {
                return (
                    results.pop().expect("one target queried"),
                    QbfStats {
                        iterations: 0,
                        sat_conflicts: 0,
                    },
                );
            }
        }
        self.solve_with_cegar()
    }

    /// Solves the same quantifier prefix for several output constants (the
    /// instance's own `target` is ignored). The BDD fast path builds the
    /// unit function once and quantifies it per constant; when its node
    /// budget is exceeded the CEGAR fallback shares one verifier and one
    /// synthesizer — with all their learned clauses — across every
    /// constant, instead of re-encoding the unit per target. This is the
    /// engine behind KRATT's "is the unit stuck at 0, else at 1?"
    /// key-confirmation question.
    pub fn solve_targets_with_stats(&self, targets: &[bool]) -> (MultiTargetResult, QbfStats) {
        let mut stats = QbfStats::default();
        if self
            .config
            .effective_deadline()
            .map(|d| Instant::now() >= d)
            .unwrap_or(false)
            || cancel_requested(&self.config.cancel)
        {
            return (MultiTargetResult::Unknown, stats);
        }
        if self.config.bdd_node_limit > 0 {
            if let Some(results) = self.solve_with_bdd_targets(targets) {
                for (&target, result) in targets.iter().zip(results) {
                    if let QbfResult::Sat(witness) = result {
                        return (MultiTargetResult::Sat { witness, target }, stats);
                    }
                }
                return (MultiTargetResult::Unsat, stats);
            }
        }
        let mut engine = CegarEngine::new(self);
        let mut saw_unknown = false;
        let mut outcome = MultiTargetResult::Unsat;
        for &target in targets {
            match engine.solve_target(target, &mut stats) {
                QbfResult::Sat(witness) => {
                    outcome = MultiTargetResult::Sat { witness, target };
                    break;
                }
                QbfResult::Unsat => {}
                QbfResult::Unknown => saw_unknown = true,
            }
        }
        stats.sat_conflicts = engine.sat_conflicts();
        if saw_unknown && !matches!(outcome, MultiTargetResult::Sat { .. }) {
            outcome = MultiTargetResult::Unknown;
        }
        (outcome, stats)
    }

    /// BDD decision procedure over one shared function build; returns `None`
    /// if the node budget is exceeded. The result vector is parallel to
    /// `targets`.
    fn solve_with_bdd_targets(&self, targets: &[bool]) -> Option<Vec<QbfResult>> {
        let var_of = bdd::paired_input_order(self.circuit, &self.existential, &self.universal);
        let mut manager = bdd::BddManager::new(self.config.bdd_node_limit);
        let root = manager
            .build_circuit_output(self.circuit, &var_of, self.output)
            .ok()?;
        let num_vars = var_of.len();
        let mut quantified = vec![false; num_vars];
        for &net in &self.universal {
            if let Some(&var) = var_of.get(&net) {
                quantified[var as usize] = true;
            }
        }
        let mut results = Vec::with_capacity(targets.len());
        for &target in targets {
            // We need unit == target for all universal inputs.
            let objective = if target {
                root
            } else {
                manager.not(root).ok()?
            };
            let keys_only = manager.forall(objective, &quantified).ok()?;
            results.push(match manager.any_sat(keys_only) {
                None => QbfResult::Unsat,
                Some(assignment) => {
                    let value_of_var: HashMap<u32, bool> = assignment.into_iter().collect();
                    let witness = self
                        .existential
                        .iter()
                        .map(|&net| {
                            let value = var_of
                                .get(&net)
                                .and_then(|v| value_of_var.get(v).copied())
                                .unwrap_or(false);
                            (self.circuit.net_name(net).to_string(), value)
                        })
                        .collect();
                    QbfResult::Sat(witness)
                }
            });
        }
        Some(results)
    }

    /// Counterexample-guided abstraction refinement loop (complete fallback).
    fn solve_with_cegar(&self) -> (QbfResult, QbfStats) {
        let mut stats = QbfStats::default();
        let mut engine = CegarEngine::new(self);
        let result = engine.solve_target(self.target, &mut stats);
        stats.sat_conflicts = engine.sat_conflicts();
        (result, stats)
    }
}

/// The incremental CEGAR state shared across targets: one verifier holding a
/// single encoding of the circuit (candidate keys and the "wrong" output
/// value are both *assumed*, never asserted, so nothing is re-encoded
/// between checks) and one synthesizer accumulating counterexample copies.
/// Copies added while solving for output constant `t` force their output
/// through an activation literal `act_t`, so the same clause database serves
/// both constants: solving under `act_0` sees only the `= 0` copies, under
/// `act_1` only the `= 1` copies — with every learned clause retained across
/// iterations *and* targets.
///
/// Both the verifier instance and every counterexample copy are encoded
/// through the AIG core IR ([`kratt_sat::Encoder::encode_aig`]): the unit is
/// lowered once into a structurally hashed AIG, and each counterexample copy
/// lowers the unit with its universal inputs *bound to constants*, so the
/// folding shrinks the copy to a function of the keys alone before any
/// clause is emitted.
struct CegarEngine<'a, 'c> {
    problem: &'a ExistsForallSolver<'c>,
    encoder: Encoder,
    deadline: Option<Instant>,
    verifier: Solver,
    verify_encoding: AigEncoding,
    out_lit: Lit,
    synthesizer: Solver,
    exist_vars: HashMap<String, Var>,
    /// Per-constant activation literal of the synthesizer copies
    /// (index `usize::from(target)`), created on first use.
    activation: [Option<Var>; 2],
}

impl<'a, 'c> CegarEngine<'a, 'c> {
    fn new(problem: &'a ExistsForallSolver<'c>) -> Self {
        let deadline = problem.config.effective_deadline();
        let encoder = Encoder::new();

        // Verification solver: one AIG image of the circuit; a candidate key
        // and the wrong output value are checked by assuming their literals.
        // Both solvers share the loop's absolute deadline so no single SAT
        // call can overshoot the attack's wall-clock budget.
        let mut verifier = Solver::with_config(kratt_sat::SolverConfig {
            conflict_limit: problem.config.sat_conflict_limit,
            deadline,
            cancel: problem.config.cancel.clone(),
            ..Default::default()
        });
        let verify_aig = unit_aig(problem.circuit, problem.output, &HashMap::new());
        let verify_encoding = encoder.encode_aig(&mut verifier, &verify_aig, &HashMap::new());
        let out_lit = verify_encoding.outputs()[0];

        // Synthesis solver: one shared set of existential variables; each
        // counterexample adds a fresh copy of the circuit with the universal
        // inputs substituted by the counterexample constants.
        let mut synthesizer = Solver::with_config(kratt_sat::SolverConfig {
            conflict_limit: problem.config.sat_conflict_limit,
            deadline,
            cancel: problem.config.cancel.clone(),
            ..Default::default()
        });
        let exist_vars: HashMap<String, Var> = problem
            .existential
            .iter()
            .map(|&net| {
                (
                    problem.circuit.net_name(net).to_string(),
                    synthesizer.new_var(),
                )
            })
            .collect();

        CegarEngine {
            problem,
            encoder,
            deadline,
            verifier,
            verify_encoding,
            out_lit,
            synthesizer,
            exist_vars,
            activation: [None, None],
        }
    }

    /// Total conflicts spent by both underlying solvers so far.
    fn sat_conflicts(&self) -> u64 {
        self.synthesizer.stats().conflicts + self.verifier.stats().conflicts
    }

    /// Runs the refinement loop for one output constant, reusing whatever
    /// both solvers have already learned. `stats.iterations` accumulates.
    fn solve_target(&mut self, target: bool, stats: &mut QbfStats) -> QbfResult {
        let problem = self.problem;
        let act =
            *self.activation[usize::from(target)].get_or_insert_with(|| self.synthesizer.new_var());

        // Seed the loop with the all-zero universal assignment so the first
        // candidate is already consistent with at least one pattern.
        let mut counterexample: Vec<bool> = vec![false; problem.universal.len()];

        for _ in 0..problem.config.max_iterations {
            stats.iterations += 1;
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return QbfResult::Unknown;
                }
            }
            if cancel_requested(&problem.config.cancel) {
                return QbfResult::Unknown;
            }

            // Refine: add a copy of the circuit with the counterexample's
            // universal values *folded in as constants* during AIG lowering
            // (the copy shrinks to a function of the keys alone), sharing
            // the existential variables. Only the output clause is gated
            // behind the activation literal — the copy is otherwise inert
            // when this target is not assumed.
            let bound: HashMap<String, AigLit> = problem
                .universal
                .iter()
                .zip(&counterexample)
                .map(|(&net, &value)| {
                    (
                        problem.circuit.net_name(net).to_string(),
                        AigLit::FALSE.when(!value),
                    )
                })
                .collect();
            let copy_aig = unit_aig(problem.circuit, problem.output, &bound);
            let copy = self
                .encoder
                .encode_aig(&mut self.synthesizer, &copy_aig, &self.exist_vars);
            let copy_out = copy.outputs()[0];
            self.synthesizer
                .add_clause([Lit::negative(act), polarised(copy_out, target)]);

            // Propose a candidate.
            let candidate = match self
                .synthesizer
                .solve_with_assumptions(&[Lit::positive(act)])
            {
                SatResult::Sat(model) => {
                    let mut candidate: Vec<(NetId, bool)> = Vec::new();
                    for &net in &problem.existential {
                        let var = self.exist_vars[problem.circuit.net_name(net)];
                        candidate.push((net, model.value(var)));
                    }
                    candidate
                }
                SatResult::Unsat => return QbfResult::Unsat,
                SatResult::Unknown => return QbfResult::Unknown,
            };

            // Verify the candidate: is there a universal assignment that
            // makes the output take the wrong value?
            let mut assumptions: Vec<Lit> = Vec::with_capacity(candidate.len() + 1);
            assumptions.push(polarised(self.out_lit, !target));
            assumptions.extend(candidate.iter().map(|&(net, value)| {
                let var = self
                    .verify_encoding
                    .input_var(problem.circuit.net_name(net))
                    .expect("existential input present in verification encoding");
                Lit::with_polarity(var, value)
            }));
            match self.verifier.solve_with_assumptions(&assumptions) {
                SatResult::Unsat => {
                    let witness = candidate
                        .into_iter()
                        .map(|(net, value)| (problem.circuit.net_name(net).to_string(), value))
                        .collect();
                    return QbfResult::Sat(witness);
                }
                SatResult::Sat(model) => {
                    counterexample = problem
                        .universal
                        .iter()
                        .map(|&net| {
                            let var = self
                                .verify_encoding
                                .input_var(problem.circuit.net_name(net))
                                .expect("universal input present in verification encoding");
                            model.value(var)
                        })
                        .collect();
                }
                SatResult::Unknown => return QbfResult::Unknown,
            }
        }
        QbfResult::Unknown
    }
}

/// Lowers the unit into a fresh AIG with the given inputs bound (typically a
/// counterexample's universal constants) and the interesting net registered
/// as the single output.
///
/// # Panics
///
/// Panics on a cyclic circuit — the construction API cannot produce one, and
/// every caller hands over a well-formed extracted unit.
fn unit_aig(circuit: &Circuit, output: NetId, bound: &HashMap<String, AigLit>) -> Aig {
    let mut aig = Aig::new(circuit.name());
    let lits = aig
        .lower_circuit(circuit, bound)
        .expect("QBF unit circuits are acyclic");
    aig.add_output(circuit.net_name(output), lits[output.index()]);
    aig
}

/// `lit` if `value`, `¬lit` otherwise — the literal asserting that the
/// (possibly complemented) encoded edge takes `value`.
fn polarised(lit: Lit, value: bool) -> Lit {
    if value {
        lit
    } else {
        !lit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    /// A 2-bit comparator unit: out = AND_i (x_i XNOR k_i) — the restore unit
    /// of a DFLT. There is no key making it constant, so both QBF problems
    /// are UNSAT.
    fn comparator(bits: usize) -> Circuit {
        let mut c = Circuit::new("cmp");
        let xs: Vec<NetId> = (0..bits)
            .map(|i| c.add_input(format!("x{i}")).unwrap())
            .collect();
        let ks: Vec<NetId> = (0..bits)
            .map(|i| c.add_input(format!("keyinput{i}")).unwrap())
            .collect();
        let eqs: Vec<NetId> = (0..bits)
            .map(|i| {
                c.add_gate(GateType::Xnor, format!("eq{i}"), &[xs[i], ks[i]])
                    .unwrap()
            })
            .collect();
        let out = c.add_gate(GateType::And, "out", &eqs).unwrap();
        c.mark_output(out);
        c
    }

    /// A SARLock-style unit: out = comparator(x, k) AND NOT comparator(k, secret).
    /// With k = secret the output is constant 0 for every x.
    fn sarlock_unit(bits: usize, secret: u64) -> Circuit {
        let mut c = Circuit::new("sarlock_unit");
        let xs: Vec<NetId> = (0..bits)
            .map(|i| c.add_input(format!("x{i}")).unwrap())
            .collect();
        let ks: Vec<NetId> = (0..bits)
            .map(|i| c.add_input(format!("keyinput{i}")).unwrap())
            .collect();
        let eqs: Vec<NetId> = (0..bits)
            .map(|i| {
                c.add_gate(GateType::Xnor, format!("eq{i}"), &[xs[i], ks[i]])
                    .unwrap()
            })
            .collect();
        let cmp = c.add_gate(GateType::And, "cmp", &eqs).unwrap();
        // Mask: key equals the hard-wired secret.
        let mask_bits: Vec<NetId> = (0..bits)
            .map(|i| {
                if secret >> i & 1 != 0 {
                    ks[i]
                } else {
                    c.add_gate(GateType::Not, format!("nk{i}"), &[ks[i]])
                        .unwrap()
                }
            })
            .collect();
        let is_secret = c.add_gate(GateType::And, "is_secret", &mask_bits).unwrap();
        let not_secret = c
            .add_gate(GateType::Not, "not_secret", &[is_secret])
            .unwrap();
        let out = c
            .add_gate(GateType::And, "flip", &[cmp, not_secret])
            .unwrap();
        c.mark_output(out);
        c
    }

    #[test]
    fn sarlock_unit_secret_found_for_constant_zero() {
        let secret = 0b101;
        let c = sarlock_unit(3, secret);
        let keys = c.key_inputs();
        let xs = c.data_inputs();
        let out = c.outputs()[0];
        let solver = ExistsForallSolver::new(&c, &keys, &xs, out, false);
        let (result, stats) = solver.solve_with_stats();
        match result {
            QbfResult::Sat(witness) => {
                for (i, &k) in keys.iter().enumerate() {
                    let expected = secret >> i & 1 != 0;
                    assert_eq!(witness[c.net_name(k)], expected, "key bit {i}");
                }
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        // The BDD fast path decides the instance without CEGAR iterations.
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn sarlock_unit_constant_one_is_unsat() {
        let c = sarlock_unit(3, 0b010);
        let keys = c.key_inputs();
        let xs = c.data_inputs();
        let out = c.outputs()[0];
        let solver = ExistsForallSolver::new(&c, &keys, &xs, out, true);
        assert_eq!(solver.solve(), QbfResult::Unsat);
    }

    #[test]
    fn comparator_unit_is_unsat_for_both_constants() {
        let c = comparator(3);
        let keys = c.key_inputs();
        let xs = c.data_inputs();
        let out = c.outputs()[0];
        for target in [false, true] {
            let solver = ExistsForallSolver::new(&c, &keys, &xs, out, target);
            assert_eq!(solver.solve(), QbfResult::Unsat, "target {target}");
        }
    }

    #[test]
    fn unlisted_inputs_default_to_universal() {
        // out = x OR k: ∃k ∀x out = 1 is SAT with k = 1 even if x is not
        // passed explicitly as universal.
        let mut c = Circuit::new("or");
        let x = c.add_input("x").unwrap();
        let k = c.add_input("keyinput0").unwrap();
        let out = c.add_gate(GateType::Or, "out", &[x, k]).unwrap();
        c.mark_output(out);
        let _ = x;
        let solver = ExistsForallSolver::new(&c, &[k], &[], out, true);
        match solver.solve() {
            QbfResult::Sat(witness) => assert!(witness["keyinput0"]),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn iteration_budget_returns_unknown() {
        let c = sarlock_unit(4, 0b1011);
        let keys = c.key_inputs();
        let xs = c.data_inputs();
        let out = c.outputs()[0];
        let solver = ExistsForallSolver::new(&c, &keys, &xs, out, false).with_config(QbfConfig {
            max_iterations: 0,
            bdd_node_limit: 0,
            ..Default::default()
        });
        assert_eq!(solver.solve(), QbfResult::Unknown);
    }

    /// Brute-force reference: enumerate all existential assignments and check
    /// them against all universal assignments by simulation.
    fn brute_force_exists_forall(
        circuit: &Circuit,
        existential: &[NetId],
        universal: &[NetId],
        target: bool,
    ) -> Option<u64> {
        let sim = kratt_netlist::sim::Simulator::new(circuit).unwrap();
        'outer: for e_val in 0u64..(1u64 << existential.len()) {
            for u_val in 0u64..(1u64 << universal.len()) {
                let mut assignment: Vec<(NetId, bool)> = Vec::new();
                for (i, &net) in existential.iter().enumerate() {
                    assignment.push((net, e_val >> i & 1 != 0));
                }
                for (i, &net) in universal.iter().enumerate() {
                    assignment.push((net, u_val >> i & 1 != 0));
                }
                let outputs = sim.run_assignment(&assignment).unwrap();
                if outputs[0] != target {
                    continue 'outer;
                }
            }
            return Some(e_val);
        }
        None
    }

    proptest::proptest! {
        /// Random small units: CEGAR agrees with brute force about
        /// satisfiability, and returned witnesses actually work.
        #[test]
        fn prop_matches_brute_force(seed in 0u64..60) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut c = Circuit::new(format!("rand{seed}"));
            let xs: Vec<NetId> = (0..3).map(|i| c.add_input(format!("x{i}")).unwrap()).collect();
            let ks: Vec<NetId> =
                (0..3).map(|i| c.add_input(format!("keyinput{i}")).unwrap()).collect();
            let mut nets: Vec<NetId> = xs.iter().chain(ks.iter()).copied().collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor,
            ];
            for g in 0..8 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let a = nets[rng.gen_range(0..nets.len())];
                let b = nets[rng.gen_range(0..nets.len())];
                let out = c.add_gate(ty, format!("g{g}"), &[a, b]).unwrap();
                nets.push(out);
            }
            let out = *nets.last().unwrap();
            c.mark_output(out);
            let target = rng.gen_bool(0.5);

            let reference = brute_force_exists_forall(&c, &ks, &xs, target);
            let solver = ExistsForallSolver::new(&c, &ks, &xs, out, target);
            match (reference, solver.solve()) {
                (Some(_), QbfResult::Sat(witness)) => {
                    // Check the witness against every universal assignment.
                    let sim = kratt_netlist::sim::Simulator::new(&c).unwrap();
                    for u_val in 0u64..8 {
                        let mut assignment: Vec<(NetId, bool)> = Vec::new();
                        for (i, &net) in xs.iter().enumerate() {
                            assignment.push((net, u_val >> i & 1 != 0));
                        }
                        for &net in &ks {
                            assignment.push((net, witness[c.net_name(net)]));
                        }
                        let outputs = sim.run_assignment(&assignment).unwrap();
                        proptest::prop_assert_eq!(outputs[0], target);
                    }
                }
                (None, QbfResult::Unsat) => {}
                (reference, result) => {
                    return Err(proptest::test_runner::TestCaseError::fail(format!(
                        "disagreement: brute force {:?}, cegar {:?}",
                        reference.is_some(),
                        result.is_sat()
                    )));
                }
            }
        }
    }
}
