//! QDIMACS export of the ∃∀ instances KRATT generates.
//!
//! The original KRATT tool does not solve QBF itself — it writes a QDIMACS
//! file and calls DepQBF on it. The reproduction solves the instances
//! in-tree (see [`ExistsForallSolver`](crate::ExistsForallSolver)), but this
//! module keeps the interchange path alive: it emits exactly the prenex
//! ∃K ∀PPI ∃aux CNF the paper describes, so the instance can be handed to
//! DepQBF (or any QDIMACS solver) for cross-checking.
//!
//! ```
//! use kratt_netlist::{Circuit, GateType};
//! use kratt_qbf::qdimacs;
//!
//! # fn main() -> Result<(), kratt_netlist::NetlistError> {
//! let mut c = Circuit::new("unit");
//! let x = c.add_input("x")?;
//! let k = c.add_input("keyinput0")?;
//! let out = c.add_gate(GateType::And, "out", &[x, k])?;
//! c.mark_output(out);
//! let text = qdimacs::export(&c, &[k], &[x], out, false);
//! assert!(text.contains("p cnf"));
//! assert!(text.lines().any(|l| l.starts_with("e ")));
//! assert!(text.lines().any(|l| l.starts_with("a ")));
//! # Ok(())
//! # }
//! ```

use kratt_netlist::{Circuit, NetId};
use kratt_sat::cnf::{clause_to_dimacs, ClauseSink, Cnf};
use kratt_sat::{Encoder, Lit, Var};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serialises `∃ existential ∀ universal ∃ aux . circuit[output] = target` in
/// QDIMACS format.
///
/// Primary inputs that appear in neither list are treated as universal, the
/// same conservative default the in-tree solver uses. All Tseitin auxiliary
/// variables (internal nets and XOR chain variables) are placed in an
/// innermost existential block, as required for the encoding to be
/// equisatisfiable with the circuit-level formula.
pub fn export(
    circuit: &Circuit,
    existential: &[NetId],
    universal: &[NetId],
    output: NetId,
    target: bool,
) -> String {
    let mut universal: Vec<NetId> = universal.to_vec();
    for &pi in circuit.inputs() {
        if !existential.contains(&pi) && !universal.contains(&pi) {
            universal.push(pi);
        }
    }

    let mut cnf = Cnf::new();
    let encoding = Encoder::new().encode(&mut cnf, circuit, &HashMap::new());
    let out_var = encoding.var_of(output);
    cnf.add_clause([Lit::with_polarity(out_var, target)]);

    let exist_vars: Vec<Var> = existential.iter().map(|&n| encoding.var_of(n)).collect();
    let universal_vars: Vec<Var> = universal.iter().map(|&n| encoding.var_of(n)).collect();
    let mut outer: Vec<Var> = exist_vars.clone();
    outer.extend(universal_vars.iter().copied());
    let inner: Vec<Var> = (0..cnf.num_vars())
        .map(Var::from_index)
        .filter(|v| !outer.contains(v))
        .collect();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "c {} : exists-forall instance, output `{}` = {}",
        circuit.name(),
        circuit.net_name(output),
        u8::from(target)
    );
    for (&net, &var) in existential.iter().zip(&exist_vars) {
        let _ = writeln!(
            text,
            "c exists {} -> {}",
            circuit.net_name(net),
            var.index() + 1
        );
    }
    for (&net, &var) in universal.iter().zip(&universal_vars) {
        let _ = writeln!(
            text,
            "c forall {} -> {}",
            circuit.net_name(net),
            var.index() + 1
        );
    }
    let _ = writeln!(text, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses());
    let _ = writeln!(text, "{}", quantifier_line('e', &exist_vars));
    let _ = writeln!(text, "{}", quantifier_line('a', &universal_vars));
    if !inner.is_empty() {
        let _ = writeln!(text, "{}", quantifier_line('e', &inner));
    }
    for clause in cnf.clauses() {
        let _ = writeln!(text, "{}", clause_to_dimacs(clause));
    }
    text
}

fn quantifier_line(kind: char, vars: &[Var]) -> String {
    let mut line = String::new();
    let _ = write!(line, "{kind}");
    for var in vars {
        let _ = write!(line, " {}", var.index() + 1);
    }
    line.push_str(" 0");
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    fn sarlock_like_unit() -> (Circuit, Vec<NetId>, Vec<NetId>, NetId) {
        let mut c = Circuit::new("unit");
        let xs: Vec<NetId> = (0..2)
            .map(|i| c.add_input(format!("x{i}")).unwrap())
            .collect();
        let ks: Vec<NetId> = (0..2)
            .map(|i| c.add_input(format!("keyinput{i}")).unwrap())
            .collect();
        let eq0 = c.add_gate(GateType::Xnor, "eq0", &[xs[0], ks[0]]).unwrap();
        let eq1 = c.add_gate(GateType::Xnor, "eq1", &[xs[1], ks[1]]).unwrap();
        let cmp = c.add_gate(GateType::And, "cmp", &[eq0, eq1]).unwrap();
        let nk0 = c.add_gate(GateType::Not, "nk0", &[ks[0]]).unwrap();
        let guard = c.add_gate(GateType::And, "guard", &[nk0, ks[1]]).unwrap();
        let not_guard = c.add_gate(GateType::Not, "not_guard", &[guard]).unwrap();
        let out = c.add_gate(GateType::And, "out", &[cmp, not_guard]).unwrap();
        c.mark_output(out);
        (c, ks, xs, out)
    }

    #[test]
    fn export_has_well_formed_prefix_and_header() {
        let (c, ks, xs, out) = sarlock_like_unit();
        let text = export(&c, &ks, &xs, out, false);
        let lines: Vec<&str> = text.lines().collect();
        let header_idx = lines.iter().position(|l| l.starts_with("p cnf")).unwrap();
        // The quantifier prefix follows the header immediately: e, a, e.
        assert!(lines[header_idx + 1].starts_with("e "));
        assert!(lines[header_idx + 2].starts_with("a "));
        assert!(lines[header_idx + 3].starts_with("e "));
        // Every quantifier line is zero-terminated.
        for offset in 1..=3 {
            assert!(lines[header_idx + offset].ends_with(" 0"));
        }
        // Header counts match body.
        let mut parts = lines[header_idx].split_whitespace().skip(2);
        let vars: usize = parts.next().unwrap().parse().unwrap();
        let clauses: usize = parts.next().unwrap().parse().unwrap();
        let clause_lines = lines.len() - header_idx - 4;
        assert_eq!(clause_lines, clauses);
        assert!(vars >= c.num_inputs());
    }

    #[test]
    fn prefix_partitions_all_variables_exactly_once() {
        let (c, ks, xs, out) = sarlock_like_unit();
        let text = export(&c, &ks, &xs, out, true);
        let lines: Vec<&str> = text.lines().collect();
        let header_idx = lines.iter().position(|l| l.starts_with("p cnf")).unwrap();
        let total_vars: usize = lines[header_idx]
            .split_whitespace()
            .nth(2)
            .unwrap()
            .parse()
            .unwrap();
        let mut seen = std::collections::HashSet::new();
        for line in &lines[header_idx + 1..] {
            if !(line.starts_with("e ") || line.starts_with("a ")) {
                break;
            }
            for token in line[2..].split_whitespace() {
                let value: usize = token.parse().unwrap();
                if value == 0 {
                    continue;
                }
                assert!(seen.insert(value), "variable {value} quantified twice");
            }
        }
        assert_eq!(seen.len(), total_vars, "every variable must be quantified");
    }

    #[test]
    fn key_inputs_are_in_the_outer_existential_block() {
        let (c, ks, xs, out) = sarlock_like_unit();
        let text = export(&c, &ks, &xs, out, false);
        // The comments record the name -> index mapping; the outer block must
        // contain exactly the existential indices.
        let exist_indices: Vec<String> = text
            .lines()
            .filter(|l| l.starts_with("c exists"))
            .map(|l| l.split_whitespace().last().unwrap().to_string())
            .collect();
        assert_eq!(exist_indices.len(), ks.len());
        let outer = text.lines().find(|l| l.starts_with("e ")).unwrap();
        for index in exist_indices {
            assert!(outer.split_whitespace().any(|t| t == index));
        }
    }

    #[test]
    fn unlisted_inputs_are_universal() {
        let mut c = Circuit::new("or");
        let x = c.add_input("x").unwrap();
        let k = c.add_input("keyinput0").unwrap();
        let out = c.add_gate(GateType::Or, "out", &[x, k]).unwrap();
        c.mark_output(out);
        let _ = x;
        let text = export(&c, &[k], &[], out, true);
        assert!(text.lines().any(|l| l.starts_with("c forall x")));
    }
}
