//! A small reduced ordered binary decision diagram (ROBDD) engine.
//!
//! The CEGAR loop is complete but degenerates into key enumeration on
//! point-function locking units (each counterexample eliminates a single
//! key), which cannot scale to the paper's 64–128-bit keys. DepQBF copes with
//! those instances through QCDCL-style learning; this reproduction instead
//! decides them through BDDs: the locking unit is tiny (a few hundred gates
//! over the protected and key inputs) and its function — comparators, AND/OR
//! trees of XORs — has a compact BDD under an interleaved variable order, so
//! `∃K ∀PPI unit = const` reduces to one universal quantification followed by
//! a satisfying-path lookup. A configurable node budget keeps the engine
//! safe: if the BDD blows up, the caller falls back to CEGAR.

use kratt_netlist::{Circuit, GateType, NetId};
use std::collections::HashMap;

/// Reference to a BDD node (terminals are `ZERO` and `ONE`).
pub type Ref = u32;

/// The constant-false BDD.
pub const ZERO: Ref = 0;
/// The constant-true BDD.
pub const ONE: Ref = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    low: Ref,
    high: Ref,
}

/// Error raised when the configured node budget is exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLimitExceeded;

impl std::fmt::Display for NodeLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bdd node budget exceeded")
    }
}

impl std::error::Error for NodeLimitExceeded {}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// A BDD manager with a fixed variable order and a node budget.
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Ref>,
    apply_cache: HashMap<(Op, Ref, Ref), Ref>,
    not_cache: HashMap<Ref, Ref>,
    node_limit: usize,
}

impl BddManager {
    /// Creates a manager for `num_vars` variables with the given node budget.
    pub fn new(node_limit: usize) -> Self {
        let terminal = Node {
            var: u32::MAX,
            low: 0,
            high: 0,
        };
        BddManager {
            // Slots 0 and 1 are the terminals; their contents are never read.
            nodes: vec![terminal, terminal],
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            not_cache: HashMap::new(),
            node_limit,
        }
    }

    /// Number of live nodes (including terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, low: Ref, high: Ref) -> Result<Ref, NodeLimitExceeded> {
        if low == high {
            return Ok(low);
        }
        let node = Node { var, low, high };
        if let Some(&existing) = self.unique.get(&node) {
            return Ok(existing);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(NodeLimitExceeded);
        }
        let index = self.nodes.len() as Ref;
        self.nodes.push(node);
        self.unique.insert(node, index);
        Ok(index)
    }

    fn var_of(&self, f: Ref) -> u32 {
        if f <= 1 {
            u32::MAX
        } else {
            self.nodes[f as usize].var
        }
    }

    /// The BDD of a single variable.
    pub fn variable(&mut self, var: u32) -> Result<Ref, NodeLimitExceeded> {
        self.mk(var, ZERO, ONE)
    }

    /// Negation.
    pub fn not(&mut self, f: Ref) -> Result<Ref, NodeLimitExceeded> {
        match f {
            ZERO => return Ok(ONE),
            ONE => return Ok(ZERO),
            _ => {}
        }
        if let Some(&cached) = self.not_cache.get(&f) {
            return Ok(cached);
        }
        let node = self.nodes[f as usize];
        let low = self.not(node.low)?;
        let high = self.not(node.high)?;
        let result = self.mk(node.var, low, high)?;
        self.not_cache.insert(f, result);
        Ok(result)
    }

    fn apply(&mut self, op: Op, f: Ref, g: Ref) -> Result<Ref, NodeLimitExceeded> {
        // Terminal cases.
        match (op, f, g) {
            (Op::And, ZERO, _) | (Op::And, _, ZERO) => return Ok(ZERO),
            (Op::And, ONE, x) | (Op::And, x, ONE) => return Ok(x),
            (Op::Or, ONE, _) | (Op::Or, _, ONE) => return Ok(ONE),
            (Op::Or, ZERO, x) | (Op::Or, x, ZERO) => return Ok(x),
            (Op::Xor, ZERO, x) | (Op::Xor, x, ZERO) => return Ok(x),
            (Op::Xor, ONE, x) | (Op::Xor, x, ONE) => return self.not(x),
            _ => {}
        }
        if f == g {
            return Ok(match op {
                Op::And | Op::Or => f,
                Op::Xor => ZERO,
            });
        }
        // Normalise the cache key for the commutative operations.
        let key = if f <= g { (op, f, g) } else { (op, g, f) };
        if let Some(&cached) = self.apply_cache.get(&key) {
            return Ok(cached);
        }
        let fv = self.var_of(f);
        let gv = self.var_of(g);
        let top = fv.min(gv);
        let (f_low, f_high) = if fv == top {
            let n = self.nodes[f as usize];
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g_low, g_high) = if gv == top {
            let n = self.nodes[g as usize];
            (n.low, n.high)
        } else {
            (g, g)
        };
        let low = self.apply(op, f_low, g_low)?;
        let high = self.apply(op, f_high, g_high)?;
        let result = self.mk(top, low, high)?;
        self.apply_cache.insert(key, result);
        Ok(result)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Result<Ref, NodeLimitExceeded> {
        self.apply(Op::And, f, g)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Result<Ref, NodeLimitExceeded> {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Result<Ref, NodeLimitExceeded> {
        self.apply(Op::Xor, f, g)
    }

    /// Universal quantification of every variable for which `quantified`
    /// returns `true`.
    pub fn forall(&mut self, f: Ref, quantified: &[bool]) -> Result<Ref, NodeLimitExceeded> {
        let mut memo: HashMap<Ref, Ref> = HashMap::new();
        self.forall_rec(f, quantified, &mut memo)
    }

    fn forall_rec(
        &mut self,
        f: Ref,
        quantified: &[bool],
        memo: &mut HashMap<Ref, Ref>,
    ) -> Result<Ref, NodeLimitExceeded> {
        if f <= 1 {
            return Ok(f);
        }
        if let Some(&cached) = memo.get(&f) {
            return Ok(cached);
        }
        let node = self.nodes[f as usize];
        let low = self.forall_rec(node.low, quantified, memo)?;
        let high = self.forall_rec(node.high, quantified, memo)?;
        let result = if quantified.get(node.var as usize).copied().unwrap_or(false) {
            self.and(low, high)?
        } else {
            self.mk(node.var, low, high)?
        };
        memo.insert(f, result);
        Ok(result)
    }

    /// Returns one satisfying assignment of `f` as `(variable, value)` pairs
    /// (variables not on the chosen path are left out), or `None` when `f`
    /// is the constant false.
    pub fn any_sat(&self, f: Ref) -> Option<Vec<(u32, bool)>> {
        if f == ZERO {
            return None;
        }
        let mut assignment = Vec::new();
        let mut current = f;
        while current > 1 {
            let node = self.nodes[current as usize];
            if node.high != ZERO {
                assignment.push((node.var, true));
                current = node.high;
            } else {
                assignment.push((node.var, false));
                current = node.low;
            }
        }
        Some(assignment)
    }

    /// Builds the BDD of one circuit output given a mapping from primary
    /// inputs to BDD variable indices.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] if the intermediate BDDs outgrow the
    /// node budget.
    pub fn build_circuit_output(
        &mut self,
        circuit: &Circuit,
        var_of_input: &HashMap<NetId, u32>,
        output: NetId,
    ) -> Result<Ref, NodeLimitExceeded> {
        let order =
            kratt_netlist::analysis::topological_order(circuit).expect("locking units are acyclic");
        let mut value: HashMap<NetId, Ref> = HashMap::new();
        for (&net, &var) in var_of_input {
            let bdd = self.variable(var)?;
            value.insert(net, bdd);
        }
        for gid in order {
            let gate = circuit.gate(gid);
            let inputs: Vec<Ref> = gate
                .inputs
                .iter()
                .map(|n| value.get(n).copied().unwrap_or(ZERO))
                .collect();
            let result = match gate.ty {
                GateType::And | GateType::Nand => {
                    let mut acc = ONE;
                    for &input in &inputs {
                        acc = self.and(acc, input)?;
                    }
                    if gate.ty == GateType::Nand {
                        self.not(acc)?
                    } else {
                        acc
                    }
                }
                GateType::Or | GateType::Nor => {
                    let mut acc = ZERO;
                    for &input in &inputs {
                        acc = self.or(acc, input)?;
                    }
                    if gate.ty == GateType::Nor {
                        self.not(acc)?
                    } else {
                        acc
                    }
                }
                GateType::Xor | GateType::Xnor => {
                    let mut acc = ZERO;
                    for &input in &inputs {
                        acc = self.xor(acc, input)?;
                    }
                    if gate.ty == GateType::Xnor {
                        self.not(acc)?
                    } else {
                        acc
                    }
                }
                GateType::Not => self.not(inputs[0])?,
                GateType::Buf => inputs[0],
                GateType::Const0 => ZERO,
                GateType::Const1 => ONE,
            };
            value.insert(gate.output, result);
        }
        Ok(value.get(&output).copied().unwrap_or(ZERO))
    }
}

/// Chooses a BDD variable order for the circuit's primary inputs by the
/// position of the first gate that consumes each input (inputs feeding the
/// same early gate end up adjacent — the interleaved `x_i, k_i` order the
/// locking-unit structures want).
pub fn interleaved_input_order(circuit: &Circuit) -> HashMap<NetId, u32> {
    let order = kratt_netlist::analysis::topological_order(circuit).unwrap_or_default();
    let mut first_use: HashMap<NetId, usize> = HashMap::new();
    for (position, &gid) in order.iter().enumerate() {
        for &input in &circuit.gate(gid).inputs {
            if circuit.is_input(input) {
                first_use.entry(input).or_insert(position);
            }
        }
    }
    let mut inputs: Vec<NetId> = circuit.inputs().to_vec();
    inputs.sort_by_key(|n| (first_use.get(n).copied().unwrap_or(usize::MAX), n.index()));
    inputs
        .into_iter()
        .enumerate()
        .map(|(i, n)| (n, i as u32))
        .collect()
}

/// Chooses a BDD variable order for an exists-forall instance by structural
/// pairing: each universal input is followed immediately by the existential
/// input(s) closest to it in the gate graph.
///
/// [`interleaved_input_order`] recovers the `x_i, k_i` interleaving only when
/// each comparator pair feeds a single early gate, which resynthesis breaks:
/// once an XOR is decomposed and its pieces are shared, first-use positions
/// scatter the pairs, and the BDD of a 32-bit comparator under a scattered
/// order needs tens of millions of nodes instead of a few hundred. Pairing by
/// graph distance is invariant to such restructuring, so the BDD fast path
/// keeps working on resynthesised and technology-mapped netlists (the
/// paper's Fig. 6 setting).
pub fn paired_input_order(
    circuit: &Circuit,
    existential: &[NetId],
    universal: &[NetId],
) -> HashMap<NetId, u32> {
    use std::collections::{HashSet, VecDeque};

    let base = interleaved_input_order(circuit);
    if existential.is_empty() || universal.is_empty() {
        return base;
    }
    let rank = |n: NetId| base.get(&n).copied().unwrap_or(u32::MAX);

    // Undirected net adjacency through gates (input <-> output edges).
    let mut adjacency: HashMap<NetId, Vec<NetId>> = HashMap::new();
    for (_, gate) in circuit.gates() {
        for &input in &gate.inputs {
            adjacency.entry(input).or_default().push(gate.output);
            adjacency.entry(gate.output).or_default().push(input);
        }
    }

    // One multi-source BFS from all universal inputs labels every net with
    // the universal that reaches it first; each existential input then pairs
    // with its label (its nearest universal). Keys the BFS never reaches are
    // disconnected from every universal and fall through to the trailing
    // first-use order below.
    let mut source_of: HashMap<NetId, NetId> = HashMap::new();
    let mut queue: VecDeque<NetId> = VecDeque::new();
    for &u in universal {
        source_of.entry(u).or_insert(u);
        queue.push_back(u);
    }
    while let Some(net) = queue.pop_front() {
        let source = source_of[&net];
        for &next in adjacency.get(&net).map(Vec::as_slice).unwrap_or(&[]) {
            source_of.entry(next).or_insert_with(|| {
                queue.push_back(next);
                source
            });
        }
    }
    let mut keys_of: HashMap<NetId, Vec<NetId>> = HashMap::new();
    for &key in existential {
        if let Some(&u) = source_of.get(&key) {
            if u != key {
                keys_of.entry(u).or_default().push(key);
            }
        }
    }

    // Emit each universal followed by its keys, everything else afterwards.
    let mut universals: Vec<NetId> = universal.to_vec();
    universals.sort_by_key(|&n| rank(n));
    let mut ordered: Vec<NetId> = Vec::with_capacity(circuit.inputs().len());
    for u in universals {
        ordered.push(u);
        if let Some(mut keys) = keys_of.remove(&u) {
            keys.sort_by_key(|&n| rank(n));
            ordered.append(&mut keys);
        }
    }
    let placed: HashSet<NetId> = ordered.iter().copied().collect();
    let mut rest: Vec<NetId> = circuit
        .inputs()
        .iter()
        .copied()
        .filter(|n| !placed.contains(n))
        .collect();
    rest.sort_by_key(|&n| rank(n));
    ordered.extend(rest);
    ordered
        .into_iter()
        .enumerate()
        .map(|(i, n)| (n, i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kratt_netlist::GateType;

    /// A 16-bit key/data comparator whose first-use order is deliberately
    /// scattered: an early wide OR consumes every data input, so
    /// [`interleaved_input_order`] groups all `x_i` before all `k_i` — the
    /// shape resynthesis produces on real locking units.
    fn scattered_comparator() -> (Circuit, Vec<NetId>, Vec<NetId>, NetId) {
        let mut c = Circuit::new("scattered_cmp");
        let xs: Vec<NetId> = (0..16)
            .map(|i| c.add_input(format!("x{i}")).unwrap())
            .collect();
        let ks: Vec<NetId> = (0..16)
            .map(|i| c.add_input(format!("keyinput{i}")).unwrap())
            .collect();
        let early = c.add_gate(GateType::Or, "early", &xs).unwrap();
        c.mark_output(early);
        let mut acc = None;
        for i in 0..16 {
            let eq = c
                .add_gate(GateType::Xnor, format!("eq{i}"), &[xs[i], ks[i]])
                .unwrap();
            acc = Some(match acc {
                None => eq,
                Some(prev) => c
                    .add_gate(GateType::And, format!("acc{i}"), &[prev, eq])
                    .unwrap(),
            });
        }
        let cmp = acc.unwrap();
        c.mark_output(cmp);
        (c, xs, ks, cmp)
    }

    /// Regression test for the Fig. 6 BDD blowup: the paired order must keep
    /// each key adjacent to its data input even when first-use positions
    /// scatter them, and the comparator BDD must stay linear under it while
    /// the first-use order exhausts the same node budget.
    #[test]
    fn paired_order_keeps_scattered_comparator_compact() {
        let (c, xs, ks, cmp) = scattered_comparator();

        let interleaved = interleaved_input_order(&c);
        for i in 0..16 {
            assert!(
                interleaved[&xs[i]] < interleaved[&ks[0]],
                "precondition lost: first-use order should group every x before every k"
            );
        }

        let paired = paired_input_order(&c, &ks, &xs);
        for i in 0..16 {
            assert_eq!(
                paired[&ks[i]],
                paired[&xs[i]] + 1,
                "key {i} is not adjacent to its data input"
            );
        }

        let budget = 1 << 12;
        let mut manager = BddManager::new(budget);
        assert!(
            manager.build_circuit_output(&c, &paired, cmp).is_ok(),
            "paired order must keep the comparator BDD within {budget} nodes"
        );
        let mut scattered = BddManager::new(budget);
        assert!(
            scattered
                .build_circuit_output(&c, &interleaved, cmp)
                .is_err(),
            "the scattered first-use order should exceed the same budget \
             (otherwise this test no longer exercises the blowup)"
        );
    }

    #[test]
    fn basic_boolean_identities() {
        let mut m = BddManager::new(1 << 16);
        let a = m.variable(0).unwrap();
        let b = m.variable(1).unwrap();
        let ab = m.and(a, b).unwrap();
        let ba = m.and(b, a).unwrap();
        assert_eq!(ab, ba, "hash consing must canonicalise");
        let na = m.not(a).unwrap();
        let contradiction = m.and(a, na).unwrap();
        assert_eq!(contradiction, ZERO);
        let tautology = m.or(a, na).unwrap();
        assert_eq!(tautology, ONE);
        let axa = m.xor(a, a).unwrap();
        assert_eq!(axa, ZERO);
        let double_not = m.not(na).unwrap();
        assert_eq!(double_not, a);
    }

    #[test]
    fn forall_quantifies_correctly() {
        let mut m = BddManager::new(1 << 16);
        let x = m.variable(0).unwrap();
        let k = m.variable(1).unwrap();
        // f = x XNOR k: forall x f == false (no k works for both x values).
        let fx = m.xor(x, k).unwrap();
        let f = m.not(fx).unwrap();
        let forall_x = m.forall(f, &[true, false]).unwrap();
        assert_eq!(forall_x, ZERO);
        // g = x OR k: forall x g == k.
        let g = m.or(x, k).unwrap();
        let forall_x = m.forall(g, &[true, false]).unwrap();
        assert_eq!(forall_x, k);
    }

    #[test]
    fn any_sat_returns_a_model() {
        let mut m = BddManager::new(1 << 16);
        let a = m.variable(0).unwrap();
        let b = m.variable(1).unwrap();
        let nb = m.not(b).unwrap();
        let f = m.and(a, nb).unwrap();
        let model = m.any_sat(f).unwrap();
        assert!(model.contains(&(0, true)));
        assert!(model.contains(&(1, false)));
        assert!(m.any_sat(ZERO).is_none());
    }

    #[test]
    fn node_limit_is_enforced() {
        let mut m = BddManager::new(8);
        let mut acc = ONE;
        let mut failed = false;
        for v in 0..16 {
            let var = match m.variable(v) {
                Ok(var) => var,
                Err(NodeLimitExceeded) => {
                    failed = true;
                    break;
                }
            };
            match m.xor(acc, var) {
                Ok(next) => acc = next,
                Err(NodeLimitExceeded) => {
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "a tiny node budget must be exceeded");
    }

    #[test]
    fn circuit_bdd_matches_simulation() {
        // f = (a AND b) XOR NOT c, checked on all 8 patterns.
        let mut c = Circuit::new("toy");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("c").unwrap();
        let ab = c.add_gate(GateType::And, "ab", &[a, b]).unwrap();
        let nc = c.add_gate(GateType::Not, "nc", &[d]).unwrap();
        let f = c.add_gate(GateType::Xor, "f", &[ab, nc]).unwrap();
        c.mark_output(f);

        let var_of = interleaved_input_order(&c);
        let mut m = BddManager::new(1 << 16);
        let root = m.build_circuit_output(&c, &var_of, f).unwrap();
        let sim = kratt_netlist::sim::Simulator::new(&c).unwrap();
        for pattern in 0u64..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            let expected = sim.run(&bits).unwrap()[0];
            // Evaluate the BDD by walking it under the assignment.
            let mut current = root;
            while current > 1 {
                let node = m.nodes[current as usize];
                // Recover which input this variable index corresponds to.
                let (net, _) = var_of.iter().find(|(_, &v)| v == node.var).unwrap();
                let position = c.input_position(*net).unwrap();
                current = if bits[position] { node.high } else { node.low };
            }
            assert_eq!(current == ONE, expected, "pattern {pattern:03b}");
        }
    }
}
