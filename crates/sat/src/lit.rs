//! Variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable. Variables are created by
/// [`Solver::new_var`](crate::Solver::new_var) and are dense indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from a dense index. Only meaningful for indices that
    /// were handed out by the owning solver.
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Internally encoded as `2 * var + sign` (sign = 1 for the negated literal),
/// the standard MiniSat packing, so literals index watch lists directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Self {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn negative(var: Var) -> Self {
        Lit(var.0 << 1 | 1)
    }

    /// A literal of `var` with the given polarity (`true` = positive).
    pub fn with_polarity(var: Var, polarity: bool) -> Self {
        if polarity {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is a negated literal.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// `true` if this is a positive literal.
    pub fn is_positive(self) -> bool {
        !self.is_negative()
    }

    /// The dense code of the literal (usable as a watch-list index).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var().0)
        } else {
            write!(f, "x{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        let v = Var::from_index(7);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(!(!p), p);
        assert_eq!(p.code(), 14);
        assert_eq!(n.code(), 15);
    }

    #[test]
    fn polarity_constructor() {
        let v = Var::from_index(3);
        assert_eq!(Lit::with_polarity(v, true), Lit::positive(v));
        assert_eq!(Lit::with_polarity(v, false), Lit::negative(v));
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(2);
        assert_eq!(Lit::positive(v).to_string(), "x2");
        assert_eq!(Lit::negative(v).to_string(), "¬x2");
        assert_eq!(v.to_string(), "x2");
    }
}
