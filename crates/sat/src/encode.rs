//! Tseitin encoding of gate-level circuits into solver clauses.
//!
//! Every net of the circuit is mapped to one solver variable; every gate is
//! translated into the equivalence clauses between its output variable and
//! the Boolean function of its input variables. Primary-input variables can
//! be *shared* with previously encoded circuits, which is how miters (two
//! copies of a locked circuit sharing primary inputs but not key inputs, the
//! heart of the SAT-based attack) and equivalence checks are built.

use crate::cnf::ClauseSink;
use crate::lit::{Lit, Var};
use crate::solver::Solver;
use kratt_netlist::{Aig, AigLit, Circuit, GateType, NetId};
use std::collections::HashMap;

/// The result of encoding one circuit into a [`Solver`].
#[derive(Debug, Clone)]
pub struct CircuitEncoding {
    /// Variable assigned to each net, indexed by [`NetId::index`].
    vars: Vec<Var>,
    /// `(name, var)` for each primary input, in circuit input order.
    inputs: Vec<(String, Var)>,
    /// Input variables keyed by name — the lookup map behind
    /// [`CircuitEncoding::input_var`], which sits on the hot path of the
    /// CEGAR and DIP loops (one lookup per input per iteration).
    input_by_name: HashMap<String, Var>,
    /// Output variables in circuit output order.
    outputs: Vec<Var>,
}

impl CircuitEncoding {
    /// The solver variable carrying the value of `net`.
    pub fn var_of(&self, net: NetId) -> Var {
        self.vars[net.index()]
    }

    /// `(name, variable)` pairs for the primary inputs, in circuit order.
    pub fn inputs(&self) -> &[(String, Var)] {
        &self.inputs
    }

    /// The variable of the primary input with the given name.
    pub fn input_var(&self, name: &str) -> Option<Var> {
        self.input_by_name.get(name).copied()
    }

    /// Output variables, in circuit output order.
    pub fn outputs(&self) -> &[Var] {
        &self.outputs
    }
}

/// The result of encoding an [`Aig`] into a solver: input variables by name
/// and position, plus one *literal* per output (an AIG output is an edge, so
/// its CNF image carries a phase).
#[derive(Debug, Clone)]
pub struct AigEncoding {
    /// `(name, var)` for each AIG input, in declaration order.
    inputs: Vec<(String, Var)>,
    input_by_name: HashMap<String, Var>,
    /// Variable of each node, where one was allocated (internal nodes of
    /// collapsed AND cones and absorbed XOR children have none).
    node_vars: Vec<Option<Var>>,
    /// Output literals, in AIG output order.
    outputs: Vec<Lit>,
}

impl AigEncoding {
    /// `(name, variable)` pairs for the inputs, in AIG input order.
    pub fn inputs(&self) -> &[(String, Var)] {
        &self.inputs
    }

    /// The variable of the input with the given name.
    pub fn input_var(&self, name: &str) -> Option<Var> {
        self.input_by_name.get(name).copied()
    }

    /// The CNF literal of an AIG edge, if its node was materialised.
    /// Internal nodes of collapsed AND cones / absorbed XOR children have no
    /// variable; constants only have one when some registered output is
    /// constant.
    pub fn lit_of(&self, lit: AigLit) -> Option<Lit> {
        self.node_vars[lit.node() as usize]
            .map(|var| Lit::with_polarity(var, !lit.is_complemented()))
    }

    /// Output literals, in AIG output order.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }
}

/// Encoder of circuits into a [`Solver`]. The encoder is stateless; it is a
/// struct (rather than free functions) so that the gate-encoding helpers can
/// be discovered together in the documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Encoder;

impl Encoder {
    /// Creates an encoder.
    pub fn new() -> Self {
        Encoder
    }

    /// Encodes `circuit` into `solver` (any [`ClauseSink`]: a live
    /// [`Solver`] or a [`Cnf`](crate::cnf::Cnf) headed for DIMACS export).
    ///
    /// `shared_inputs` maps primary-input *names* to already existing solver
    /// variables; inputs found in the map reuse that variable instead of
    /// getting a fresh one. All other nets receive fresh variables.
    pub fn encode<S: ClauseSink>(
        &self,
        solver: &mut S,
        circuit: &Circuit,
        shared_inputs: &HashMap<String, Var>,
    ) -> CircuitEncoding {
        let mut vars: Vec<Option<Var>> = vec![None; circuit.num_nets()];
        let mut inputs = Vec::with_capacity(circuit.num_inputs());
        for &pi in circuit.inputs() {
            let name = circuit.net_name(pi).to_string();
            let var = shared_inputs
                .get(&name)
                .copied()
                .unwrap_or_else(|| solver.new_var());
            vars[pi.index()] = Some(var);
            inputs.push((name, var));
        }
        for net in circuit.nets() {
            if vars[net.index()].is_none() {
                vars[net.index()] = Some(solver.new_var());
            }
        }
        let vars: Vec<Var> = vars
            .into_iter()
            .map(|v| v.expect("assigned above"))
            .collect();

        for (_, gate) in circuit.gates() {
            let output = vars[gate.output.index()];
            let gate_inputs: Vec<Var> = gate.inputs.iter().map(|n| vars[n.index()]).collect();
            self.encode_gate(solver, gate.ty, output, &gate_inputs);
        }

        let outputs = circuit.outputs().iter().map(|o| vars[o.index()]).collect();
        let input_by_name = inputs.iter().cloned().collect();
        CircuitEncoding {
            vars,
            inputs,
            input_by_name,
            outputs,
        }
    }

    /// Encodes an [`Aig`] into `solver`, producing a CNF that is usually far
    /// smaller than the per-gate [`Encoder::encode`] image of the equivalent
    /// circuit:
    ///
    /// * only nodes in the cone of the registered outputs are encoded
    ///   (dangling logic costs nothing);
    /// * inverters and buffers are complement edges — no variable, no
    ///   clauses;
    /// * single-fanout AND trees collapse into one k-ary conjunction
    ///   (`k + 1` clauses, one variable — the same cost the per-gate encoder
    ///   pays for a k-input AND gate);
    /// * the three-node XOR/XNOR shape is recognised and emitted as the
    ///   four-clause XOR constraint, absorbing its two single-fanout
    ///   children.
    ///
    /// `shared_inputs` maps AIG input *names* to existing solver variables,
    /// exactly as for [`Encoder::encode`]. Every AIG input receives a
    /// variable (shared or fresh) whether or not it feeds an output cone, so
    /// counterexamples can always be read back over the full interface.
    pub fn encode_aig<S: ClauseSink>(
        &self,
        solver: &mut S,
        aig: &Aig,
        shared_inputs: &HashMap<String, Var>,
    ) -> AigEncoding {
        let n = aig.num_nodes();
        let cone = aig.cone(aig.outputs());
        let refs = aig.reference_counts(&cone);
        let is_output_node = {
            let mut mark = vec![false; n];
            for lit in aig.outputs() {
                mark[lit.node() as usize] = true;
            }
            mark
        };

        // --- Pattern detection pass (ascending = topological order). -------
        // `xor_def[n] = (a, b)` means node n is encoded as `n ↔ a ⊕ b`;
        // `absorbed[m]` marks nodes folded into a parent's constraint.
        let mut xor_def: Vec<Option<(AigLit, AigLit)>> = vec![None; n];
        let mut absorbed = vec![false; n];
        for node in 1..n as u32 {
            if !cone[node as usize] || !aig.is_and(node) {
                continue;
            }
            let (f0, f1) = aig.fanins(node);
            if !(f0.is_complemented() && f1.is_complemented()) {
                continue;
            }
            let (c0, c1) = (f0.node(), f1.node());
            let absorbable = |c: u32| {
                aig.is_and(c)
                    && refs[c as usize] == 1
                    && !is_output_node[c as usize]
                    && !absorbed[c as usize]
            };
            if !absorbable(c0) || !absorbable(c1) {
                continue;
            }
            let (a0, b0) = aig.fanins(c0);
            let (a1, b1) = aig.fanins(c1);
            // XOR shape: the two children conjoin complementary literal
            // pairs. Grandchildren must themselves carry variables.
            let complementary = (a1 == a0.complement() && b1 == b0.complement())
                || (a1 == b0.complement() && b1 == a0.complement());
            let materialised = |l: AigLit| !absorbed[l.node() as usize];
            if complementary && materialised(a0) && materialised(b0) {
                xor_def[node as usize] = Some((a0, b0));
                absorbed[c0 as usize] = true;
                absorbed[c1 as usize] = true;
            }
        }
        // AND-cone collapse: a plain, single-fanout AND feeding another
        // encoded AND disappears into its parent's k-ary conjunction.
        let mut internal = vec![false; n];
        for node in 1..n as u32 {
            if !cone[node as usize]
                || !aig.is_and(node)
                || absorbed[node as usize]
                || xor_def[node as usize].is_some()
            {
                continue;
            }
            let (f0, f1) = aig.fanins(node);
            for f in [f0, f1] {
                let m = f.node() as usize;
                if !f.is_complemented()
                    && aig.is_and(f.node())
                    && refs[m] == 1
                    && !is_output_node[m]
                    && !absorbed[m]
                    && xor_def[m].is_none()
                {
                    internal[m] = true;
                }
            }
        }

        // --- Variable allocation. ------------------------------------------
        let mut node_vars: Vec<Option<Var>> = vec![None; n];
        let mut inputs = Vec::with_capacity(aig.num_inputs());
        for (&node, name) in aig.input_nodes().iter().zip(aig.input_names()) {
            let var = shared_inputs
                .get(name)
                .copied()
                .unwrap_or_else(|| solver.new_var());
            node_vars[node as usize] = Some(var);
            inputs.push((name.clone(), var));
        }
        if aig.outputs().iter().any(|lit| lit.is_constant()) {
            // A pinned variable standing in for the constant node (whose
            // plain value is false), so constant outputs still have a CNF
            // literal.
            let constant = solver.new_var();
            solver.add_clause([Lit::negative(constant)]);
            node_vars[0] = Some(constant);
        }
        for node in 1..n as u32 {
            let i = node as usize;
            if cone[i] && aig.is_and(node) && !absorbed[i] && !internal[i] {
                node_vars[i] = Some(solver.new_var());
            }
        }
        let lit_of = |node_vars: &[Option<Var>], l: AigLit| -> Lit {
            let var = node_vars[l.node() as usize].expect("referenced node materialised");
            Lit::with_polarity(var, !l.is_complemented())
        };

        // --- Clause emission. ----------------------------------------------
        for node in 1..n as u32 {
            let i = node as usize;
            if !cone[i] || !aig.is_and(node) || absorbed[i] || internal[i] {
                continue;
            }
            let out = node_vars[i].expect("allocated above");
            if let Some((a, b)) = xor_def[i] {
                let (la, lb) = (lit_of(&node_vars, a), lit_of(&node_vars, b));
                solver.add_clause([Lit::negative(out), la, lb]);
                solver.add_clause([Lit::negative(out), !la, !lb]);
                solver.add_clause([Lit::positive(out), !la, lb]);
                solver.add_clause([Lit::positive(out), la, !lb]);
                continue;
            }
            // Gather the conjunction's leaves through internal children.
            let mut leaves: Vec<Lit> = Vec::new();
            let mut stack = vec![node];
            while let Some(m) = stack.pop() {
                let (f0, f1) = aig.fanins(m);
                for f in [f0, f1] {
                    if !f.is_complemented() && internal[f.node() as usize] {
                        stack.push(f.node());
                    } else {
                        leaves.push(lit_of(&node_vars, f));
                    }
                }
            }
            for &leaf in &leaves {
                solver.add_clause([Lit::negative(out), leaf]);
            }
            let mut clause: Vec<Lit> = leaves.iter().map(|&l| !l).collect();
            clause.push(Lit::positive(out));
            solver.add_clause(clause);
        }

        let outputs = aig
            .outputs()
            .iter()
            .map(|&l| lit_of(&node_vars, l))
            .collect();
        let input_by_name = inputs.iter().cloned().collect();
        AigEncoding {
            inputs,
            input_by_name,
            node_vars,
            outputs,
        }
    }

    /// Encodes `output ↔ ty(inputs)`.
    pub fn encode_gate<S: ClauseSink>(
        &self,
        solver: &mut S,
        ty: GateType,
        output: Var,
        inputs: &[Var],
    ) {
        use GateType::*;
        let out_pos = Lit::positive(output);
        let out_neg = Lit::negative(output);
        match ty {
            And | Nand => {
                // For AND: out -> in_i, and (all in_i) -> out.
                // For NAND the output literal polarity flips.
                let (o_true, o_false) = if ty == And {
                    (out_pos, out_neg)
                } else {
                    (out_neg, out_pos)
                };
                for &input in inputs {
                    solver.add_clause([o_false, Lit::positive(input)]);
                }
                let mut clause: Vec<Lit> = inputs.iter().map(|&i| Lit::negative(i)).collect();
                clause.push(o_true);
                solver.add_clause(clause);
            }
            Or | Nor => {
                let (o_true, o_false) = if ty == Or {
                    (out_pos, out_neg)
                } else {
                    (out_neg, out_pos)
                };
                for &input in inputs {
                    solver.add_clause([o_true, Lit::negative(input)]);
                }
                let mut clause: Vec<Lit> = inputs.iter().map(|&i| Lit::positive(i)).collect();
                clause.push(o_false);
                solver.add_clause(clause);
            }
            Xor | Xnor => {
                // Chain pairwise XORs through auxiliary variables, then tie
                // the output (inverted for XNOR).
                let mut accumulator = inputs[0];
                for &input in &inputs[1..] {
                    let next = solver.new_var();
                    self.encode_xor2(solver, next, accumulator, input);
                    accumulator = next;
                }
                if ty == Xor {
                    self.encode_equal(solver, output, accumulator);
                } else {
                    self.encode_not(solver, output, accumulator);
                }
            }
            Not => self.encode_not(solver, output, inputs[0]),
            Buf => self.encode_equal(solver, output, inputs[0]),
            Const0 => {
                solver.add_clause([out_neg]);
            }
            Const1 => {
                solver.add_clause([out_pos]);
            }
        }
    }

    /// Encodes `a ↔ b`.
    pub fn encode_equal<S: ClauseSink>(&self, solver: &mut S, a: Var, b: Var) {
        solver.add_clause([Lit::negative(a), Lit::positive(b)]);
        solver.add_clause([Lit::positive(a), Lit::negative(b)]);
    }

    /// Encodes `a ↔ ¬b`.
    pub fn encode_not<S: ClauseSink>(&self, solver: &mut S, a: Var, b: Var) {
        solver.add_clause([Lit::negative(a), Lit::negative(b)]);
        solver.add_clause([Lit::positive(a), Lit::positive(b)]);
    }

    /// Encodes `out ↔ a ⊕ b`.
    pub fn encode_xor2<S: ClauseSink>(&self, solver: &mut S, out: Var, a: Var, b: Var) {
        solver.add_clause([Lit::negative(out), Lit::positive(a), Lit::positive(b)]);
        solver.add_clause([Lit::negative(out), Lit::negative(a), Lit::negative(b)]);
        solver.add_clause([Lit::positive(out), Lit::negative(a), Lit::positive(b)]);
        solver.add_clause([Lit::positive(out), Lit::positive(a), Lit::negative(b)]);
    }

    /// Creates a fresh variable equal to the OR of `inputs` (true iff at
    /// least one input is true).
    pub fn or_reduce<S: ClauseSink>(&self, solver: &mut S, inputs: &[Var]) -> Var {
        let out = solver.new_var();
        for &input in inputs {
            solver.add_clause([Lit::positive(out), Lit::negative(input)]);
        }
        let mut clause: Vec<Lit> = inputs.iter().map(|&i| Lit::positive(i)).collect();
        clause.push(Lit::negative(out));
        solver.add_clause(clause);
        out
    }

    /// Builds a *miter* over two encodings of circuits with the same number
    /// of outputs: returns a fresh variable that is true iff at least one
    /// pair of corresponding outputs differs.
    ///
    /// # Panics
    ///
    /// Panics if the encodings have different output counts.
    pub fn miter<S: ClauseSink>(
        &self,
        solver: &mut S,
        a: &CircuitEncoding,
        b: &CircuitEncoding,
    ) -> Var {
        assert_eq!(
            a.outputs().len(),
            b.outputs().len(),
            "miter requires matching output counts"
        );
        let mut diffs = Vec::with_capacity(a.outputs().len());
        for (&oa, &ob) in a.outputs().iter().zip(b.outputs()) {
            let diff = solver.new_var();
            self.encode_xor2(solver, diff, oa, ob);
            diffs.push(diff);
        }
        self.or_reduce(solver, &diffs)
    }
}

/// Convenience: encode a circuit into a fresh solver and return both.
pub fn encode_standalone(circuit: &Circuit) -> (Solver, CircuitEncoding) {
    let mut solver = Solver::new();
    let encoding = Encoder::new().encode(&mut solver, circuit, &HashMap::new());
    (solver, encoding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;
    use kratt_netlist::sim::Simulator;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new("fa");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let cin = c.add_input("cin").unwrap();
        let s1 = c.add_gate(GateType::Xor, "s1", &[a, b]).unwrap();
        let sum = c.add_gate(GateType::Xor, "sum", &[s1, cin]).unwrap();
        let c1 = c.add_gate(GateType::And, "c1", &[a, b]).unwrap();
        let c2 = c.add_gate(GateType::And, "c2", &[s1, cin]).unwrap();
        let cout = c.add_gate(GateType::Or, "cout", &[c1, c2]).unwrap();
        c.mark_output(sum);
        c.mark_output(cout);
        c
    }

    /// For every input pattern, constrain the encoded inputs and check the
    /// solver agrees with the simulator on the outputs.
    fn check_encoding_matches_simulation(circuit: &Circuit) {
        let sim = Simulator::new(circuit).unwrap();
        let n = circuit.num_inputs();
        for pattern in 0u64..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
            let expected = sim.run(&bits).unwrap();
            let (mut solver, encoding) = encode_standalone(circuit);
            let assumptions: Vec<Lit> = encoding
                .inputs()
                .iter()
                .zip(&bits)
                .map(|(&(_, var), &value)| Lit::with_polarity(var, value))
                .collect();
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    for (i, &out_var) in encoding.outputs().iter().enumerate() {
                        assert_eq!(model.value(out_var), expected[i], "pattern {pattern:b}");
                    }
                }
                other => panic!("circuit encoding should be satisfiable, got {other:?}"),
            }
        }
    }

    #[test]
    fn full_adder_encoding_matches_simulation() {
        check_encoding_matches_simulation(&full_adder());
    }

    #[test]
    fn all_gate_types_match_simulation() {
        let mut c = Circuit::new("zoo");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("d").unwrap();
        let g1 = c.add_gate(GateType::Nand, "g1", &[a, b, d]).unwrap();
        let g2 = c.add_gate(GateType::Nor, "g2", &[a, b]).unwrap();
        let g3 = c.add_gate(GateType::Xnor, "g3", &[g1, g2, d]).unwrap();
        let g4 = c.add_gate(GateType::Not, "g4", &[g3]).unwrap();
        let g5 = c.add_gate(GateType::Buf, "g5", &[g4]).unwrap();
        let one = c.add_gate(GateType::Const1, "one", &[]).unwrap();
        let g6 = c.add_gate(GateType::Xor, "g6", &[g5, one]).unwrap();
        let zero = c.add_gate(GateType::Const0, "zero", &[]).unwrap();
        let g7 = c.add_gate(GateType::Or, "g7", &[g6, zero, g2]).unwrap();
        c.mark_output(g7);
        c.mark_output(g3);
        check_encoding_matches_simulation(&c);
    }

    #[test]
    fn shared_inputs_build_an_equivalence_miter() {
        // Two structurally different but equivalent circuits: a XOR b vs
        // (a AND NOT b) OR (NOT a AND b). Their miter must be UNSAT.
        let mut x = Circuit::new("xor_direct");
        let a = x.add_input("a").unwrap();
        let b = x.add_input("b").unwrap();
        let o = x.add_gate(GateType::Xor, "o", &[a, b]).unwrap();
        x.mark_output(o);

        let mut y = Circuit::new("xor_sop");
        let a = y.add_input("a").unwrap();
        let b = y.add_input("b").unwrap();
        let na = y.add_gate(GateType::Not, "na", &[a]).unwrap();
        let nb = y.add_gate(GateType::Not, "nb", &[b]).unwrap();
        let t1 = y.add_gate(GateType::And, "t1", &[a, nb]).unwrap();
        let t2 = y.add_gate(GateType::And, "t2", &[na, b]).unwrap();
        let o = y.add_gate(GateType::Or, "o2", &[t1, t2]).unwrap();
        y.mark_output(o);

        let encoder = Encoder::new();
        let mut solver = Solver::new();
        let enc_x = encoder.encode(&mut solver, &x, &HashMap::new());
        let shared: HashMap<String, Var> = enc_x.inputs().iter().cloned().collect();
        let enc_y = encoder.encode(&mut solver, &y, &shared);
        let miter = encoder.miter(&mut solver, &enc_x, &enc_y);
        solver.add_clause([Lit::positive(miter)]);
        assert!(
            solver.solve().is_unsat(),
            "equivalent circuits must have UNSAT miter"
        );

        // A non-equivalent pair must have a SAT miter.
        let mut z = Circuit::new("and2");
        let a = z.add_input("a").unwrap();
        let b = z.add_input("b").unwrap();
        let o = z.add_gate(GateType::And, "o3", &[a, b]).unwrap();
        z.mark_output(o);
        let mut solver = Solver::new();
        let enc_x = encoder.encode(&mut solver, &x, &HashMap::new());
        let shared: HashMap<String, Var> = enc_x.inputs().iter().cloned().collect();
        let enc_z = encoder.encode(&mut solver, &z, &shared);
        let miter = encoder.miter(&mut solver, &enc_x, &enc_z);
        solver.add_clause([Lit::positive(miter)]);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn or_reduce_is_true_iff_any_input_true() {
        let mut solver = Solver::new();
        let inputs: Vec<Var> = (0..3).map(|_| solver.new_var()).collect();
        let out = Encoder::new().or_reduce(&mut solver, &inputs);
        // All inputs false forces out false.
        let mut assumptions: Vec<Lit> = inputs.iter().map(|&v| Lit::negative(v)).collect();
        assumptions.push(Lit::positive(out));
        assert!(solver.solve_with_assumptions(&assumptions).is_unsat());
        // One input true forces out true.
        let assumptions = vec![Lit::positive(inputs[1]), Lit::negative(out)];
        assert!(solver.solve_with_assumptions(&assumptions).is_unsat());
    }

    /// For every input pattern, constrain the AIG encoding's inputs and
    /// check the solver agrees with the circuit simulator on the outputs.
    fn check_aig_encoding_matches_simulation(circuit: &Circuit) {
        let sim = Simulator::new(circuit).unwrap();
        let aig = Aig::from_circuit(circuit).unwrap();
        let n = circuit.num_inputs();
        let mut solver = Solver::new();
        let encoding = Encoder::new().encode_aig(&mut solver, &aig, &HashMap::new());
        for pattern in 0u64..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
            let expected = sim.run(&bits).unwrap();
            let assumptions: Vec<Lit> = encoding
                .inputs()
                .iter()
                .zip(&bits)
                .map(|(&(_, var), &value)| Lit::with_polarity(var, value))
                .collect();
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    for (i, &out_lit) in encoding.outputs().iter().enumerate() {
                        assert_eq!(
                            model.lit_is_true(out_lit),
                            expected[i],
                            "pattern {pattern:b}"
                        );
                    }
                }
                other => panic!("AIG encoding should be satisfiable, got {other:?}"),
            }
        }
    }

    #[test]
    fn aig_encoding_matches_simulation_on_the_gate_zoo() {
        check_aig_encoding_matches_simulation(&full_adder());
        let mut c = Circuit::new("zoo");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("d").unwrap();
        let g1 = c.add_gate(GateType::Nand, "g1", &[a, b, d]).unwrap();
        let g2 = c.add_gate(GateType::Nor, "g2", &[a, b]).unwrap();
        let g3 = c.add_gate(GateType::Xnor, "g3", &[g1, g2, d]).unwrap();
        let g4 = c.add_gate(GateType::Not, "g4", &[g3]).unwrap();
        let one = c.add_gate(GateType::Const1, "one", &[]).unwrap();
        let g5 = c.add_gate(GateType::Xor, "g5", &[g4, one]).unwrap();
        let g6 = c.add_gate(GateType::Or, "g6", &[g5, g2, a]).unwrap();
        c.mark_output(g6);
        c.mark_output(g3);
        c.mark_output(one);
        check_aig_encoding_matches_simulation(&c);
    }

    #[test]
    fn aig_encoding_is_smaller_than_the_per_gate_encoding() {
        // A netlist with inverters, buffers, a multi-input AND and dangling
        // logic — everything the AIG image elides.
        let mut c = Circuit::new("shrink");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("d").unwrap();
        let na = c.add_gate(GateType::Not, "na", &[a]).unwrap();
        let buf = c.add_gate(GateType::Buf, "buf", &[na]).unwrap();
        let wide = c.add_gate(GateType::And, "wide", &[buf, b, d]).unwrap();
        let x = c.add_gate(GateType::Xor, "x", &[wide, a]).unwrap();
        let _dangling = c.add_gate(GateType::Or, "dang", &[b, d]).unwrap();
        c.mark_output(x);

        let mut gate_cnf = crate::cnf::Cnf::new();
        Encoder::new().encode(&mut gate_cnf, &c, &HashMap::new());
        let aig = Aig::from_circuit(&c).unwrap();
        let mut aig_cnf = crate::cnf::Cnf::new();
        Encoder::new().encode_aig(&mut aig_cnf, &aig, &HashMap::new());
        assert!(
            aig_cnf.num_vars() < gate_cnf.num_vars(),
            "{} vs {}",
            aig_cnf.num_vars(),
            gate_cnf.num_vars()
        );
        assert!(aig_cnf.num_clauses() < gate_cnf.num_clauses());
        // The k-ary AND collapse keeps the wide conjunction at one variable
        // and the XOR shape is recognised: inputs + AND root + XOR root.
        assert_eq!(aig_cnf.num_vars(), 3 + 2);
    }

    #[test]
    fn aig_miter_shares_logic_between_the_halves() {
        let mut x = Circuit::new("xor_direct");
        let a = x.add_input("a").unwrap();
        let b = x.add_input("b").unwrap();
        let o = x.add_gate(GateType::Xor, "o", &[a, b]).unwrap();
        x.mark_output(o);

        let mut y = Circuit::new("xor_sop");
        let a = y.add_input("a").unwrap();
        let b = y.add_input("b").unwrap();
        let na = y.add_gate(GateType::Not, "na", &[a]).unwrap();
        let nb = y.add_gate(GateType::Not, "nb", &[b]).unwrap();
        let t1 = y.add_gate(GateType::And, "t1", &[a, nb]).unwrap();
        let t2 = y.add_gate(GateType::And, "t2", &[na, b]).unwrap();
        let o = y.add_gate(GateType::Or, "o2", &[t1, t2]).unwrap();
        y.mark_output(o);

        // Equivalent halves: the AIG miter is UNSAT.
        let mut aig = Aig::new("miter");
        let outs_x = aig.add_circuit(&x).unwrap();
        let outs_y = aig.add_circuit(&y).unwrap();
        let miter = aig.miter(&outs_x, &outs_y);
        let mut miter_aig = aig.clone();
        miter_aig.add_output("diff", miter);
        let mut solver = Solver::new();
        let enc = Encoder::new().encode_aig(&mut solver, &miter_aig, &HashMap::new());
        let diff = *enc.outputs().last().unwrap();
        solver.add_clause([diff]);
        assert!(solver.solve().is_unsat());

        // A non-equivalent half makes it SAT.
        let mut z = Circuit::new("and2");
        let a = z.add_input("a").unwrap();
        let b = z.add_input("b").unwrap();
        let o = z.add_gate(GateType::And, "o3", &[a, b]).unwrap();
        z.mark_output(o);
        let mut aig = Aig::new("miter2");
        let outs_x = aig.add_circuit(&x).unwrap();
        let outs_z = aig.add_circuit(&z).unwrap();
        let miter = aig.miter(&outs_x, &outs_z);
        aig.add_output("diff", miter);
        let mut solver = Solver::new();
        let enc = Encoder::new().encode_aig(&mut solver, &aig, &HashMap::new());
        let diff = *enc.outputs().last().unwrap();
        solver.add_clause([diff]);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn aig_encoding_handles_constant_outputs() {
        let mut aig = Aig::new("consts");
        let a = aig.add_input("a");
        aig.add_output("t", kratt_netlist::AigLit::TRUE);
        aig.add_output("f", kratt_netlist::AigLit::FALSE);
        aig.add_output("pass", a.complement());
        let mut solver = Solver::new();
        let enc = Encoder::new().encode_aig(&mut solver, &aig, &HashMap::new());
        match solver.solve() {
            SatResult::Sat(model) => {
                assert!(model.lit_is_true(enc.outputs()[0]));
                assert!(!model.lit_is_true(enc.outputs()[1]));
                let a_var = enc.input_var("a").unwrap();
                assert_eq!(model.lit_is_true(enc.outputs()[2]), !model.value(a_var));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    proptest::proptest! {
        /// Random circuits: the AIG encoding agrees bit-for-bit with the
        /// packed AIG simulation (and hence with the circuit simulator, per
        /// the netlist crate's own round-trip property).
        #[test]
        fn prop_aig_encoding_agrees_with_simulation(seed in 0u64..100) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(77));
            let mut c = Circuit::new(format!("rand{seed}"));
            let n_inputs = 5usize;
            let mut nets: Vec<NetId> =
                (0..n_inputs).map(|i| c.add_input(format!("i{i}")).unwrap()).collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
            ];
            for g in 0..15 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let arity = if matches!(ty, GateType::Not | GateType::Buf) {
                    1
                } else {
                    rng.gen_range(2..4usize)
                };
                let ins: Vec<NetId> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
                nets.push(c.add_gate(ty, format!("g{g}"), &ins).unwrap());
            }
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[n_inputs + 3]);

            let sim = Simulator::new(&c).unwrap();
            let aig = Aig::from_circuit(&c).unwrap();
            let mut solver = Solver::new();
            let encoding = Encoder::new().encode_aig(&mut solver, &aig, &HashMap::new());
            for _ in 0..8 {
                let bits: Vec<bool> = (0..n_inputs).map(|_| rng.gen_bool(0.5)).collect();
                let expected = sim.run(&bits).unwrap();
                let assumptions: Vec<Lit> = encoding
                    .inputs()
                    .iter()
                    .zip(&bits)
                    .map(|(&(_, var), &value)| Lit::with_polarity(var, value))
                    .collect();
                match solver.solve_with_assumptions(&assumptions) {
                    SatResult::Sat(model) => {
                        for (i, &out_lit) in encoding.outputs().iter().enumerate() {
                            proptest::prop_assert_eq!(model.lit_is_true(out_lit), expected[i]);
                        }
                    }
                    other => {
                        return Err(proptest::test_runner::TestCaseError::fail(
                            format!("expected SAT, got {other:?}"),
                        ));
                    }
                }
            }
        }
    }

    proptest::proptest! {
        /// Random circuits: the Tseitin encoding agrees with the simulator on
        /// random input patterns.
        #[test]
        fn prop_encoding_agrees_with_simulation(seed in 0u64..100) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut c = Circuit::new(format!("rand{seed}"));
            let n_inputs = 5usize;
            let mut nets: Vec<NetId> =
                (0..n_inputs).map(|i| c.add_input(format!("i{i}")).unwrap()).collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
            ];
            for g in 0..15 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let arity = if matches!(ty, GateType::Not | GateType::Buf) {
                    1
                } else {
                    rng.gen_range(2..4usize)
                };
                let ins: Vec<NetId> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
                let out = c.add_gate(ty, format!("g{g}"), &ins).unwrap();
                nets.push(out);
            }
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[n_inputs + 3]);

            let sim = Simulator::new(&c).unwrap();
            let (mut solver, encoding) = encode_standalone(&c);
            for _ in 0..8 {
                let bits: Vec<bool> = (0..n_inputs).map(|_| rng.gen_bool(0.5)).collect();
                let expected = sim.run(&bits).unwrap();
                let assumptions: Vec<Lit> = encoding
                    .inputs()
                    .iter()
                    .zip(&bits)
                    .map(|(&(_, var), &value)| Lit::with_polarity(var, value))
                    .collect();
                match solver.solve_with_assumptions(&assumptions) {
                    SatResult::Sat(model) => {
                        for (i, &out_var) in encoding.outputs().iter().enumerate() {
                            proptest::prop_assert_eq!(model.value(out_var), expected[i]);
                        }
                    }
                    other => {
                        return Err(proptest::test_runner::TestCaseError::fail(
                            format!("expected SAT, got {other:?}"),
                        ));
                    }
                }
            }
        }
    }
}
