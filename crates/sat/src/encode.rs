//! Tseitin encoding of gate-level circuits into solver clauses.
//!
//! Every net of the circuit is mapped to one solver variable; every gate is
//! translated into the equivalence clauses between its output variable and
//! the Boolean function of its input variables. Primary-input variables can
//! be *shared* with previously encoded circuits, which is how miters (two
//! copies of a locked circuit sharing primary inputs but not key inputs, the
//! heart of the SAT-based attack) and equivalence checks are built.

use crate::cnf::ClauseSink;
use crate::lit::{Lit, Var};
use crate::solver::Solver;
use kratt_netlist::{Circuit, GateType, NetId};
use std::collections::HashMap;

/// The result of encoding one circuit into a [`Solver`].
#[derive(Debug, Clone)]
pub struct CircuitEncoding {
    /// Variable assigned to each net, indexed by [`NetId::index`].
    vars: Vec<Var>,
    /// `(name, var)` for each primary input, in circuit input order.
    inputs: Vec<(String, Var)>,
    /// Output variables in circuit output order.
    outputs: Vec<Var>,
}

impl CircuitEncoding {
    /// The solver variable carrying the value of `net`.
    pub fn var_of(&self, net: NetId) -> Var {
        self.vars[net.index()]
    }

    /// `(name, variable)` pairs for the primary inputs, in circuit order.
    pub fn inputs(&self) -> &[(String, Var)] {
        &self.inputs
    }

    /// The variable of the primary input with the given name.
    pub fn input_var(&self, name: &str) -> Option<Var> {
        self.inputs.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Output variables, in circuit output order.
    pub fn outputs(&self) -> &[Var] {
        &self.outputs
    }
}

/// Encoder of circuits into a [`Solver`]. The encoder is stateless; it is a
/// struct (rather than free functions) so that the gate-encoding helpers can
/// be discovered together in the documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Encoder;

impl Encoder {
    /// Creates an encoder.
    pub fn new() -> Self {
        Encoder
    }

    /// Encodes `circuit` into `solver` (any [`ClauseSink`]: a live
    /// [`Solver`] or a [`Cnf`](crate::cnf::Cnf) headed for DIMACS export).
    ///
    /// `shared_inputs` maps primary-input *names* to already existing solver
    /// variables; inputs found in the map reuse that variable instead of
    /// getting a fresh one. All other nets receive fresh variables.
    pub fn encode<S: ClauseSink>(
        &self,
        solver: &mut S,
        circuit: &Circuit,
        shared_inputs: &HashMap<String, Var>,
    ) -> CircuitEncoding {
        let mut vars: Vec<Option<Var>> = vec![None; circuit.num_nets()];
        let mut inputs = Vec::with_capacity(circuit.num_inputs());
        for &pi in circuit.inputs() {
            let name = circuit.net_name(pi).to_string();
            let var = shared_inputs
                .get(&name)
                .copied()
                .unwrap_or_else(|| solver.new_var());
            vars[pi.index()] = Some(var);
            inputs.push((name, var));
        }
        for net in circuit.nets() {
            if vars[net.index()].is_none() {
                vars[net.index()] = Some(solver.new_var());
            }
        }
        let vars: Vec<Var> = vars
            .into_iter()
            .map(|v| v.expect("assigned above"))
            .collect();

        for (_, gate) in circuit.gates() {
            let output = vars[gate.output.index()];
            let gate_inputs: Vec<Var> = gate.inputs.iter().map(|n| vars[n.index()]).collect();
            self.encode_gate(solver, gate.ty, output, &gate_inputs);
        }

        let outputs = circuit.outputs().iter().map(|o| vars[o.index()]).collect();
        CircuitEncoding {
            vars,
            inputs,
            outputs,
        }
    }

    /// Encodes `output ↔ ty(inputs)`.
    pub fn encode_gate<S: ClauseSink>(
        &self,
        solver: &mut S,
        ty: GateType,
        output: Var,
        inputs: &[Var],
    ) {
        use GateType::*;
        let out_pos = Lit::positive(output);
        let out_neg = Lit::negative(output);
        match ty {
            And | Nand => {
                // For AND: out -> in_i, and (all in_i) -> out.
                // For NAND the output literal polarity flips.
                let (o_true, o_false) = if ty == And {
                    (out_pos, out_neg)
                } else {
                    (out_neg, out_pos)
                };
                for &input in inputs {
                    solver.add_clause([o_false, Lit::positive(input)]);
                }
                let mut clause: Vec<Lit> = inputs.iter().map(|&i| Lit::negative(i)).collect();
                clause.push(o_true);
                solver.add_clause(clause);
            }
            Or | Nor => {
                let (o_true, o_false) = if ty == Or {
                    (out_pos, out_neg)
                } else {
                    (out_neg, out_pos)
                };
                for &input in inputs {
                    solver.add_clause([o_true, Lit::negative(input)]);
                }
                let mut clause: Vec<Lit> = inputs.iter().map(|&i| Lit::positive(i)).collect();
                clause.push(o_false);
                solver.add_clause(clause);
            }
            Xor | Xnor => {
                // Chain pairwise XORs through auxiliary variables, then tie
                // the output (inverted for XNOR).
                let mut accumulator = inputs[0];
                for &input in &inputs[1..] {
                    let next = solver.new_var();
                    self.encode_xor2(solver, next, accumulator, input);
                    accumulator = next;
                }
                if ty == Xor {
                    self.encode_equal(solver, output, accumulator);
                } else {
                    self.encode_not(solver, output, accumulator);
                }
            }
            Not => self.encode_not(solver, output, inputs[0]),
            Buf => self.encode_equal(solver, output, inputs[0]),
            Const0 => {
                solver.add_clause([out_neg]);
            }
            Const1 => {
                solver.add_clause([out_pos]);
            }
        }
    }

    /// Encodes `a ↔ b`.
    pub fn encode_equal<S: ClauseSink>(&self, solver: &mut S, a: Var, b: Var) {
        solver.add_clause([Lit::negative(a), Lit::positive(b)]);
        solver.add_clause([Lit::positive(a), Lit::negative(b)]);
    }

    /// Encodes `a ↔ ¬b`.
    pub fn encode_not<S: ClauseSink>(&self, solver: &mut S, a: Var, b: Var) {
        solver.add_clause([Lit::negative(a), Lit::negative(b)]);
        solver.add_clause([Lit::positive(a), Lit::positive(b)]);
    }

    /// Encodes `out ↔ a ⊕ b`.
    pub fn encode_xor2<S: ClauseSink>(&self, solver: &mut S, out: Var, a: Var, b: Var) {
        solver.add_clause([Lit::negative(out), Lit::positive(a), Lit::positive(b)]);
        solver.add_clause([Lit::negative(out), Lit::negative(a), Lit::negative(b)]);
        solver.add_clause([Lit::positive(out), Lit::negative(a), Lit::positive(b)]);
        solver.add_clause([Lit::positive(out), Lit::positive(a), Lit::negative(b)]);
    }

    /// Creates a fresh variable equal to the OR of `inputs` (true iff at
    /// least one input is true).
    pub fn or_reduce<S: ClauseSink>(&self, solver: &mut S, inputs: &[Var]) -> Var {
        let out = solver.new_var();
        for &input in inputs {
            solver.add_clause([Lit::positive(out), Lit::negative(input)]);
        }
        let mut clause: Vec<Lit> = inputs.iter().map(|&i| Lit::positive(i)).collect();
        clause.push(Lit::negative(out));
        solver.add_clause(clause);
        out
    }

    /// Builds a *miter* over two encodings of circuits with the same number
    /// of outputs: returns a fresh variable that is true iff at least one
    /// pair of corresponding outputs differs.
    ///
    /// # Panics
    ///
    /// Panics if the encodings have different output counts.
    pub fn miter<S: ClauseSink>(
        &self,
        solver: &mut S,
        a: &CircuitEncoding,
        b: &CircuitEncoding,
    ) -> Var {
        assert_eq!(
            a.outputs().len(),
            b.outputs().len(),
            "miter requires matching output counts"
        );
        let mut diffs = Vec::with_capacity(a.outputs().len());
        for (&oa, &ob) in a.outputs().iter().zip(b.outputs()) {
            let diff = solver.new_var();
            self.encode_xor2(solver, diff, oa, ob);
            diffs.push(diff);
        }
        self.or_reduce(solver, &diffs)
    }
}

/// Convenience: encode a circuit into a fresh solver and return both.
pub fn encode_standalone(circuit: &Circuit) -> (Solver, CircuitEncoding) {
    let mut solver = Solver::new();
    let encoding = Encoder::new().encode(&mut solver, circuit, &HashMap::new());
    (solver, encoding)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;
    use kratt_netlist::sim::Simulator;

    fn full_adder() -> Circuit {
        let mut c = Circuit::new("fa");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let cin = c.add_input("cin").unwrap();
        let s1 = c.add_gate(GateType::Xor, "s1", &[a, b]).unwrap();
        let sum = c.add_gate(GateType::Xor, "sum", &[s1, cin]).unwrap();
        let c1 = c.add_gate(GateType::And, "c1", &[a, b]).unwrap();
        let c2 = c.add_gate(GateType::And, "c2", &[s1, cin]).unwrap();
        let cout = c.add_gate(GateType::Or, "cout", &[c1, c2]).unwrap();
        c.mark_output(sum);
        c.mark_output(cout);
        c
    }

    /// For every input pattern, constrain the encoded inputs and check the
    /// solver agrees with the simulator on the outputs.
    fn check_encoding_matches_simulation(circuit: &Circuit) {
        let sim = Simulator::new(circuit).unwrap();
        let n = circuit.num_inputs();
        for pattern in 0u64..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
            let expected = sim.run(&bits).unwrap();
            let (mut solver, encoding) = encode_standalone(circuit);
            let assumptions: Vec<Lit> = encoding
                .inputs()
                .iter()
                .zip(&bits)
                .map(|(&(_, var), &value)| Lit::with_polarity(var, value))
                .collect();
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    for (i, &out_var) in encoding.outputs().iter().enumerate() {
                        assert_eq!(model.value(out_var), expected[i], "pattern {pattern:b}");
                    }
                }
                other => panic!("circuit encoding should be satisfiable, got {other:?}"),
            }
        }
    }

    #[test]
    fn full_adder_encoding_matches_simulation() {
        check_encoding_matches_simulation(&full_adder());
    }

    #[test]
    fn all_gate_types_match_simulation() {
        let mut c = Circuit::new("zoo");
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("d").unwrap();
        let g1 = c.add_gate(GateType::Nand, "g1", &[a, b, d]).unwrap();
        let g2 = c.add_gate(GateType::Nor, "g2", &[a, b]).unwrap();
        let g3 = c.add_gate(GateType::Xnor, "g3", &[g1, g2, d]).unwrap();
        let g4 = c.add_gate(GateType::Not, "g4", &[g3]).unwrap();
        let g5 = c.add_gate(GateType::Buf, "g5", &[g4]).unwrap();
        let one = c.add_gate(GateType::Const1, "one", &[]).unwrap();
        let g6 = c.add_gate(GateType::Xor, "g6", &[g5, one]).unwrap();
        let zero = c.add_gate(GateType::Const0, "zero", &[]).unwrap();
        let g7 = c.add_gate(GateType::Or, "g7", &[g6, zero, g2]).unwrap();
        c.mark_output(g7);
        c.mark_output(g3);
        check_encoding_matches_simulation(&c);
    }

    #[test]
    fn shared_inputs_build_an_equivalence_miter() {
        // Two structurally different but equivalent circuits: a XOR b vs
        // (a AND NOT b) OR (NOT a AND b). Their miter must be UNSAT.
        let mut x = Circuit::new("xor_direct");
        let a = x.add_input("a").unwrap();
        let b = x.add_input("b").unwrap();
        let o = x.add_gate(GateType::Xor, "o", &[a, b]).unwrap();
        x.mark_output(o);

        let mut y = Circuit::new("xor_sop");
        let a = y.add_input("a").unwrap();
        let b = y.add_input("b").unwrap();
        let na = y.add_gate(GateType::Not, "na", &[a]).unwrap();
        let nb = y.add_gate(GateType::Not, "nb", &[b]).unwrap();
        let t1 = y.add_gate(GateType::And, "t1", &[a, nb]).unwrap();
        let t2 = y.add_gate(GateType::And, "t2", &[na, b]).unwrap();
        let o = y.add_gate(GateType::Or, "o2", &[t1, t2]).unwrap();
        y.mark_output(o);

        let encoder = Encoder::new();
        let mut solver = Solver::new();
        let enc_x = encoder.encode(&mut solver, &x, &HashMap::new());
        let shared: HashMap<String, Var> = enc_x.inputs().iter().cloned().collect();
        let enc_y = encoder.encode(&mut solver, &y, &shared);
        let miter = encoder.miter(&mut solver, &enc_x, &enc_y);
        solver.add_clause([Lit::positive(miter)]);
        assert!(
            solver.solve().is_unsat(),
            "equivalent circuits must have UNSAT miter"
        );

        // A non-equivalent pair must have a SAT miter.
        let mut z = Circuit::new("and2");
        let a = z.add_input("a").unwrap();
        let b = z.add_input("b").unwrap();
        let o = z.add_gate(GateType::And, "o3", &[a, b]).unwrap();
        z.mark_output(o);
        let mut solver = Solver::new();
        let enc_x = encoder.encode(&mut solver, &x, &HashMap::new());
        let shared: HashMap<String, Var> = enc_x.inputs().iter().cloned().collect();
        let enc_z = encoder.encode(&mut solver, &z, &shared);
        let miter = encoder.miter(&mut solver, &enc_x, &enc_z);
        solver.add_clause([Lit::positive(miter)]);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn or_reduce_is_true_iff_any_input_true() {
        let mut solver = Solver::new();
        let inputs: Vec<Var> = (0..3).map(|_| solver.new_var()).collect();
        let out = Encoder::new().or_reduce(&mut solver, &inputs);
        // All inputs false forces out false.
        let mut assumptions: Vec<Lit> = inputs.iter().map(|&v| Lit::negative(v)).collect();
        assumptions.push(Lit::positive(out));
        assert!(solver.solve_with_assumptions(&assumptions).is_unsat());
        // One input true forces out true.
        let assumptions = vec![Lit::positive(inputs[1]), Lit::negative(out)];
        assert!(solver.solve_with_assumptions(&assumptions).is_unsat());
    }

    proptest::proptest! {
        /// Random circuits: the Tseitin encoding agrees with the simulator on
        /// random input patterns.
        #[test]
        fn prop_encoding_agrees_with_simulation(seed in 0u64..100) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut c = Circuit::new(format!("rand{seed}"));
            let n_inputs = 5usize;
            let mut nets: Vec<NetId> =
                (0..n_inputs).map(|i| c.add_input(format!("i{i}")).unwrap()).collect();
            let kinds = [
                GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
            ];
            for g in 0..15 {
                let ty = kinds[rng.gen_range(0..kinds.len())];
                let arity = if matches!(ty, GateType::Not | GateType::Buf) {
                    1
                } else {
                    rng.gen_range(2..4usize)
                };
                let ins: Vec<NetId> =
                    (0..arity).map(|_| nets[rng.gen_range(0..nets.len())]).collect();
                let out = c.add_gate(ty, format!("g{g}"), &ins).unwrap();
                nets.push(out);
            }
            c.mark_output(*nets.last().unwrap());
            c.mark_output(nets[n_inputs + 3]);

            let sim = Simulator::new(&c).unwrap();
            let (mut solver, encoding) = encode_standalone(&c);
            for _ in 0..8 {
                let bits: Vec<bool> = (0..n_inputs).map(|_| rng.gen_bool(0.5)).collect();
                let expected = sim.run(&bits).unwrap();
                let assumptions: Vec<Lit> = encoding
                    .inputs()
                    .iter()
                    .zip(&bits)
                    .map(|(&(_, var), &value)| Lit::with_polarity(var, value))
                    .collect();
                match solver.solve_with_assumptions(&assumptions) {
                    SatResult::Sat(model) => {
                        for (i, &out_var) in encoding.outputs().iter().enumerate() {
                            proptest::prop_assert_eq!(model.value(out_var), expected[i]);
                        }
                    }
                    other => {
                        return Err(proptest::test_runner::TestCaseError::fail(
                            format!("expected SAT, got {other:?}"),
                        ));
                    }
                }
            }
        }
    }
}
