//! A from-scratch CDCL SAT solver plus circuit-to-CNF encoding.
//!
//! The KRATT paper drives two reasoning engines: the CryptoMiniSat SAT solver
//! and the DepQBF QBF solver. This crate is the reproduction's replacement for
//! the former (and the foundation the 2QBF engine in `kratt-qbf` is built on):
//!
//! * [`Lit`], [`Var`] — literal/variable types.
//! * [`Solver`] — a conflict-driven clause-learning solver with two-watched
//!   literals, 1-UIP learning, VSIDS + phase saving, Luby restarts and
//!   LBD-based learnt-clause reduction. It supports incremental solving under
//!   assumptions and configurable conflict/time budgets (so the oracle-guided
//!   baseline attacks can "time out" exactly as in the paper's Table III).
//! * [`encode`] — Tseitin transformation of [`kratt_netlist::Circuit`]s into
//!   solver clauses, with support for sharing variables across encodings
//!   (the building block for miters, the SAT attack and equivalence checks).
//! * [`cnf`] — standalone [`Cnf`] formulas, the [`ClauseSink`] abstraction the
//!   encoder targets, and DIMACS reading/writing so instances can be exchanged
//!   with external solvers such as CryptoMiniSat, exactly as the original tool
//!   does.
//!
//! # Example
//!
//! ```
//! use kratt_sat::{Solver, Lit, SatResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! // (a OR b) AND (NOT a OR b) forces b = true.
//! solver.add_clause([Lit::positive(a), Lit::positive(b)]);
//! solver.add_clause([Lit::negative(a), Lit::positive(b)]);
//! match solver.solve() {
//!     kratt_sat::SatResult::Sat(model) => assert!(model.value(b)),
//!     other => panic!("expected SAT, got {other:?}"),
//! }
//! ```

pub mod cnf;
pub mod encode;
mod heap;
pub mod lit;
pub mod solver;

pub use cnf::{ClauseSink, Cnf, ParseDimacsError};
pub use encode::{AigEncoding, CircuitEncoding, Encoder};
pub use lit::{Lit, Var};
pub use solver::{
    cancel_requested, CancelFlag, Model, SatResult, Solver, SolverConfig, SolverStats,
};
