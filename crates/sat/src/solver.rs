//! A conflict-driven clause-learning (CDCL) SAT solver.
//!
//! The implementation follows the classic MiniSat architecture: two watched
//! literals per clause, first-UIP conflict analysis, VSIDS variable
//! activities with phase saving, Luby-sequence restarts and LBD-guided
//! learnt-clause database reduction. It additionally supports incremental
//! solving under assumptions and conflict/time budgets so that callers (the
//! oracle-guided baseline attacks) can observe well-defined "out of time"
//! outcomes.

use crate::heap::ActivityHeap;
use crate::lit::{Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cooperative cancellation token.
///
/// Cloned into every [`SolverConfig`] (and, higher up the stack, into the
/// QBF CEGAR and structural-analysis loops) that should stop when a sibling
/// finishes first. Setting the flag (`store(true, Ordering::Relaxed)`) makes
/// every in-flight `solve*` call return [`SatResult::Unknown`] at its next
/// budget check; relaxed ordering suffices because the flag only gates
/// wall-clock work, never data visibility.
pub type CancelFlag = Arc<AtomicBool>;

/// `true` when `flag` is present and has been raised.
#[inline]
pub fn cancel_requested(flag: &Option<CancelFlag>) -> bool {
    flag.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
}

/// Three-valued assignment of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

/// A satisfying assignment returned by [`Solver::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value assigned to `var` (unconstrained variables default to
    /// `false`).
    pub fn value(&self, var: Var) -> bool {
        self.values.get(var.index()).copied().unwrap_or(false)
    }

    /// Whether the literal is satisfied by this model.
    pub fn lit_is_true(&self, lit: Lit) -> bool {
        self.value(lit.var()) != lit.is_negative()
    }

    /// Number of variables covered by the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model is empty (a formula with no variables).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The configured conflict or time budget was exhausted first.
    Unknown,
}

impl SatResult {
    /// Returns the model if the result is SAT.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// `true` if the result is [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// `true` if the result is [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }
}

/// Tunable solver parameters and resource budgets.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Multiplicative decay applied to variable activities per conflict.
    pub var_decay: f64,
    /// Multiplicative decay applied to clause activities per conflict.
    pub clause_decay: f64,
    /// Conflicts allowed in the first restart interval (scaled by Luby).
    pub restart_base: u64,
    /// Baseline number of learnt clauses kept before database reduction.
    pub max_learnts_base: usize,
    /// Abort with [`SatResult::Unknown`] after this many conflicts.
    pub conflict_limit: Option<u64>,
    /// Abort with [`SatResult::Unknown`] after this much wall-clock time
    /// (measured from the start of each `solve*` call).
    pub time_limit: Option<Duration>,
    /// Abort with [`SatResult::Unknown`] at this absolute point in time.
    /// Unlike `time_limit` (which restarts per call) the deadline is shared
    /// across every incremental `solve*` call, which is how an attack's
    /// single wall-clock budget is threaded down cooperatively.
    pub deadline: Option<Instant>,
    /// Abort with [`SatResult::Unknown`] as soon as this shared flag is
    /// raised. Checked wherever the deadline is checked (call entry and
    /// the conflict loop), so a portfolio sibling that finishes first can
    /// stop this solver promptly without waiting for its budget.
    pub cancel: Option<CancelFlag>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_base: 100,
            max_learnts_base: 8000,
            conflict_limit: None,
            time_limit: None,
            deadline: None,
            cancel: None,
        }
    }
}

/// Counters describing the work a solver has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of conflicts analysed.
    pub conflicts: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Learnt clauses discarded by database reduction.
    pub removed_clauses: u64,
    /// Number of `solve*` calls served. Incremental callers (the CEGAR
    /// loops) make many calls against one solver; this counter makes the
    /// reuse visible in telemetry.
    pub solve_calls: u64,
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    lbd: u32,
    deleted: bool,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: usize,
    blocker: Lit,
}

/// The CDCL solver. See the [crate-level documentation](crate) for an
/// example.
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    stats: SolverStats,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    activity: Vec<f64>,
    heap: ActivityHeap,
    var_inc: f64,
    cla_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<Option<usize>>,
    level: Vec<u32>,
    qhead: usize,
    seen: Vec<bool>,
    ok: bool,
    learnt_count: usize,
}

enum SearchOutcome {
    Sat(Model),
    Unsat,
    Restart,
    Budget,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates a solver with default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            stats: SolverStats::default(),
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            activity: Vec::new(),
            heap: ActivityHeap::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            trail: Vec::new(),
            trail_lim: Vec::new(),
            reason: Vec::new(),
            level: Vec::new(),
            qhead: 0,
            seen: Vec::new(),
            ok: true,
            learnt_count: 0,
        }
    }

    /// Replaces the resource budgets (useful between incremental calls).
    pub fn set_budget(&mut self, conflict_limit: Option<u64>, time_limit: Option<Duration>) {
        self.config.conflict_limit = conflict_limit;
        self.config.time_limit = time_limit;
    }

    /// Replaces the absolute deadline shared by all subsequent `solve*`
    /// calls (see [`SolverConfig::deadline`]).
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.config.deadline = deadline;
    }

    /// Installs (or clears) the cooperative cancellation flag shared by all
    /// subsequent `solve*` calls (see [`SolverConfig::cancel`]).
    pub fn set_cancel(&mut self, cancel: Option<CancelFlag>) {
        self.config.cancel = cancel;
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original and learnt, excluding deleted ones).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let index = self.assigns.len();
        self.assigns.push(LBool::Undef);
        self.polarity.push(false);
        self.activity.push(0.0);
        self.reason.push(None);
        self.level.push(0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.grow_to(index + 1);
        self.heap.insert(index, &self.activity);
        Var(index as u32)
    }

    /// Adds a clause. Returns `false` if the clause (together with what has
    /// been added before) makes the formula trivially unsatisfiable.
    ///
    /// Must be called with the solver at decision level 0, which is always
    /// the case between `solve` calls.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was never created.
    pub fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        assert_eq!(
            self.decision_level(),
            0,
            "clauses must be added at decision level 0"
        );
        if !self.ok {
            return false;
        }
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for &lit in &clause {
            assert!(
                lit.var().index() < self.num_vars(),
                "literal uses unknown variable"
            );
        }
        clause.sort();
        clause.dedup();
        // Tautology or satisfied-at-level-0 clauses are dropped; false
        // literals at level 0 are removed.
        let mut simplified: Vec<Lit> = Vec::with_capacity(clause.len());
        for &lit in &clause {
            if clause.contains(&!lit) {
                return true; // tautology
            }
            match self.value_lit(lit) {
                LBool::True => return true,
                LBool::False => continue,
                LBool::Undef => simplified.push(lit),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(simplified, false, 0);
                true
            }
        }
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals. The solver
    /// remains usable afterwards: more clauses and variables can be added and
    /// `solve*` can be called again (incremental solving).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.stats.solve_calls += 1;
        if !self.ok {
            return SatResult::Unsat;
        }
        let per_call = self.config.time_limit.map(|limit| Instant::now() + limit);
        let deadline = match (per_call, self.config.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if deadline.map(|d| Instant::now() >= d).unwrap_or(false)
            || cancel_requested(&self.config.cancel)
        {
            return SatResult::Unknown;
        }
        let conflict_budget = self
            .config
            .conflict_limit
            .map(|limit| self.stats.conflicts + limit);
        let mut restarts = 0u64;
        loop {
            let interval = luby(2.0, restarts) * self.config.restart_base as f64;
            let outcome = self.search(interval as u64, assumptions, deadline, conflict_budget);
            self.cancel_until(0);
            match outcome {
                SearchOutcome::Sat(model) => return SatResult::Sat(model),
                SearchOutcome::Unsat => return SatResult::Unsat,
                SearchOutcome::Budget => return SatResult::Unknown,
                SearchOutcome::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                }
            }
        }
    }

    fn search(
        &mut self,
        conflicts_allowed: u64,
        assumptions: &[Lit],
        deadline: Option<Instant>,
        conflict_budget: Option<u64>,
    ) -> SearchOutcome {
        let mut local_conflicts = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                local_conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Unsat;
                }
                let (learnt, backtrack_level, lbd) = self.analyze(conflict);
                self.cancel_until(backtrack_level);
                self.record_learnt(learnt, lbd);
                self.decay_activities();
            } else {
                if let Some(budget) = conflict_budget {
                    if self.stats.conflicts >= budget {
                        return SearchOutcome::Budget;
                    }
                }
                if let Some(deadline) = deadline {
                    if self.stats.conflicts.is_multiple_of(32) && Instant::now() >= deadline {
                        return SearchOutcome::Budget;
                    }
                }
                // A relaxed atomic load is far cheaper than the clock, so
                // the cancellation flag is polled on every decision: losers
                // of a portfolio race stop within one propagation round.
                if cancel_requested(&self.config.cancel) {
                    return SearchOutcome::Budget;
                }
                if local_conflicts >= conflicts_allowed {
                    return SearchOutcome::Restart;
                }
                if self.learnt_count > self.max_learnts() {
                    self.reduce_learnts();
                }

                // Place assumptions before free decisions.
                let mut next_decision: Option<Lit> = None;
                while self.decision_level() < assumptions.len() {
                    let assumption = assumptions[self.decision_level()];
                    match self.value_lit(assumption) {
                        LBool::True => {
                            // Already satisfied: open a dummy level so the
                            // decision level keeps tracking the assumption
                            // index.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return SearchOutcome::Unsat,
                        LBool::Undef => {
                            next_decision = Some(assumption);
                            break;
                        }
                    }
                }
                let decision = match next_decision {
                    Some(lit) => lit,
                    None => match self.pick_branch_lit() {
                        Some(lit) => lit,
                        None => return SearchOutcome::Sat(self.extract_model()),
                    },
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                self.unchecked_enqueue(decision, None);
            }
        }
    }

    fn extract_model(&self) -> Model {
        Model {
            values: self
                .assigns
                .iter()
                .map(|&a| matches!(a, LBool::True))
                .collect(),
        }
    }

    fn max_learnts(&self) -> usize {
        self.config.max_learnts_base + (self.stats.conflicts / 3) as usize
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn value_lit(&self, lit: Lit) -> LBool {
        match self.assigns[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if lit.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        let var = lit.var().index();
        self.assigns[var] = if lit.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.level[var] = self.decision_level() as u32;
        self.reason[var] = reason;
        self.trail.push(lit);
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let propagated = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // `propagated` just became true, so `!propagated` became false.
            // Clauses watching `!propagated` live in `watches[propagated]`
            // (watch lists are indexed by the negation of the watched
            // literal, as in MiniSat).
            let false_lit = !propagated;
            // The list is compacted in place (read cursor `index`, write
            // cursor `keep`) instead of being rebuilt into a fresh Vec:
            // propagation is the solver's hottest loop and this keeps it
            // allocation-free. New watches discovered along the way go to
            // *other* lists (`!new_watch` is never `propagated`), so the
            // taken buffer is safe to reuse.
            let mut watchers = std::mem::take(&mut self.watches[propagated.code()]);
            let mut keep = 0usize;
            let mut conflict: Option<usize> = None;
            let mut index = 0;
            while index < watchers.len() {
                let watcher = watchers[index];
                index += 1;
                if conflict.is_some() {
                    watchers[keep] = watcher;
                    keep += 1;
                    continue;
                }
                if self.clauses[watcher.clause].deleted {
                    continue;
                }
                // Cheap check: if the blocker is already true the clause is
                // satisfied and the watch can stay.
                if self.value_lit(watcher.blocker) == LBool::True {
                    watchers[keep] = watcher;
                    keep += 1;
                    continue;
                }
                let clause_index = watcher.clause;
                let first = {
                    let clause = &mut self.clauses[clause_index];
                    // Ensure the false literal sits at position 1.
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                    clause.lits[0]
                };
                if first != watcher.blocker && self.value_lit(first) == LBool::True {
                    watchers[keep] = Watcher {
                        clause: clause_index,
                        blocker: first,
                    };
                    keep += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                {
                    let clause = &mut self.clauses[clause_index];
                    for k in 2..clause.lits.len() {
                        let candidate = clause.lits[k];
                        let candidate_false = match self.assigns[candidate.var().index()] {
                            LBool::Undef => false,
                            LBool::True => candidate.is_negative(),
                            LBool::False => candidate.is_positive(),
                        };
                        if !candidate_false {
                            clause.lits.swap(1, k);
                            moved = true;
                            break;
                        }
                    }
                }
                if moved {
                    let new_watch = self.clauses[clause_index].lits[1];
                    self.watches[(!new_watch).code()].push(Watcher {
                        clause: clause_index,
                        blocker: first,
                    });
                    continue;
                }
                // Clause is unit or conflicting.
                watchers[keep] = Watcher {
                    clause: clause_index,
                    blocker: first,
                };
                keep += 1;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(clause_index);
                    self.qhead = self.trail.len();
                } else {
                    self.unchecked_enqueue(first, Some(clause_index));
                }
            }
            watchers.truncate(keep);
            self.watches[propagated.code()] = watchers;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level and the clause LBD.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause_index = conflict;
        let mut trail_index = self.trail.len();

        loop {
            {
                if self.clauses[clause_index].learnt {
                    self.bump_clause_activity(clause_index);
                }
                let lits: Vec<Lit> = self.clauses[clause_index].lits.clone();
                let skip = usize::from(p.is_some());
                for &q in lits.iter().skip(skip) {
                    let var = q.var().index();
                    if !self.seen[var] && self.level[var] > 0 {
                        self.bump_var_activity(q.var());
                        self.seen[var] = true;
                        if self.level[var] as usize >= self.decision_level() {
                            counter += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                trail_index -= 1;
                if self.seen[self.trail[trail_index].var().index()] {
                    break;
                }
            }
            let pivot = self.trail[trail_index];
            p = Some(pivot);
            self.seen[pivot.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            clause_index = self.reason[pivot.var().index()]
                .expect("non-decision literal must have a reason clause");
        }
        learnt[0] = !p.expect("conflict analysis visits at least one literal");

        // Clear the `seen` flags of the remaining literals.
        for &lit in learnt.iter().skip(1) {
            self.seen[lit.var().index()] = false;
        }

        // Backtrack level: the highest level among the non-asserting lits.
        let (backtrack_level, lbd) = if learnt.len() == 1 {
            (0, 1)
        } else {
            let mut max_index = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_index].var().index()]
                {
                    max_index = i;
                }
            }
            learnt.swap(1, max_index);
            let mut levels: Vec<u32> = learnt.iter().map(|l| self.level[l.var().index()]).collect();
            levels.sort_unstable();
            levels.dedup();
            (
                self.level[learnt[1].var().index()] as usize,
                levels.len() as u32,
            )
        };
        (learnt, backtrack_level, lbd)
    }

    fn record_learnt(&mut self, learnt: Vec<Lit>, lbd: u32) {
        if learnt.len() == 1 {
            self.unchecked_enqueue(learnt[0], None);
        } else {
            let asserting = learnt[0];
            let clause_index = self.attach_clause(learnt, true, lbd);
            self.unchecked_enqueue(asserting, Some(clause_index));
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> usize {
        debug_assert!(lits.len() >= 2);
        let index = self.clauses.len();
        self.watches[(!lits[0]).code()].push(Watcher {
            clause: index,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watcher {
            clause: index,
            blocker: lits[0],
        });
        if learnt {
            self.learnt_count += 1;
            self.stats.learnt_clauses += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: self.cla_inc,
            lbd,
            deleted: false,
        });
        index
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let new_len = self.trail_lim[level];
        for index in (new_len..self.trail.len()).rev() {
            let lit = self.trail[index];
            let var = lit.var().index();
            self.polarity[var] = lit.is_positive();
            self.assigns[var] = LBool::Undef;
            self.reason[var] = None;
            if !self.heap.contains(var) {
                self.heap.insert(var, &self.activity);
            }
        }
        self.trail.truncate(new_len);
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn pick_branch_lit(&mut self) -> Option<Lit> {
        loop {
            let var = self.heap.pop_max(&self.activity)?;
            if self.assigns[var] == LBool::Undef {
                let polarity = self.polarity[var];
                return Some(Lit::with_polarity(Var(var as u32), polarity));
            }
        }
    }

    fn bump_var_activity(&mut self, var: Var) {
        let index = var.index();
        self.activity[index] += self.var_inc;
        if self.activity[index] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.decrease_key(index, &self.activity);
    }

    fn bump_clause_activity(&mut self, clause: usize) {
        self.clauses[clause].activity += self.cla_inc;
        if self.clauses[clause].activity > 1e20 {
            for c in &mut self.clauses {
                if c.learnt {
                    c.activity *= 1e-20;
                }
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay;
    }

    /// Discards roughly half of the learnt clauses, preferring to keep
    /// clauses with low LBD and high activity. Clauses currently used as
    /// reasons are kept.
    fn reduce_learnts(&mut self) {
        let locked: Vec<bool> = {
            let mut locked = vec![false; self.clauses.len()];
            for &reason in self.reason.iter().flatten() {
                locked[reason] = true;
            }
            locked
        };
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| {
                let c = &self.clauses[i];
                c.learnt && !c.deleted && !locked[i] && c.lits.len() > 2
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let ca = &self.clauses[a];
            let cb = &self.clauses[b];
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        let to_remove = candidates.len() / 2;
        for &index in candidates.iter().take(to_remove) {
            self.clauses[index].deleted = true;
            self.learnt_count -= 1;
            self.stats.removed_clauses += 1;
        }
        // Purge watchers of deleted clauses.
        for list in &mut self.watches {
            list.retain(|w| !self.clauses[w.clause].deleted);
        }
    }
}

/// The Luby restart sequence scaled by `y` (`y = 2` gives 1,1,2,1,1,2,4,...).
fn luby(y: f64, mut x: u64) -> f64 {
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    y.powi(seq as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], index: isize) -> Lit {
        if index > 0 {
            Lit::positive(solver_vars[(index - 1) as usize])
        } else {
            Lit::negative(solver_vars[(-index - 1) as usize])
        }
    }

    /// Brute-force reference solver for cross-checking.
    fn brute_force(num_vars: usize, clauses: &[Vec<isize>]) -> Option<Vec<bool>> {
        for assignment in 0u64..(1u64 << num_vars) {
            let values: Vec<bool> = (0..num_vars).map(|i| assignment >> i & 1 != 0).collect();
            let ok = clauses.iter().all(|clause| {
                clause.iter().any(|&l| {
                    let v = l.unsigned_abs() - 1;
                    if l > 0 {
                        values[v]
                    } else {
                        !values[v]
                    }
                })
            });
            if ok {
                return Some(values);
            }
        }
        None
    }

    fn build(num_vars: usize, clauses: &[Vec<isize>]) -> (Solver, Vec<Var>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..num_vars).map(|_| solver.new_var()).collect();
        for clause in clauses {
            solver.add_clause(clause.iter().map(|&l| lit(&vars, l)));
        }
        (solver, vars)
    }

    #[test]
    fn simple_sat_and_model() {
        let (mut solver, vars) = build(2, &[vec![1, 2], vec![-1, 2]]);
        match solver.solve() {
            SatResult::Sat(model) => assert!(model.value(vars[1])),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn simple_unsat() {
        let (mut solver, _) = build(1, &[vec![1], vec![-1]]);
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut solver = Solver::new();
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn unsat_xor_chain() {
        // x1 ^ x2, x2 ^ x3, x1 ^ x3 with odd parity constraints is UNSAT:
        // encode x1 != x2, x2 != x3, x1 != x3 (an odd cycle).
        let clauses = vec![
            vec![1, 2],
            vec![-1, -2],
            vec![2, 3],
            vec![-2, -3],
            vec![1, 3],
            vec![-1, -3],
        ];
        let (mut solver, _) = build(3, &clauses);
        assert!(solver.solve().is_unsat());
        assert!(brute_force(3, &clauses).is_none());
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_is_unsat() {
        // Variables p_{i,j}: pigeon i in hole j; i in 0..3, j in 0..2.
        // var index = i * 2 + j + 1.
        let mut clauses: Vec<Vec<isize>> = Vec::new();
        for i in 0..3isize {
            clauses.push(vec![i * 2 + 1, i * 2 + 2]);
        }
        for j in 0..2isize {
            for i1 in 0..3isize {
                for i2 in (i1 + 1)..3isize {
                    clauses.push(vec![-(i1 * 2 + j + 1), -(i2 * 2 + j + 1)]);
                }
            }
        }
        let (mut solver, _) = build(6, &clauses);
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn assumptions_are_respected_and_incremental() {
        let (mut solver, vars) = build(3, &[vec![1, 2, 3]]);
        // Under assumptions ¬1 ¬2 the only model sets 3.
        let result =
            solver.solve_with_assumptions(&[Lit::negative(vars[0]), Lit::negative(vars[1])]);
        match result {
            SatResult::Sat(model) => {
                assert!(!model.value(vars[0]));
                assert!(!model.value(vars[1]));
                assert!(model.value(vars[2]));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        // Now also assume ¬3: UNSAT under assumptions, but still SAT without.
        let result = solver.solve_with_assumptions(&[
            Lit::negative(vars[0]),
            Lit::negative(vars[1]),
            Lit::negative(vars[2]),
        ]);
        assert!(result.is_unsat());
        assert!(solver.solve().is_sat());
        // Incremental: add a clause forcing var0, re-solve.
        solver.add_clause([Lit::positive(vars[0])]);
        match solver.solve() {
            SatResult::Sat(model) => assert!(model.value(vars[0])),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_unit_clauses_detected_at_add_time() {
        let mut solver = Solver::new();
        let a = solver.new_var();
        assert!(solver.add_clause([Lit::positive(a)]));
        assert!(!solver.add_clause([Lit::negative(a)]));
        assert!(solver.solve().is_unsat());
    }

    #[test]
    fn budget_returns_unknown() {
        // A hard pigeonhole instance with a conflict budget of 1 should run
        // out of budget (or, if solved that fast, at least not crash).
        let mut clauses: Vec<Vec<isize>> = Vec::new();
        let pigeons = 7isize;
        let holes = 6isize;
        for i in 0..pigeons {
            clauses.push((0..holes).map(|j| i * holes + j + 1).collect());
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    clauses.push(vec![-(i1 * holes + j + 1), -(i2 * holes + j + 1)]);
                }
            }
        }
        let (mut solver, _) = build((pigeons * holes) as usize, &clauses);
        solver.set_budget(Some(5), None);
        let result = solver.solve();
        assert!(matches!(result, SatResult::Unknown | SatResult::Unsat));
        // With the budget lifted the instance is decided (UNSAT).
        solver.set_budget(None, None);
        assert!(solver.solve().is_unsat());
    }

    fn pigeonhole(pigeons: isize, holes: isize) -> (Solver, Vec<Var>) {
        let mut clauses: Vec<Vec<isize>> = Vec::new();
        for i in 0..pigeons {
            clauses.push((0..holes).map(|j| i * holes + j + 1).collect());
        }
        for j in 0..holes {
            for i1 in 0..pigeons {
                for i2 in (i1 + 1)..pigeons {
                    clauses.push(vec![-(i1 * holes + j + 1), -(i2 * holes + j + 1)]);
                }
            }
        }
        build((pigeons * holes) as usize, &clauses)
    }

    #[test]
    fn pre_raised_cancel_flag_aborts_at_call_entry() {
        let (mut solver, _) = build(3, &[vec![1, 2], vec![-1, 3]]);
        let flag: CancelFlag = Arc::new(AtomicBool::new(true));
        solver.set_cancel(Some(flag.clone()));
        assert!(matches!(solver.solve(), SatResult::Unknown));
        // Lowering the flag restores the solver.
        flag.store(false, Ordering::Relaxed);
        assert!(solver.solve().is_sat());
    }

    #[test]
    fn cancel_flag_trips_mid_solve() {
        // PHP(12, 11) is far beyond what a CDCL solver decides in seconds
        // (pigeonhole needs exponential resolution proofs), so the only way
        // the background solve below returns promptly is the cancellation
        // flag raised mid-search.
        let (mut solver, _) = pigeonhole(12, 11);
        let flag: CancelFlag = Arc::new(AtomicBool::new(false));
        solver.set_cancel(Some(flag.clone()));
        let worker = std::thread::spawn(move || solver.solve());
        std::thread::sleep(Duration::from_millis(30));
        flag.store(true, Ordering::Relaxed);
        let result = worker.join().expect("solver thread panicked");
        assert!(matches!(result, SatResult::Unknown));
    }

    #[test]
    fn stats_are_populated() {
        let (mut solver, _) = build(3, &[vec![1, 2], vec![-1, 3], vec![-2, -3], vec![1, 3]]);
        let _ = solver.solve();
        let stats = solver.stats();
        assert!(stats.propagations > 0 || stats.decisions > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1.0, 1.0, 2.0, 1.0, 1.0, 2.0, 4.0, 1.0, 1.0, 2.0, 1.0];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(2.0, i as u64), e, "luby({i})");
        }
    }

    proptest::proptest! {
        /// Random 3-SAT instances agree with the brute-force reference, and
        /// returned models actually satisfy the formula.
        #[test]
        fn prop_matches_brute_force(seed in 0u64..300) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let num_vars = rng.gen_range(3..9usize);
            let num_clauses = rng.gen_range(2..30usize);
            let clauses: Vec<Vec<isize>> = (0..num_clauses)
                .map(|_| {
                    let len = rng.gen_range(1..4usize);
                    (0..len)
                        .map(|_| {
                            let v = rng.gen_range(1..=num_vars) as isize;
                            if rng.gen_bool(0.5) { v } else { -v }
                        })
                        .collect()
                })
                .collect();
            let reference = brute_force(num_vars, &clauses);
            let (mut solver, vars) = build(num_vars, &clauses);
            let result = solver.solve();
            match (reference, result) {
                (Some(_), SatResult::Sat(model)) => {
                    // Verify the model satisfies every clause.
                    for clause in &clauses {
                        let satisfied = clause.iter().any(|&l| {
                            let value = model.value(vars[l.unsigned_abs() - 1]);
                            if l > 0 { value } else { !value }
                        });
                        proptest::prop_assert!(satisfied, "model violates clause {clause:?}");
                    }
                }
                (None, SatResult::Unsat) => {}
                (reference, result) => {
                    return Err(proptest::test_runner::TestCaseError::fail(
                        format!("disagreement: brute force {:?}, solver {:?}",
                                reference.is_some(), result.is_sat()),
                    ));
                }
            }
        }
    }
}
