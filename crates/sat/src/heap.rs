//! Indexed max-heap over variables keyed by VSIDS activity.
//!
//! This mirrors MiniSat's `order_heap`: the solver needs to (a) pop the
//! highest-activity unassigned variable, (b) reinsert variables when they are
//! unassigned on backtracking, and (c) sift a variable up when its activity
//! is bumped — all in `O(log n)`.

/// An indexed binary max-heap of variable indices ordered by an external
/// activity array.
#[derive(Debug, Default, Clone)]
pub(crate) struct ActivityHeap {
    /// Heap of variable indices.
    heap: Vec<usize>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    pub(crate) fn new() -> Self {
        ActivityHeap::default()
    }

    /// Ensures positions exist for `n` variables.
    pub(crate) fn grow_to(&mut self, n: usize) {
        if self.position.len() < n {
            self.position.resize(n, ABSENT);
        }
    }

    pub(crate) fn contains(&self, var: usize) -> bool {
        self.position.get(var).copied().unwrap_or(ABSENT) != ABSENT
    }

    /// Inserts a variable (no-op if already present).
    pub(crate) fn insert(&mut self, var: usize, activity: &[f64]) {
        self.grow_to(var + 1);
        if self.contains(var) {
            return;
        }
        self.heap.push(var);
        self.position[var] = self.heap.len() - 1;
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.position[top] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property after `var`'s activity increased.
    pub(crate) fn decrease_key(&mut self, var: usize, activity: &[f64]) {
        if let Some(&pos) = self.position.get(var) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    fn sift_up(&mut self, mut index: usize, activity: &[f64]) {
        while index > 0 {
            let parent = (index - 1) / 2;
            if activity[self.heap[index]] > activity[self.heap[parent]] {
                self.swap(index, parent);
                index = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut index: usize, activity: &[f64]) {
        loop {
            let left = 2 * index + 1;
            let right = 2 * index + 2;
            let mut largest = index;
            if left < self.heap.len() && activity[self.heap[left]] > activity[self.heap[largest]] {
                largest = left;
            }
            if right < self.heap.len() && activity[self.heap[right]] > activity[self.heap[largest]]
            {
                largest = right;
            }
            if largest == index {
                break;
            }
            self.swap(index, largest);
            index = largest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a]] = a;
        self.position[self.heap[b]] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut heap = ActivityHeap::new();
        for v in 0..4 {
            heap.insert(v, &activity);
        }
        assert_eq!(heap.pop_max(&activity), Some(1));
        assert_eq!(heap.pop_max(&activity), Some(3));
        assert_eq!(heap.pop_max(&activity), Some(2));
        assert_eq!(heap.pop_max(&activity), Some(0));
        assert_eq!(heap.pop_max(&activity), None);
    }

    #[test]
    fn duplicate_insert_is_a_no_op() {
        let activity = vec![1.0, 2.0];
        let mut heap = ActivityHeap::new();
        heap.insert(0, &activity);
        heap.insert(0, &activity);
        heap.insert(1, &activity);
        assert_eq!(heap.pop_max(&activity), Some(1));
        assert_eq!(heap.pop_max(&activity), Some(0));
        assert_eq!(heap.pop_max(&activity), None);
    }

    #[test]
    fn decrease_key_reorders_after_bump() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = ActivityHeap::new();
        for v in 0..3 {
            heap.insert(v, &activity);
        }
        // Bump variable 0 above everything else.
        activity[0] = 10.0;
        heap.decrease_key(0, &activity);
        assert_eq!(heap.pop_max(&activity), Some(0));
    }

    #[test]
    fn reinsertion_after_pop() {
        let activity = vec![1.0, 2.0];
        let mut heap = ActivityHeap::new();
        heap.insert(0, &activity);
        heap.insert(1, &activity);
        assert_eq!(heap.pop_max(&activity), Some(1));
        heap.insert(1, &activity);
        assert_eq!(heap.pop_max(&activity), Some(1));
    }
}
