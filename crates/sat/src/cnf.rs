//! Standalone CNF formulas, the [`ClauseSink`] abstraction and DIMACS I/O.
//!
//! The original KRATT tool hands its CNF and QBF instances to external
//! solvers (CryptoMiniSat and DepQBF) through the DIMACS / QDIMACS exchange
//! formats. The in-tree CDCL solver makes that unnecessary for the
//! reproduction, but the interchange path is still valuable: it lets a user
//! dump exactly the instances KRATT generates and feed them to any external
//! solver for cross-checking. [`Cnf`] is the in-memory representation of such
//! an instance, and [`ClauseSink`] lets the Tseitin [`Encoder`](crate::Encoder)
//! target either a live [`Solver`] or a [`Cnf`] to be serialised.
//!
//! ```
//! use kratt_sat::cnf::{ClauseSink, Cnf};
//! use kratt_sat::Lit;
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! cnf.add_clause([Lit::positive(a), Lit::positive(b)]);
//! cnf.add_clause([Lit::negative(a)]);
//! let text = cnf.to_dimacs();
//! assert!(text.contains("p cnf 2 2"));
//! let parsed = Cnf::from_dimacs(&text).unwrap();
//! assert_eq!(parsed.num_clauses(), 2);
//! ```

use crate::lit::{Lit, Var};
use crate::solver::{SatResult, Solver};
use std::fmt;
use std::fmt::Write as _;

/// A destination clauses can be added to: either a live [`Solver`] or an
/// in-memory [`Cnf`] formula headed for DIMACS serialisation.
///
/// The Tseitin [`Encoder`](crate::Encoder) is generic over this trait, so the
/// same circuit-to-CNF translation drives both solving and exporting.
pub trait ClauseSink {
    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Adds a clause. Returns `false` if the sink can already tell the
    /// formula became unsatisfiable (solvers do; plain formulas always
    /// return `true`).
    fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>;

    /// Number of variables allocated so far.
    fn num_vars(&self) -> usize;
}

impl ClauseSink for Solver {
    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        Solver::add_clause(self, lits)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }
}

/// Error produced when DIMACS text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// A propositional formula in conjunctive normal form.
///
/// Unlike [`Solver`], a `Cnf` performs no propagation or simplification — it
/// is a faithful container for the clauses handed to it, which is exactly
/// what serialisation needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Number of variables allocated (or implied by parsed clauses).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses, in insertion order.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Ensures at least `count` variables exist.
    pub fn reserve_vars(&mut self, count: usize) {
        self.num_vars = self.num_vars.max(count);
    }

    /// Loads every clause into a fresh [`Solver`] and returns it. Variable
    /// indices are preserved, so [`Var::from_index`] addresses the same
    /// variable in both representations.
    pub fn to_solver(&self) -> Solver {
        let mut solver = Solver::new();
        while solver.num_vars() < self.num_vars {
            solver.new_var();
        }
        for clause in &self.clauses {
            solver.add_clause(clause.iter().copied());
        }
        solver
    }

    /// Solves the formula with a fresh [`Solver`].
    pub fn solve(&self) -> SatResult {
        self.to_solver().solve()
    }

    /// Serialises the formula in DIMACS CNF format.
    pub fn to_dimacs(&self) -> String {
        self.to_dimacs_with_comments(&[])
    }

    /// Serialises the formula in DIMACS CNF format, preceded by `c` comment
    /// lines (one per entry, newlines not allowed inside an entry).
    pub fn to_dimacs_with_comments(&self, comments: &[&str]) -> String {
        let mut out = String::new();
        for comment in comments {
            let _ = writeln!(out, "c {comment}");
        }
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            let _ = writeln!(out, "{}", clause_to_dimacs(clause));
        }
        out
    }

    /// Parses DIMACS CNF text.
    ///
    /// The parser accepts the common liberties external tools take: comment
    /// lines anywhere, clauses spanning several lines, several clauses per
    /// line, and more variables appearing in clauses than the header claims
    /// (the variable count grows to match).
    ///
    /// # Errors
    ///
    /// Returns [`ParseDimacsError`] for a missing or malformed `p cnf`
    /// header, non-integer tokens, a literal mentioning variable 0, or an
    /// unterminated final clause.
    pub fn from_dimacs(text: &str) -> Result<Self, ParseDimacsError> {
        let mut header: Option<(usize, usize)> = None;
        let mut cnf = Cnf::new();
        let mut current: Vec<Lit> = Vec::new();
        let mut last_line = 1usize;
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            last_line = line_no;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
                continue;
            }
            if line.starts_with('p') {
                if header.is_some() {
                    return Err(ParseDimacsError {
                        line: line_no,
                        message: "duplicate `p cnf` header".into(),
                    });
                }
                let mut parts = line.split_whitespace();
                let _p = parts.next();
                if parts.next() != Some("cnf") {
                    return Err(ParseDimacsError {
                        line: line_no,
                        message: "expected `p cnf <vars> <clauses>`".into(),
                    });
                }
                let vars = parse_count(parts.next(), line_no, "variable count")?;
                let clauses = parse_count(parts.next(), line_no, "clause count")?;
                header = Some((vars, clauses));
                cnf.reserve_vars(vars);
                continue;
            }
            if header.is_none() {
                return Err(ParseDimacsError {
                    line: line_no,
                    message: "clause before the `p cnf` header".into(),
                });
            }
            for token in line.split_whitespace() {
                let value: i64 = token.parse().map_err(|_| ParseDimacsError {
                    line: line_no,
                    message: format!("`{token}` is not an integer literal"),
                })?;
                if value == 0 {
                    cnf.add_clause(current.drain(..));
                } else {
                    let index = value.unsigned_abs() as usize - 1;
                    cnf.reserve_vars(index + 1);
                    current.push(Lit::with_polarity(Var::from_index(index), value > 0));
                }
            }
        }
        if !current.is_empty() {
            return Err(ParseDimacsError {
                line: last_line,
                message: "last clause is not terminated by 0".into(),
            });
        }
        if header.is_none() {
            return Err(ParseDimacsError {
                line: last_line,
                message: "missing `p cnf` header".into(),
            });
        }
        Ok(cnf)
    }
}

impl ClauseSink for Cnf {
    fn new_var(&mut self) -> Var {
        let var = Var::from_index(self.num_vars);
        self.num_vars += 1;
        var
    }

    fn add_clause<I>(&mut self, lits: I) -> bool
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for lit in &clause {
            self.reserve_vars(lit.var().index() + 1);
        }
        self.clauses.push(clause);
        true
    }

    fn num_vars(&self) -> usize {
        self.num_vars
    }
}

/// Renders one clause as DIMACS integers terminated by 0 (the clause-line
/// syntax is shared by DIMACS CNF and QDIMACS).
pub fn clause_to_dimacs(clause: &[Lit]) -> String {
    let mut out = String::new();
    for lit in clause {
        let value = lit.var().index() as i64 + 1;
        let value = if lit.is_negative() { -value } else { value };
        let _ = write!(out, "{value} ");
    }
    out.push('0');
    out
}

fn parse_count(token: Option<&str>, line: usize, what: &str) -> Result<usize, ParseDimacsError> {
    token
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseDimacsError {
            line,
            message: format!("missing or malformed {what}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use kratt_netlist::{Circuit, GateType};
    use std::collections::HashMap;

    #[test]
    fn round_trip_preserves_clauses() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.add_clause([Lit::positive(a), Lit::negative(b)]);
        cnf.add_clause([Lit::positive(c)]);
        cnf.add_clause([] as [Lit; 0]);
        let text = cnf.to_dimacs();
        let parsed = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn header_counts_match_content() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause([Lit::positive(a)]);
        let text = cnf.to_dimacs_with_comments(&["generated by kratt"]);
        assert!(text.starts_with("c generated by kratt\np cnf 1 1\n"));
        assert!(text.contains("\n1 0\n"));
    }

    #[test]
    fn parser_accepts_common_liberties() {
        let text = "c comment\np cnf 3 3\n1 -2 0 2 3 0\n-1\n-3 0\n% trailing\n";
        let cnf = Cnf::from_dimacs(text).unwrap();
        assert_eq!(cnf.num_clauses(), 3);
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(
            cnf.clauses()[0],
            vec![
                Lit::positive(Var::from_index(0)),
                Lit::negative(Var::from_index(1))
            ]
        );
        assert_eq!(cnf.clauses()[2].len(), 2);
    }

    #[test]
    fn variable_count_grows_past_the_header() {
        let text = "p cnf 1 1\n1 -5 0\n";
        let cnf = Cnf::from_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars(), 5);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_line_numbers() {
        let missing_header = "1 2 0\n";
        match Cnf::from_dimacs(missing_header) {
            Err(e) => assert!(e.to_string().contains("header")),
            Ok(_) => panic!("expected an error"),
        }

        let bad_token = "p cnf 2 1\n1 x 0\n";
        match Cnf::from_dimacs(bad_token) {
            Err(e) => {
                assert_eq!(e.line, 2);
                assert!(e.to_string().contains('x'));
            }
            Ok(_) => panic!("expected an error"),
        }

        let unterminated = "p cnf 2 1\n1 2\n";
        assert!(Cnf::from_dimacs(unterminated).is_err());

        let double_header = "p cnf 1 0\np cnf 1 0\n";
        assert!(Cnf::from_dimacs(double_header).is_err());

        let bad_header = "p sat 3 1\n";
        assert!(Cnf::from_dimacs(bad_header).is_err());

        let empty = "";
        assert!(Cnf::from_dimacs(empty).is_err());
    }

    #[test]
    fn solving_a_parsed_formula_matches_expectations() {
        // (a | b) & (!a) & (!b) is UNSAT; dropping the last clause is SAT.
        let unsat = "p cnf 2 3\n1 2 0\n-1 0\n-2 0\n";
        assert!(Cnf::from_dimacs(unsat).unwrap().solve().is_unsat());
        let sat = "p cnf 2 2\n1 2 0\n-1 0\n";
        let cnf = Cnf::from_dimacs(sat).unwrap();
        match cnf.solve() {
            SatResult::Sat(model) => {
                assert!(!model.value(Var::from_index(0)));
                assert!(model.value(Var::from_index(1)));
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn encoder_targets_a_cnf_sink() {
        // Encode a full adder into a Cnf, export it, re-import it, and check
        // that solving under pinned inputs reproduces the simulator outputs.
        let mut circuit = Circuit::new("fa");
        let a = circuit.add_input("a").unwrap();
        let b = circuit.add_input("b").unwrap();
        let cin = circuit.add_input("cin").unwrap();
        let s1 = circuit.add_gate(GateType::Xor, "s1", &[a, b]).unwrap();
        let sum = circuit.add_gate(GateType::Xor, "sum", &[s1, cin]).unwrap();
        let c1 = circuit.add_gate(GateType::And, "c1", &[a, b]).unwrap();
        let c2 = circuit.add_gate(GateType::And, "c2", &[s1, cin]).unwrap();
        let cout = circuit.add_gate(GateType::Or, "cout", &[c1, c2]).unwrap();
        circuit.mark_output(sum);
        circuit.mark_output(cout);

        let mut cnf = Cnf::new();
        let encoding = Encoder::new().encode(&mut cnf, &circuit, &HashMap::new());
        let round_tripped = Cnf::from_dimacs(&cnf.to_dimacs()).unwrap();

        let sim = kratt_netlist::sim::Simulator::new(&circuit).unwrap();
        for pattern in 0u64..8 {
            let bits: Vec<bool> = (0..3).map(|i| pattern >> i & 1 != 0).collect();
            let expected = sim.run(&bits).unwrap();
            let mut solver = round_tripped.to_solver();
            let assumptions: Vec<Lit> = encoding
                .inputs()
                .iter()
                .zip(&bits)
                .map(|(&(_, var), &value)| Lit::with_polarity(var, value))
                .collect();
            match solver.solve_with_assumptions(&assumptions) {
                SatResult::Sat(model) => {
                    assert_eq!(model.value(encoding.outputs()[0]), expected[0]);
                    assert_eq!(model.value(encoding.outputs()[1]), expected[1]);
                }
                other => panic!("expected SAT, got {other:?}"),
            }
        }
    }

    proptest::proptest! {
        /// Random CNF formulas survive a DIMACS round trip unchanged, and the
        /// solver's verdict is identical before and after.
        #[test]
        fn prop_dimacs_round_trip(seed in 0u64..50) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut cnf = Cnf::new();
            let vars: Vec<Var> = (0..rng.gen_range(2..8usize)).map(|_| cnf.new_var()).collect();
            for _ in 0..rng.gen_range(1..20usize) {
                let width = rng.gen_range(1..4usize);
                let clause: Vec<Lit> = (0..width)
                    .map(|_| {
                        let var = vars[rng.gen_range(0..vars.len())];
                        Lit::with_polarity(var, rng.gen_bool(0.5))
                    })
                    .collect();
                cnf.add_clause(clause);
            }
            let text = cnf.to_dimacs();
            let parsed = Cnf::from_dimacs(&text).unwrap();
            proptest::prop_assert_eq!(&parsed, &cnf);
            proptest::prop_assert_eq!(parsed.solve().is_sat(), cnf.solve().is_sat());
        }
    }
}
