//! Minimal plain-text table formatting for the experiment binaries.

use std::fmt::Write as _;

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn add_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:>width$}  ");
            }
            let _ = writeln!(out);
        };
        render_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = Table::new(["circuit", "cdk/dk", "CPU"]);
        table.add_row(["c2670", "64/64", "0.39"]);
        table.add_row(["b20_C", "128/128", "13.60"]);
        let text = table.render();
        assert!(text.contains("c2670"));
        assert!(text.contains("128/128"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[1].chars().next(), Some('-'));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut table = Table::new(["a", "b"]);
        table.add_row(["only"]);
        assert!(table.render().contains("only"));
    }
}
