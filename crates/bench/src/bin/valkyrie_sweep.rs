//! Scaled-down version of the paper's Valkyrie-repository sweep (Section IV,
//! second experiment set): many locked instances per technique, counting how
//! many KRATT breaks and through which path. Control the number of synthesis
//! seeds per configuration with `KRATT_VALKYRIE_SEEDS` (default 2).
fn main() {
    let options = kratt_bench::options_from_env();
    let seeds = std::env::var("KRATT_VALKYRIE_SEEDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2)
        .max(1);
    println!(
        "KRATT reproduction — Valkyrie sweep (scale {:.2}, {} seeds per configuration)\n",
        options.scale, seeds
    );
    println!("{}", kratt_bench::run_valkyrie_sweep(&options, seeds));
}
