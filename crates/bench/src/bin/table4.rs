//! Regenerates the paper's Table 4. Scale with `KRATT_SCALE` (1.0 = paper
//! scale) and `KRATT_BUDGET_SECS` (baseline attack budget).
fn main() {
    let options = kratt_bench::options_from_env();
    println!(
        "KRATT reproduction — Table 4 (scale {:.2})\n",
        options.scale
    );
    println!("{}", kratt_bench::run_table4(&options));
}
