//! Regenerates the paper's Fig. 6 (impact of resynthesis on KRATT run-time).
//! Control the number of variants with `KRATT_FIG6_VARIANTS` (paper: 50).
fn main() {
    let options = kratt_bench::options_from_env();
    println!(
        "KRATT reproduction — Fig. 6 (scale {:.2}, {} variants per technique)\n",
        options.scale, options.fig6_variants
    );
    let (samples, summary) = kratt_bench::run_fig6(&options);
    println!("{samples}");
    println!("{summary}");
}
