//! Output-corruption study (the quantitative side of the paper's Fig. 2
//! discussion): output error rates of the secret key and of random wrong keys
//! for every implemented locking technique. Scale the number of sampled input
//! patterns with `KRATT_SCALE`.
fn main() {
    let options = kratt_bench::options_from_env();
    println!(
        "KRATT reproduction — output-corruption study (scale {:.2})\n",
        options.scale
    );
    println!("{}", kratt_bench::run_corruption_study(&options));
}
