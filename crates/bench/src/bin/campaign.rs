//! The end-to-end campaign driver: lock → attack → verify over a named
//! preset or a campaign spec file, printing the verdict-stamped report as
//! an aligned table, JSON, or a stream of JSON-lines verdicts.
//!
//! ```sh
//! cargo run --release -p kratt-bench --bin campaign -- --preset table3
//! KRATT_SCALE=0.02 KRATT_BUDGET_SECS=2 \
//!     cargo run --release -p kratt-bench --bin campaign -- --preset smoke --json
//! cargo run --release -p kratt-bench --bin campaign -- \
//!     --preset smoke --journal run.jsonl --stream   # resumable, streaming
//! ```
//!
//! Exits non-zero when any attack claimed an exact key (or recovered
//! circuit) that the verification step could not confirm against the
//! planted secret — the contract the `campaign-smoke` CI job gates on.
//! `KRATT_SCALE`, `KRATT_BUDGET_SECS` and `KRATT_WORKERS` scale the run as
//! for every other experiment binary.

use kratt_bench::CAMPAIGN_PRESETS;
use std::process::ExitCode;

const USAGE: &str = "\
campaign — scheme specs x hosts x attacks, locked on the fly and verified

USAGE:
    campaign [--preset <NAME|SPEC-FILE>] [OPTIONS]

OPTIONS:
    --preset <VALUE>      campaign to run: a preset name (table3, the default, or
                          smoke — both resynthesise every instance, as the paper
                          does) or a path to a campaign spec file with
                          scheme/host/attack/budget-secs/workers/journal
                          directives, one per line (no resynthesis step)
    --min-verified <N>    additionally fail unless at least N cells come back
                          verified (guards against capability regressions where
                          attacks silently stop finding keys; default 0)
    --journal <PATH>      append every verdict to a persistent journal; re-runs
                          replay it and attack only unrecorded cells
    --halt-after <N>      stop scheduling new cells after N fresh verdicts (the
                          crash-resume drill: halt mid-sweep, re-run to finish)
    --json                print the machine-readable JSON report
    --stream              print each verdict cell as a JSON line the moment it
                          commits, closed by one summary record
    --help                print this message
";

fn main() -> ExitCode {
    let mut preset = "table3".to_string();
    let mut json = false;
    let mut stream = false;
    let mut min_verified = 0usize;
    let mut journal: Option<String> = None;
    let mut halt_after: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--preset" => match args.next() {
                Some(name) => preset = name,
                None => {
                    eprintln!("error: --preset expects a name or spec file\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--min-verified" => match args.next().and_then(|v| v.parse().ok()) {
                Some(count) => min_verified = count,
                None => {
                    eprintln!("error: --min-verified expects a cell count\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--journal" => match args.next() {
                Some(path) => journal = Some(path),
                None => {
                    eprintln!("error: --journal expects a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--halt-after" => match args.next().and_then(|v| v.parse().ok()) {
                Some(cells) => halt_after = Some(cells),
                None => {
                    eprintln!("error: --halt-after expects a cell count\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--stream" => stream = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let options = kratt_bench::options_from_env();
    // A path on disk is a spec file (its own budget/workers/journal policy,
    // no resynthesis hook); anything else resolves as a preset with the
    // paper's resynthesis step.
    let campaign = if std::path::Path::new(&preset).is_file() {
        let budget = kratt_attacks::Budget {
            time_limit: Some(options.baseline_budget),
            max_iterations: 10_000,
            ..kratt_attacks::Budget::default()
        };
        match kratt::cli::resolve_campaign(&preset, kratt_bench::campaign_hosts(&options), budget) {
            Ok(campaign) => campaign,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match kratt_bench::build_campaign(&preset, &options) {
            Ok(campaign) => campaign,
            Err(e) => {
                eprintln!(
                    "error: {e} (known presets: {}; or pass a spec-file path)",
                    CAMPAIGN_PRESETS.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    };
    let mut campaign = match std::env::var("KRATT_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(workers) => campaign.with_workers(workers),
        None => campaign,
    };
    if let Some(path) = journal {
        campaign = campaign.with_journal(path);
    }
    if let Some(cells) = halt_after {
        campaign = campaign.with_halt_after_cells(cells);
    }
    if !json && !stream {
        println!(
            "KRATT campaign `{preset}`: {} schemes x {} hosts x {} attacks = {} cells (scale {:.2}, budget {:?})\n",
            campaign.schemes.len(),
            campaign.hosts.len(),
            campaign.attacks.len(),
            campaign.num_cells(),
            options.scale,
            options.baseline_budget,
        );
    }

    let report = match kratt::cli::run_campaign_with_output(&campaign, stream) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !stream {
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.render());
        }
    }

    let unverified = report.unverified_exact_claims();
    if unverified > 0 {
        eprintln!(
            "error: {unverified} exact claim(s) failed verification against the planted secret"
        );
        return ExitCode::FAILURE;
    }
    let verified = report
        .cells
        .iter()
        .filter(|cell| cell.verdict == kratt_attacks::Verdict::Verified)
        .count();
    if verified < min_verified {
        eprintln!(
            "error: only {verified} cell(s) verified, --min-verified {min_verified} requires more \
             (did an attack lose the ability to break these schemes?)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
