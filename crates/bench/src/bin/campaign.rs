//! The end-to-end campaign driver: lock → attack → verify over a named
//! preset, printing the verdict-stamped report as an aligned table or JSON.
//!
//! ```sh
//! cargo run --release -p kratt-bench --bin campaign -- --preset table3
//! KRATT_SCALE=0.02 KRATT_BUDGET_SECS=2 \
//!     cargo run --release -p kratt-bench --bin campaign -- --preset smoke --json
//! ```
//!
//! Exits non-zero when any attack claimed an exact key (or recovered
//! circuit) that the verification step could not confirm against the
//! planted secret — the contract the `campaign-smoke` CI job gates on.
//! `KRATT_SCALE`, `KRATT_BUDGET_SECS` and `KRATT_WORKERS` scale the run as
//! for every other experiment binary.

use kratt_bench::CAMPAIGN_PRESETS;
use std::process::ExitCode;

const USAGE: &str = "\
campaign — scheme specs x hosts x attacks, locked on the fly and verified

USAGE:
    campaign [--preset <NAME>] [--min-verified <N>] [--json]

OPTIONS:
    --preset <NAME>       campaign preset to run: table3 (default) or smoke
    --min-verified <N>    additionally fail unless at least N cells come back
                          verified (guards against capability regressions where
                          attacks silently stop finding keys; default 0)
    --json                print the machine-readable JSON report
    --help                print this message
";

fn main() -> ExitCode {
    let mut preset = "table3".to_string();
    let mut json = false;
    let mut min_verified = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--preset" => match args.next() {
                Some(name) => preset = name,
                None => {
                    eprintln!("error: --preset expects a name\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--min-verified" => match args.next().and_then(|v| v.parse().ok()) {
                Some(count) => min_verified = count,
                None => {
                    eprintln!("error: --min-verified expects a cell count\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let options = kratt_bench::options_from_env();
    let campaign = match kratt_bench::build_campaign(&preset, &options) {
        Ok(campaign) => campaign,
        Err(e) => {
            eprintln!(
                "error: {e} (known presets: {})",
                CAMPAIGN_PRESETS.join(", ")
            );
            return ExitCode::from(2);
        }
    };
    let campaign = match std::env::var("KRATT_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(workers) => campaign.with_workers(workers),
        None => campaign,
    };
    if !json {
        println!(
            "KRATT campaign `{preset}`: {} schemes x {} hosts x {} attacks = {} cells (scale {:.2}, budget {:?})\n",
            campaign.schemes.len(),
            campaign.hosts.len(),
            campaign.attacks.len(),
            campaign.num_cells(),
            options.scale,
            options.baseline_budget,
        );
    }

    let report = match campaign.run(
        &kratt::attack_registry(),
        &kratt_locking::scheme_registry(),
        &kratt_attacks::CorpusCache::new(),
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render());
    }

    let unverified = report.unverified_exact_claims();
    if unverified > 0 {
        eprintln!(
            "error: {unverified} exact claim(s) failed verification against the planted secret"
        );
        return ExitCode::FAILURE;
    }
    let verified = report
        .cells
        .iter()
        .filter(|cell| cell.verdict == kratt_attacks::Verdict::Verified)
        .count();
    if verified < min_verified {
        eprintln!(
            "error: only {verified} cell(s) verified, --min-verified {min_verified} requires more \
             (did an attack lose the ability to break these schemes?)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
