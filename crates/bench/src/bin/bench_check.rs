//! The benchmark regression gate: compares a fresh `BENCH_results.json`
//! against the committed `BENCH_baseline.json` and exits non-zero when a
//! tracked kernel regressed.
//!
//! ```sh
//! cargo run --release -p kratt-bench --bin bench_check -- \
//!     BENCH_baseline.json BENCH_results.json
//! ```
//!
//! Tracked kernels gate on the machine-portable packed-over-scalar speedup
//! ratio (tolerance `KRATT_BENCH_TOLERANCE`, default 0.25) and on the
//! absolute acceptance floor (`KRATT_MIN_PACKED_SPEEDUP`, default 8).
//! Attack telemetry drift (iterations / oracle queries) is reported but
//! only fails the gate with `KRATT_BENCH_STRICT=1`.

use kratt_bench::emit::{compare, BenchResults};
use std::process::ExitCode;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load(path: &str) -> Result<BenchResults, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchResults::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, current_path] = args.as_slice() else {
        eprintln!("usage: bench_check <BENCH_baseline.json> <BENCH_results.json>");
        return ExitCode::from(2);
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(baseline), Ok(current)) => (baseline, current),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let tolerance = env_f64("KRATT_BENCH_TOLERANCE", 0.25);
    let min_speedup = env_f64("KRATT_MIN_PACKED_SPEEDUP", 8.0);
    let strict = std::env::var("KRATT_BENCH_STRICT").is_ok_and(|v| v == "1");

    println!(
        "bench_check: {} kernels, {} attack rows ({}% tolerance, {:.0}x floor{})",
        baseline.kernels.len(),
        baseline.attacks.len(),
        tolerance * 100.0,
        min_speedup,
        if strict { ", strict" } else { "" }
    );
    for kernel in &current.kernels {
        println!(
            "  kernel {:<24} scalar {:>9.3} ms  packed {:>9.3} ms  speedup {:>6.1}x",
            kernel.name, kernel.scalar_ms, kernel.packed_ms, kernel.speedup
        );
    }
    for kernel in &current.cnf {
        println!(
            "  cnf    {:<24} gate {:>7}v/{:>8}c  aig {:>7}v/{:>8}c  reduction {:>5.1}%/{:>5.1}%",
            kernel.name,
            kernel.gate_vars,
            kernel.gate_clauses,
            kernel.aig_vars,
            kernel.aig_clauses,
            kernel.var_reduction * 100.0,
            kernel.clause_reduction * 100.0
        );
    }
    for kernel in &current.fraig {
        println!(
            "  fraig  {:<24} gate {:>9.1} ms  fraig {:>9.1} ms  speedup {:>6.2}x  ({} SAT calls, {} merges)",
            kernel.name,
            kernel.gate_level_ms,
            kernel.fraig_ms,
            kernel.speedup,
            kernel.sat_calls,
            kernel.proved_merges
        );
    }

    for kernel in &current.scope {
        println!(
            "  scope  {:<24} resynth {:>9.1} ms  aig {:>9.1} ms  speedup {:>6.1}x  ({} key bits, engines {})",
            kernel.name,
            kernel.resynth_ms,
            kernel.aig_ms,
            kernel.speedup,
            kernel.key_bits,
            if kernel.matches { "agree" } else { "DISAGREE" }
        );
    }

    for kernel in &current.scheduler {
        println!(
            "  sched  {:<24} static {:>9.1} ms  stolen {:>9.1} ms  ratio {:>6.2}x  ({} jobs, {} workers, {} steals)",
            kernel.name,
            kernel.static_ms,
            kernel.scheduled_ms,
            kernel.speedup,
            kernel.jobs,
            kernel.workers,
            kernel.steals
        );
    }

    for kernel in &current.dip_aig {
        println!(
            "  dip    {:<24} gate {:>7}v/{:>8}c  aig {:>7}v/{:>8}c  reduction {:>5.1}%/{:>5.1}%  cegar {:>6.1}/{:>6.1} it/s",
            kernel.name,
            kernel.gate_vars,
            kernel.gate_clauses,
            kernel.aig_vars,
            kernel.aig_clauses,
            kernel.var_reduction * 100.0,
            kernel.clause_reduction * 100.0,
            kernel.gate_iters_per_sec,
            kernel.aig_iters_per_sec
        );
    }

    for kernel in &current.rewrite {
        println!(
            "  rewr   {:<24} nodes {:>6} -> {:>6}  levels {:>3} -> {:>3}  reduction {:>5.1}%",
            kernel.name,
            kernel.nodes_before,
            kernel.nodes_after,
            kernel.levels_before,
            kernel.levels_after,
            kernel.node_reduction * 100.0
        );
    }

    for kernel in &current.portfolio {
        println!(
            "  race   {:<24} race {:>9.1} ms  best {:>9.1} ms  worst {:>9.1} ms  overhead {:>5.2}x  (winner {}, {})",
            kernel.name,
            kernel.portfolio_ms,
            kernel.best_member_ms,
            kernel.worst_member_ms,
            kernel.overhead,
            kernel.winner,
            if kernel.verified { "verified" } else { "UNVERIFIED" }
        );
    }

    for kernel in &current.fraig_par {
        println!(
            "  fpar   {:<24} seq {:>9.1} ms  par {:>9.1} ms  speedup {:>6.2}x  ({} workers, verdicts {}, merges {})",
            kernel.name,
            kernel.seq_sweep_ms,
            kernel.par_sweep_ms,
            kernel.speedup,
            kernel.workers,
            if kernel.verdicts_match { "agree" } else { "DISAGREE" },
            if kernel.merges_match { "agree" } else { "DISAGREE" }
        );
    }

    let regressions = compare(&baseline, &current, tolerance, min_speedup, strict);
    let mut fatal = false;
    for regression in &regressions {
        let severity = if regression.fatal { "FAIL" } else { "warn" };
        println!("{severity}: {}: {}", regression.subject, regression.detail);
        fatal |= regression.fatal;
    }
    if fatal {
        ExitCode::FAILURE
    } else {
        println!("bench_check: no tracked kernel regressed");
        ExitCode::SUCCESS
    }
}
