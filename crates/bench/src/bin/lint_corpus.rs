//! Lints the Table-I corpus across the full scheme registry: every host ×
//! scheme cell is locked on the fly and run through the `kratt-lint` rule
//! catalogue against its original. Error-level diagnostics fail the run —
//! that is the contract the CI `lint-corpus` job gates on: a scheme (or a
//! netlist transform) that starts producing structurally broken locked
//! circuits fails CI even while the unit tests still pass. Warnings and
//! infos (the SFLT security lints fire by design) are reported but pass.
//!
//! Scale the hosts with `KRATT_SCALE` (1.0 = paper scale).

use kratt_lint::Severity;
use kratt_locking::{scheme_registry, SchemeSpec};
use std::process::ExitCode;

/// Key bits per scheme in the corpus: small enough to keep the sweep fast,
/// large enough that the security lints see realistic comparator shapes.
const CORPUS_KEY_BITS: usize = 8;

fn main() -> ExitCode {
    let scale = kratt_bench::scale_from_env();
    let registry = scheme_registry();
    let hosts = kratt_benchmarks::table1_circuits(scale);
    println!(
        "KRATT lint corpus — {} hosts x {} schemes (scale {scale:.2})\n",
        hosts.len(),
        registry.names().len()
    );
    println!("{:<10} {:<12} lint", "host", "scheme");

    let mut cells = 0usize;
    let mut errors = 0usize;
    for host in &hosts {
        for name in registry.names() {
            let spec: SchemeSpec = name.parse().expect("registry names parse as specs");
            let spec = spec.or_key_bits(CORPUS_KEY_BITS);
            let locked = match registry.lock(&spec, &host.circuit) {
                Ok(locked) => locked,
                Err(e) => {
                    println!("{:<10} {:<12} LOCKING FAILED: {e}", host.name, name);
                    errors += 1;
                    continue;
                }
            };
            let report = kratt_lint::lint_locked(&host.circuit, &locked.circuit);
            cells += 1;
            println!("{:<10} {:<12} {}", host.name, name, report.summary());
            let cell_errors = report.count(Severity::Error);
            if cell_errors > 0 {
                for diagnostic in report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                {
                    println!("    {diagnostic}");
                }
                errors += cell_errors;
            }
        }
    }

    println!("\n{cells} cells linted, {errors} error-level finding(s)");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
