//! Generic attacks × benchmarks sweep over the unified attack API: every
//! attack named in `KRATT_ATTACKS` (comma-separated registry names, default
//! `kratt,sat,scope`) runs against every Table 1 circuit locked by the four
//! paper techniques, fanned out across worker threads by the work-stealing
//! scheduler.
//!
//! ```sh
//! KRATT_ATTACKS=kratt,sat,double-dip KRATT_SCALE=0.02 KRATT_BUDGET_SECS=2 \
//!     cargo run --release -p kratt-bench --bin matrix
//! ```
//!
//! `KRATT_WORKERS` overrides the worker count (default: all CPUs).

use kratt_bench::Table;
use std::process::ExitCode;

const USAGE: &str = "\
matrix — every KRATT_ATTACKS attack x every Table-I circuit x the four locks

USAGE:
    matrix [--json] [--stream] [--engine <gate|aig>]

OPTIONS:
    --json               print the rows as JSON lines (after the run) instead of a table
    --stream             print each row as a JSON line the moment it finishes, closed by
                         one scheduler summary record
    --engine <gate|aig>  DIP-engine of the SAT-family attacks (sets KRATT_DIP_ENGINE;
                         default aig — the shared structurally-hashed CEGAR miter)
    --help               print this message

ENVIRONMENT:
    KRATT_ATTACKS       comma-separated registry names (default kratt,sat,scope)
    KRATT_SCALE         host scale factor
    KRATT_BUDGET_SECS   per-cell attack budget
    KRATT_WORKERS       worker threads (default: all CPUs)
    KRATT_DIP_ENGINE    gate|aig, what --engine sets
";

fn main() -> ExitCode {
    let mut json = false;
    let mut stream = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--json" => json = true,
            "--stream" => stream = true,
            "--engine" => {
                let Some(value) = args.next().filter(|v| v == "gate" || v == "aig") else {
                    eprintln!("error: --engine expects gate or aig\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                // SAT-family attacks read the engine from the environment at
                // construction time, which happens below in registry.build.
                std::env::set_var("KRATT_DIP_ENGINE", value);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let options = kratt_bench::options_from_env();
    let names: Vec<String> = std::env::var("KRATT_ATTACKS")
        .unwrap_or_else(|_| "kratt,sat,scope".to_string())
        .split(',')
        .map(|name| name.trim().to_string())
        .filter(|name| !name.is_empty())
        .collect();
    let registry = kratt::attack_registry();
    let mut attacks = Vec::new();
    for name in &names {
        match registry.build(name) {
            Ok(attack) => attacks.push(attack),
            Err(e) => {
                eprintln!(
                    "error: {e} (known attacks: {})",
                    registry.names().join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }

    let harness = match std::env::var("KRATT_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(workers) => kratt_attacks::Harness::with_workers(workers),
        None => kratt_attacks::Harness::new(),
    };
    if !json && !stream {
        println!(
            "KRATT reproduction — attack matrix (scale {:.2}, budget {:?}, {} workers)\n",
            options.scale, options.baseline_budget, harness.workers
        );
    }

    let on_row: kratt_attacks::RowHook<'_> = &|_, row| {
        if stream {
            println!("{}", row.to_json_line());
        }
    };
    let (cases, rows, stats) =
        kratt_bench::run_attack_matrix_observed(&harness, &attacks, &options, on_row);

    if stream {
        println!("{}", stats.to_json_line());
    } else if json {
        for row in &rows {
            println!("{}", row.to_json_line());
        }
        println!("{}", stats.to_json_line());
    } else {
        let mut table = Table::new([
            "Case",
            "Attack",
            "Outcome",
            "Runtime (s)",
            "Iterations",
            "Oracle queries",
        ]);
        for row in &rows {
            match &row.result {
                Ok(run) => table.add_row([
                    row.case.clone(),
                    row.attack.clone(),
                    run.outcome.kind().to_string(),
                    format!("{:.3}", run.runtime.as_secs_f64()),
                    run.iterations.to_string(),
                    run.oracle_queries.to_string(),
                ]),
                Err(e) => table.add_row([
                    row.case.clone(),
                    row.attack.clone(),
                    format!("error: {e}"),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]),
            }
        }
        println!("{table}");
        println!(
            "{} cases x {} attacks = {} runs ({} steals, makespan {:.3}s)",
            cases,
            attacks.len(),
            rows.len(),
            stats.steals,
            stats.makespan.as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
