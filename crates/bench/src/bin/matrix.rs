//! Generic attacks × benchmarks sweep over the unified attack API: every
//! attack named in `KRATT_ATTACKS` (comma-separated registry names, default
//! `kratt,sat,scope`) runs against every Table 1 circuit locked by the four
//! paper techniques, fanned out across worker threads by
//! `Harness::run_matrix`.
//!
//! ```sh
//! KRATT_ATTACKS=kratt,sat,double-dip KRATT_SCALE=0.02 KRATT_BUDGET_SECS=2 \
//!     cargo run --release -p kratt-bench --bin matrix
//! ```
//!
//! `KRATT_WORKERS` overrides the worker count (default: all CPUs).

use kratt_bench::Table;
use std::process::ExitCode;

fn main() -> ExitCode {
    let options = kratt_bench::options_from_env();
    let names: Vec<String> = std::env::var("KRATT_ATTACKS")
        .unwrap_or_else(|_| "kratt,sat,scope".to_string())
        .split(',')
        .map(|name| name.trim().to_string())
        .filter(|name| !name.is_empty())
        .collect();
    let registry = kratt::attack_registry();
    let mut attacks = Vec::new();
    for name in &names {
        match registry.build(name) {
            Ok(attack) => attacks.push(attack),
            Err(e) => {
                eprintln!(
                    "error: {e} (known attacks: {})",
                    registry.names().join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }

    let harness = match std::env::var("KRATT_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(workers) => kratt_attacks::Harness::with_workers(workers),
        None => kratt_attacks::Harness::new(),
    };
    println!(
        "KRATT reproduction — attack matrix (scale {:.2}, budget {:?}, {} workers)\n",
        options.scale, options.baseline_budget, harness.workers
    );

    let (cases, rows) = kratt_bench::run_attack_matrix(&harness, &attacks, &options);
    let mut table = Table::new([
        "Case",
        "Attack",
        "Outcome",
        "Runtime (s)",
        "Iterations",
        "Oracle queries",
    ]);
    for row in &rows {
        match &row.result {
            Ok(run) => table.add_row([
                row.case.clone(),
                row.attack.clone(),
                run.outcome.kind().to_string(),
                format!("{:.3}", run.runtime.as_secs_f64()),
                run.iterations.to_string(),
                run.oracle_queries.to_string(),
            ]),
            Err(e) => table.add_row([
                row.case.clone(),
                row.attack.clone(),
                format!("error: {e}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]),
        }
    }
    println!("{table}");
    println!(
        "{} cases x {} attacks = {} runs",
        cases,
        attacks.len(),
        rows.len()
    );
    ExitCode::SUCCESS
}
