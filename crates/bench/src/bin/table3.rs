//! Regenerates the paper's Table 3. Scale with `KRATT_SCALE` (1.0 = paper
//! scale) and `KRATT_BUDGET_SECS` (baseline attack budget).
fn main() {
    let options = kratt_bench::options_from_env();
    println!(
        "KRATT reproduction — Table 3 (scale {:.2})\n",
        options.scale
    );
    println!("{}", kratt_bench::run_table3(&options));
}
