//! The benchmark JSON emitter: measures the tracked kernels (bit-parallel
//! simulation sweeps) and the per-attack × per-host wall-clock / iteration /
//! oracle-query telemetry, and renders everything as `BENCH_results.json`.
//!
//! One emitter serves both workflows: locally via `KRATT_BENCH_OUT=path.json
//! cargo bench -p kratt-bench --bench kernels`, and in CI where the
//! `bench-regression` job uploads the file as an artifact and gates merges
//! with the `bench_check` binary against the committed `BENCH_baseline.json`.
//!
//! Cross-machine comparability: kernel records track the *speedup ratio* of
//! the packed 64-lane sweep over 64 scalar evaluations (a property of the
//! code, not of the host's absolute clock), so the regression gate holds on
//! any runner. Absolute wall-clock numbers are recorded for trend reading
//! but only compared when explicitly requested.

use crate::ExperimentOptions;
use kratt_attacks::{
    measure_dip_encoding, Attack, AttackRequest, Budget, DipEngineKind, Harness, Oracle,
    PortfolioAttack, SatAttack, ScopeAttack,
};
use kratt_benchmarks::IscasCircuit;
use kratt_locking::{LockingTechnique, RandomXorLocking, SchemeSpec, SecretKey};
use kratt_netlist::aig::Aig;
use kratt_netlist::sim::Simulator;
use kratt_netlist::Circuit;
use kratt_sat::{ClauseSink, Cnf, Encoder, Lit};
use kratt_synth::{resynthesize, ResynthesisOptions};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One tracked simulation kernel: 64 patterns through an ISCAS host, scalar
/// versus packed.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel name (`"sim_sweep64_c5315"`, ...).
    pub name: String,
    /// Wall-clock of 64 scalar evaluations, in milliseconds.
    pub scalar_ms: f64,
    /// Wall-clock of one packed 64-lane sweep, in milliseconds.
    pub packed_ms: f64,
    /// `scalar_ms / packed_ms` — the machine-portable tracked metric.
    pub speedup: f64,
}

/// One tracked CNF-size kernel: the equivalence miter of an ISCAS host
/// against its seed-1 resynthesised variant, encoded once per gate
/// (`Encoder::encode` + `miter`) and once through the shared AIG
/// (`Encoder::encode_aig` of the one-output miter AIG). Counts are exact and
/// machine-independent, so the regression gate on them is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CnfRecord {
    /// Kernel name (`"cnf_miter_c5315"`, ...).
    pub name: String,
    /// Variables of the per-gate miter encoding.
    pub gate_vars: u64,
    /// Clauses of the per-gate miter encoding.
    pub gate_clauses: u64,
    /// Variables of the AIG miter encoding.
    pub aig_vars: u64,
    /// Clauses of the AIG miter encoding.
    pub aig_clauses: u64,
    /// `1 - aig_vars / gate_vars` — the tracked variable reduction.
    pub var_reduction: f64,
    /// `1 - aig_clauses / gate_clauses` — the tracked clause reduction.
    pub clause_reduction: f64,
}

/// One tracked fraig-equivalence kernel: proving an ISCAS host equivalent to
/// its resynthesised variant through the fraig pipeline versus the legacy
/// monolithic gate-level miter. The machine-portable metric is the speedup
/// ratio, as with the simulation kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct FraigRecord {
    /// Kernel name (`"fraig_eqv_c2670"`, ...).
    pub name: String,
    /// Wall-clock of the monolithic gate-level check, in milliseconds.
    pub gate_level_ms: f64,
    /// Wall-clock of the fraig pipeline, in milliseconds.
    pub fraig_ms: f64,
    /// `gate_level_ms / fraig_ms` — the tracked ratio.
    pub speedup: f64,
    /// SAT queries the fraig pipeline spent.
    pub sat_calls: u64,
    /// Node pairs the fraig sweep proved equal and merged.
    pub proved_merges: u64,
}

/// One tracked SCOPE feature kernel: the full key sweep of the SCOPE attack
/// on a SARLock-locked ISCAS host, dataflow cofactor replay versus the
/// legacy per-bit resynthesis engine. Both engines must produce the same
/// key guess for the record to count (the replay is exact by construction —
/// a mismatch is a correctness bug, not noise), so the machine-portable
/// tracked metrics are the speedup ratio and the agreement flag.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeRecord {
    /// Kernel name (`"scope_aig_c2670"`, ...).
    pub name: String,
    /// Key bits of the locked instance the sweep analysed.
    pub key_bits: u64,
    /// Wall-clock of the legacy resynthesis sweep, in milliseconds.
    pub resynth_ms: f64,
    /// Wall-clock of the dataflow-replay sweep, in milliseconds.
    pub aig_ms: f64,
    /// `resynth_ms / aig_ms` — the tracked ratio.
    pub speedup: f64,
    /// Whether the two engines produced the identical key guess.
    pub matches: bool,
}

/// The tracked scheduler kernel: the same attacks × hosts matrix dispatched
/// once through the static per-worker split and once through the
/// work-stealing scheduler. The machine-portable tracked metric is the
/// makespan ratio (both runs execute in the same process on the same
/// machine), which must never fall meaningfully below 1 — work stealing is
/// only accepted while it is no worse than the static split.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerRecord {
    /// Kernel name (`"scheduler_matrix"`).
    pub name: String,
    /// Jobs the matrix scheduled.
    pub jobs: u64,
    /// Worker threads used.
    pub workers: u64,
    /// Successful steals from another worker's deque.
    pub steals: u64,
    /// Makespan of the static-split dispatch, in milliseconds.
    pub static_ms: f64,
    /// Makespan of the work-stealing dispatch, in milliseconds.
    pub scheduled_ms: f64,
    /// `static_ms / scheduled_ms` — the tracked ratio.
    pub speedup: f64,
    /// Mean queue wait across the scheduled jobs, in milliseconds.
    pub mean_queue_wait_ms: f64,
}

/// One tracked DIP-engine kernel: the CEGAR miter of a random-XOR-locked
/// ISCAS host encoded once per gate (two gate-level circuit copies +
/// `Encoder::miter`) and once through the shared structurally-hashed AIG
/// (`DipEngineKind::Aig`). The encode footprints are exact counts taken
/// straight from the solver after `DipEngine` construction, so the
/// reduction gate is deterministic on any machine; the CEGAR
/// iterations-per-second of each engine is wall-clock telemetry and gates
/// only as a same-OS ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct DipAigRecord {
    /// Kernel name (`"dip_aig_c2670"`, ...).
    pub name: String,
    /// Key bits of the locked instance.
    pub key_bits: u64,
    /// Solver variables after the gate-level engine encoded the miter.
    pub gate_vars: u64,
    /// Solver clauses after the gate-level engine encoded the miter.
    pub gate_clauses: u64,
    /// Solver variables after the AIG engine encoded the miter.
    pub aig_vars: u64,
    /// Solver clauses after the AIG engine encoded the miter.
    pub aig_clauses: u64,
    /// `1 - aig_vars / gate_vars` — the tracked variable reduction.
    pub var_reduction: f64,
    /// `1 - aig_clauses / gate_clauses` — the tracked clause reduction.
    pub clause_reduction: f64,
    /// Full CEGAR loop throughput of the gate-level engine, iterations/s.
    pub gate_iters_per_sec: f64,
    /// Full CEGAR loop throughput of the AIG engine, iterations/s.
    pub aig_iters_per_sec: f64,
}

/// One tracked rewriting kernel: `Aig::rewrite` (4-input cut enumeration +
/// NPN-canonical optimal-subgraph replacement) on an ISCAS host. Node
/// counts are exact and machine-independent, so the reduction gate is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteRecord {
    /// Kernel name (`"rewrite_c2670"`, ...).
    pub name: String,
    /// Live AND nodes before rewriting.
    pub nodes_before: u64,
    /// Live AND nodes after rewriting.
    pub nodes_after: u64,
    /// Logic levels before rewriting.
    pub levels_before: u64,
    /// Logic levels after rewriting.
    pub levels_after: u64,
    /// `1 - nodes_after / nodes_before` — the tracked node reduction.
    pub node_reduction: f64,
}

/// One attack × host cell of the scaled-down bench matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackRecord {
    /// Registry name of the attack.
    pub attack: String,
    /// Case name (`"c2670/SARLock"`, ...).
    pub host: String,
    /// Outcome kind (`"exact-key"`, `"out-of-budget"`, `"error: ..."`).
    pub outcome: String,
    /// Wall-clock of the run, in milliseconds.
    pub wall_ms: f64,
    /// Attack iterations (DIPs, CEGAR rounds, ...).
    pub iterations: u64,
    /// Oracle queries spent.
    pub oracle_queries: u64,
}

/// One tracked portfolio-race kernel: the portfolio attack racing its
/// member engines on one locked scheme × host cell, against each member run
/// solo (as a single-member portfolio, so the solo wall includes the same
/// SAT verification of the claimed key the race pays for its winner). The
/// machine-portable tracked metric is the overhead ratio of the race over
/// its best solo member — all walls come from the same process on the same
/// machine.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioRecord {
    /// Kernel name (`"portfolio_c2670_sarlock"`, ...).
    pub name: String,
    /// Registry names of the raced member engines.
    pub members: Vec<String>,
    /// Registry name of the member that won the race.
    pub winner: String,
    /// Whether the race's winning key claim was SAT-verified exact.
    pub verified: bool,
    /// Wall-clock of the full portfolio race, in milliseconds.
    pub portfolio_ms: f64,
    /// Wall-clock of the fastest solo member that produced a verified
    /// exact key, in milliseconds.
    pub best_member_ms: f64,
    /// Wall-clock of the slowest verified solo member, in milliseconds.
    pub worst_member_ms: f64,
    /// `portfolio_ms / best_member_ms` — the tracked overhead ratio.
    pub overhead: f64,
}

/// One tracked parallel-fraig kernel: the fraig equivalence sweep of an
/// ISCAS host against its resynthesised variant, run with one worker and
/// with [`FRAIG_PAR_WORKERS`]. Both widths must return the same verdict and
/// the same proved-merge count (the sweep is worker-count-invariant by
/// construction — a mismatch is a correctness bug, not noise); the
/// machine-portable tracked metrics are the sweep-stage speedup ratio and
/// the two agreement flags.
#[derive(Debug, Clone, PartialEq)]
pub struct FraigParRecord {
    /// Kernel name (`"fraig_par_c5315"`, ...).
    pub name: String,
    /// Worker threads the parallel sweep ran with.
    pub workers: u64,
    /// Sweep-stage wall-clock of the 1-worker run, in milliseconds.
    pub seq_sweep_ms: f64,
    /// Sweep-stage wall-clock of the parallel run, in milliseconds.
    pub par_sweep_ms: f64,
    /// `seq_sweep_ms / par_sweep_ms` — the tracked ratio.
    pub speedup: f64,
    /// Whether both widths returned the same equivalence verdict.
    pub verdicts_match: bool,
    /// Whether both widths proved the same number of merges.
    pub merges_match: bool,
}

/// Everything `BENCH_results.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResults {
    /// Schema version of the file.
    pub schema: u64,
    /// `std::env::consts::OS` of the producing host.
    pub os: String,
    /// Available parallelism of the producing host.
    pub cpus: u64,
    /// `KRATT_SCALE` the attack matrix ran at.
    pub scale: f64,
    /// Per-attack budget (seconds) the matrix ran with.
    pub budget_secs: f64,
    /// The tracked simulation kernels.
    pub kernels: Vec<KernelRecord>,
    /// The tracked CNF-size kernels (per-gate vs AIG miter encodings).
    pub cnf: Vec<CnfRecord>,
    /// The tracked fraig-equivalence kernels.
    pub fraig: Vec<FraigRecord>,
    /// The tracked SCOPE feature kernels (dataflow replay vs resynthesis).
    pub scope: Vec<ScopeRecord>,
    /// The tracked scheduler kernels (work stealing vs static split).
    pub scheduler: Vec<SchedulerRecord>,
    /// The tracked DIP-engine kernels (AIG vs gate-level CEGAR miters).
    pub dip_aig: Vec<DipAigRecord>,
    /// The tracked rewriting kernels (`Aig::rewrite` node reductions).
    pub rewrite: Vec<RewriteRecord>,
    /// The tracked portfolio-race kernels (race vs solo members).
    pub portfolio: Vec<PortfolioRecord>,
    /// The tracked parallel-fraig kernels (1-worker vs N-worker sweeps).
    pub fraig_par: Vec<FraigParRecord>,
    /// The attack × host telemetry.
    pub attacks: Vec<AttackRecord>,
}

/// Acceptance floor of the CNF kernels: the AIG miter encoding must cut at
/// least this fraction of both variables and clauses, summed over the
/// tracked miter set.
pub const CNF_REDUCTION_FLOOR: f64 = 0.25;

/// Acceptance floor of the SCOPE kernels: the dataflow replay must beat the
/// legacy resynthesis sweep by at least this factor on every tracked host,
/// on any machine (the ratio is a property of the code, not of the clock).
pub const SCOPE_SPEEDUP_FLOOR: f64 = 5.0;

/// Acceptance floor of the scheduler kernel: the work-stealing dispatch may
/// be at most ~25% slower than the static split (ratio ≥ 0.8) — the margin
/// absorbs scheduler noise on shared CI runners while still catching a
/// scheduler that loses to the static split outright. The gate is skipped
/// (with a logged reason) when the record ran on a single worker: without
/// parallelism, work stealing cannot be exercised and the ratio is vacuous.
pub const SCHEDULER_SPEEDUP_FLOOR: f64 = 0.8;

/// Acceptance floor of the DIP-engine kernels: the AIG-side CEGAR miter
/// must cut at least this fraction of both variables and clauses against
/// the gate-level encode on every tracked host (the paper-motivated
/// property — the shared-strash miter is 58–100% smaller).
pub const DIP_ENCODE_REDUCTION_FLOOR: f64 = 0.25;

/// Acceptance floor of the rewriting kernels: `Aig::rewrite` must remove at
/// least this fraction of live AND nodes on every tracked host. Exact node
/// counts, deterministic on any machine.
pub const REWRITE_REDUCTION_FLOOR: f64 = 0.01;

/// Acceptance ceiling of the portfolio kernels: the race may cost at most
/// this factor over its best solo member (the whole point of racing is that
/// first-verified-result cancellation makes losers nearly free). Both walls
/// come from the same process, so the ratio is machine-portable; the gate
/// is skipped on single-CPU runners where the members can only timeslice.
pub const PORTFOLIO_OVERHEAD_CEIL: f64 = 1.25;

/// Acceptance floor of the parallel-fraig kernels: the
/// [`FRAIG_PAR_WORKERS`]-wide sweep must beat the 1-worker sweep by at
/// least this factor. The gate arms only on runners with at least
/// [`FRAIG_PAR_WORKERS`] CPUs (a narrower sweep cannot reach the floor and
/// is reported as a non-fatal note instead).
pub const FRAIG_PAR_SPEEDUP_FLOOR: f64 = 1.5;

/// Worker threads of the parallel fraig sweep kernels (capped by the
/// host's available parallelism at measurement time).
pub const FRAIG_PAR_WORKERS: usize = 4;

/// Times `f` adaptively and noise-robustly: sizes a batch so one batch
/// takes ≥10 ms of wall-clock, then returns the *best* per-call time over
/// several batches (minimum-of-N discards scheduler noise on shared CI
/// runners, which matters because the regression gate compares the
/// scalar/packed ratio across machines). The first (warm-up) call is
/// discarded.
fn time_ms_per_call<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm-up: schedule compilation, caches
    let mut reps = 1u32;
    let reps = loop {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        if start.elapsed().as_millis() >= 10 || reps >= 4096 {
            break reps;
        }
        reps *= 4;
    };
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3 / f64::from(reps));
    }
    best
}

/// Measures the tracked kernels: for each ISCAS host, 64 scalar evaluations
/// versus one packed 64-lane sweep over the same patterns.
pub fn measure_sim_kernels() -> Vec<KernelRecord> {
    IscasCircuit::ALL
        .iter()
        .map(|&host| {
            let circuit = host.generate();
            let sim = Simulator::new(&circuit).expect("ISCAS hosts are acyclic");
            let n = circuit.num_inputs();
            // A fixed, seed-free pattern set: pattern p sets input i to bit
            // (p * (i + 1)) of a fixed word, deterministic across hosts.
            let patterns: Vec<Vec<bool>> = (0..64u64)
                .map(|p| {
                    (0..n)
                        .map(|i| (p.wrapping_mul(i as u64 + 1) ^ p >> 3) & 1 != 0)
                        .collect()
                })
                .collect();
            let words = kratt_netlist::sim::pack_patterns(&patterns);
            let scalar_ms = time_ms_per_call(|| {
                for pattern in &patterns {
                    std::hint::black_box(sim.run(pattern).unwrap());
                }
            });
            let packed_ms = time_ms_per_call(|| {
                std::hint::black_box(sim.run_words(&words).unwrap());
            });
            KernelRecord {
                name: format!("sim_sweep64_{}", host.name()),
                scalar_ms,
                packed_ms,
                speedup: scalar_ms / packed_ms.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// The deterministic miter pair of one CNF/fraig kernel: the ISCAS host and
/// its seed-1 default-effort resynthesised variant (the realistic
/// equivalence workload — structure scrambled, function preserved).
fn miter_pair(host: IscasCircuit) -> (Circuit, Circuit) {
    let original = host.generate();
    let variant = resynthesize(&original, &ResynthesisOptions::with_seed(1))
        .expect("ISCAS hosts resynthesise");
    (original, variant)
}

/// Measures the tracked CNF-size kernels: for each ISCAS host, the
/// equivalence miter against its resynthesised variant encoded per gate and
/// through the AIG. Pure counting — no solving.
pub fn measure_cnf_kernels() -> Vec<CnfRecord> {
    IscasCircuit::ALL
        .iter()
        .map(|&host| {
            let (a, b) = miter_pair(host);

            let mut gate_cnf = Cnf::new();
            let encoder = Encoder::new();
            let enc_a = encoder.encode(&mut gate_cnf, &a, &HashMap::new());
            let shared: HashMap<String, kratt_sat::Var> = enc_a.inputs().iter().cloned().collect();
            let enc_b = encoder.encode(&mut gate_cnf, &b, &shared);
            let miter = encoder.miter(&mut gate_cnf, &enc_a, &enc_b);
            gate_cnf.add_clause([Lit::positive(miter)]);

            let mut aig = Aig::new(format!("{}_miter", host.name()));
            let lits_a = aig
                .lower_circuit(&a, &HashMap::new())
                .expect("ISCAS hosts are acyclic");
            let outs_a: Vec<_> = a.outputs().iter().map(|o| lits_a[o.index()]).collect();
            let lits_b = aig
                .lower_circuit(&b, &HashMap::new())
                .expect("resynthesised variants are acyclic");
            let outs_b: Vec<_> = b.outputs().iter().map(|o| lits_b[o.index()]).collect();
            let diff = aig.miter(&outs_a, &outs_b);
            aig.add_output("diff", diff);
            let mut aig_cnf = Cnf::new();
            let enc = encoder.encode_aig(&mut aig_cnf, &aig, &HashMap::new());
            aig_cnf.add_clause([enc.outputs()[0]]);

            let (gate_vars, gate_clauses) =
                (gate_cnf.num_vars() as u64, gate_cnf.num_clauses() as u64);
            let (aig_vars, aig_clauses) = (aig_cnf.num_vars() as u64, aig_cnf.num_clauses() as u64);
            CnfRecord {
                name: format!("cnf_miter_{}", host.name()),
                gate_vars,
                gate_clauses,
                aig_vars,
                aig_clauses,
                var_reduction: 1.0 - aig_vars as f64 / gate_vars.max(1) as f64,
                clause_reduction: 1.0 - aig_clauses as f64 / gate_clauses.max(1) as f64,
            }
        })
        .collect()
}

/// Gate scale of the fraig timing kernels. Both paths must *complete* for
/// the speedup ratio to be machine-portable (a time-capped baseline would
/// make the ratio depend on the host's absolute speed), and at full scale
/// the monolithic baseline needs minutes per miter — ~100 s on c2670 where
/// the fraig pipeline takes ~0.1 s. A quarter-scale host keeps the baseline
/// in CI territory while preserving the asymmetry being tracked.
const FRAIG_KERNEL_SCALE: f64 = 0.25;

/// Measures the tracked fraig-equivalence kernels: proving each ISCAS host
/// (at [`FRAIG_KERNEL_SCALE`]) equivalent to its resynthesised variant,
/// fraig pipeline versus the monolithic gate-level baseline. One timed call
/// per path (these are whole-proof timings, not micro-kernels); both paths
/// must return `Equivalent` for the record to count. c6288 is excluded: it
/// is always the exact 16×16 multiplier regardless of scale, and a
/// restructured multiplier miter is intractable for the monolithic baseline
/// — which is the headline, not a kernel CI can time.
pub fn measure_fraig_kernels() -> Vec<FraigRecord> {
    [IscasCircuit::C2670, IscasCircuit::C5315]
        .iter()
        .filter_map(|&host| {
            // A dropped kernel fails the CI gate as "missing from current
            // results"; log the root cause here so that failure is
            // diagnosable from the job log alone.
            measure_fraig_kernel(host)
                .map_err(|why| eprintln!("fraig kernel {} dropped: {why}", host.name()))
                .ok()
        })
        .collect()
}

fn measure_fraig_kernel(host: IscasCircuit) -> Result<FraigRecord, String> {
    let a = host.generate_scaled(FRAIG_KERNEL_SCALE);
    let b = resynthesize(&a, &ResynthesisOptions::with_seed(1))
        .map_err(|e| format!("resynthesis failed: {e}"))?;
    // Best-of-3 per path: the solver work is deterministic, so the
    // minimum discards scheduler noise (as with the sim kernels).
    let mut fraig_ms = f64::INFINITY;
    let mut stats = kratt_synth::FraigStats::default();
    let mut result = kratt_synth::EquivalenceResult::Unknown;
    for _ in 0..3 {
        let start = Instant::now();
        let (r, s) = kratt_synth::check_equivalence_with_stats(&a, &b, None, None)
            .map_err(|e| format!("fraig check failed: {e}"))?;
        fraig_ms = fraig_ms.min(start.elapsed().as_secs_f64() * 1e3);
        result = r;
        stats = s;
    }
    let mut gate_level_ms = f64::INFINITY;
    let mut gate_result = kratt_synth::EquivalenceResult::Unknown;
    for _ in 0..3 {
        let start = Instant::now();
        gate_result = kratt_synth::check_equivalence_gate_level(&a, &b, None, None)
            .map_err(|e| format!("gate-level check failed: {e}"))?;
        gate_level_ms = gate_level_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    if !result.is_equivalent() || !gate_result.is_equivalent() {
        return Err(format!(
            "paths disagree or did not prove equivalence (fraig {result:?}, gate-level {gate_result:?})"
        ));
    }
    Ok(FraigRecord {
        name: format!("fraig_eqv_{}", host.name()),
        gate_level_ms,
        fraig_ms,
        speedup: gate_level_ms / fraig_ms.max(f64::MIN_POSITIVE),
        sat_calls: stats.sat_calls as u64,
        proved_merges: stats.proved_merges as u64,
    })
}

/// Gate scale of the SCOPE feature kernels. The legacy engine rebuilds the
/// whole netlist twice per key bit, so a full-scale host would spend CI
/// minutes measuring the baseline being replaced; a quarter-scale host
/// keeps the sweep in seconds while preserving the asymmetry being tracked.
const SCOPE_KERNEL_SCALE: f64 = 0.25;

/// Key bits of the SARLock instance the SCOPE kernels sweep.
const SCOPE_KERNEL_KEY_BITS: u64 = 16;

/// Measures the tracked SCOPE feature kernels: the full key sweep on a
/// SARLock-locked ISCAS host (at [`SCOPE_KERNEL_SCALE`]), dataflow cofactor
/// replay versus the legacy per-bit resynthesis engine, best-of-3 per path.
pub fn measure_scope_kernels() -> Vec<ScopeRecord> {
    [IscasCircuit::C2670, IscasCircuit::C5315]
        .iter()
        .filter_map(|&host| {
            // As with the fraig kernels: a dropped record fails the CI gate
            // as "missing", so the root cause must reach the job log.
            measure_scope_kernel(host)
                .map_err(|why| eprintln!("scope kernel {} dropped: {why}", host.name()))
                .ok()
        })
        .collect()
}

fn measure_scope_kernel(host: IscasCircuit) -> Result<ScopeRecord, String> {
    let original = host.generate_scaled(SCOPE_KERNEL_SCALE);
    let spec = SchemeSpec::new("sarlock")
        .map_err(|e| format!("sarlock is not registered: {e}"))?
        .with_param("k", SCOPE_KERNEL_KEY_BITS)
        .with_param("seed", 0x5c0e);
    let locked = kratt_locking::scheme_registry()
        .lock(&spec, &original)
        .map_err(|e| format!("locking failed: {e}"))?;
    let names = locked.circuit.key_input_names();
    let request = AttackRequest::oracle_less(&locked.circuit).with_budget(Budget::unlimited());
    let mut aig_ms = f64::INFINITY;
    let mut aig_guess = None;
    for _ in 0..3 {
        let start = Instant::now();
        let run = ScopeAttack::new()
            .execute(&request)
            .map_err(|e| format!("dataflow sweep failed: {e}"))?;
        aig_ms = aig_ms.min(start.elapsed().as_secs_f64() * 1e3);
        aig_guess = Some(run.outcome.as_guess(&names));
    }
    let mut resynth_ms = f64::INFINITY;
    let mut resynth_guess = None;
    for _ in 0..3 {
        let start = Instant::now();
        let run = ScopeAttack::resynthesis()
            .execute(&request)
            .map_err(|e| format!("resynthesis sweep failed: {e}"))?;
        resynth_ms = resynth_ms.min(start.elapsed().as_secs_f64() * 1e3);
        resynth_guess = Some(run.outcome.as_guess(&names));
    }
    Ok(ScopeRecord {
        name: format!("scope_aig_{}", host.name()),
        key_bits: SCOPE_KERNEL_KEY_BITS,
        resynth_ms,
        aig_ms,
        speedup: resynth_ms / aig_ms.max(f64::MIN_POSITIVE),
        matches: aig_guess == resynth_guess,
    })
}

/// Gate scale of the DIP-engine kernels, matching the SCOPE kernels: a
/// quarter-scale host keeps three full CEGAR runs per engine in CI
/// territory while preserving the encode-size asymmetry being tracked.
const DIP_KERNEL_SCALE: f64 = 0.25;

/// Key bits of the random-XOR-locked instance the DIP kernels attack.
const DIP_KERNEL_KEY_BITS: usize = 16;

/// Measures the tracked DIP-engine kernels: the CEGAR miter of a
/// random-XOR-locked ISCAS host (at [`DIP_KERNEL_SCALE`]) encoded by the
/// gate-level and the AIG engine (exact solver footprints straight from
/// `DipEngine` construction), plus the full key-recovery loop of each
/// engine timed best-of-3 for the iterations-per-second telemetry.
pub fn measure_dip_kernels() -> Vec<DipAigRecord> {
    [IscasCircuit::C2670, IscasCircuit::C5315]
        .iter()
        .filter_map(|&host| {
            // As with the fraig/scope kernels: a dropped record fails the
            // CI gate as "missing", so the root cause must reach the log.
            measure_dip_kernel(host)
                .map_err(|why| eprintln!("dip_aig kernel {} dropped: {why}", host.name()))
                .ok()
        })
        .collect()
}

fn measure_dip_kernel(host: IscasCircuit) -> Result<DipAigRecord, String> {
    let original = host.generate_scaled(DIP_KERNEL_SCALE);
    let secret = SecretKey::from_u64(0xA55A, DIP_KERNEL_KEY_BITS);
    let locked = RandomXorLocking::new(DIP_KERNEL_KEY_BITS, 0xd1f)
        .lock(&original, &secret)
        .map_err(|e| format!("locking failed: {e}"))?;
    let oracle = Oracle::new(original.clone()).map_err(|e| format!("oracle failed: {e}"))?;
    let gate = measure_dip_encoding(&locked.circuit, &oracle, DipEngineKind::Gate)
        .map_err(|e| format!("gate-level encode failed: {e}"))?;
    let aig = measure_dip_encoding(&locked.circuit, &oracle, DipEngineKind::Aig)
        .map_err(|e| format!("AIG encode failed: {e}"))?;
    let iters_per_sec = |engine: DipEngineKind| -> Result<f64, String> {
        // Best-of-3 like the other timing kernels: the CEGAR loop is
        // deterministic, the maximum discards scheduler noise.
        let mut best = 0.0f64;
        for _ in 0..3 {
            let request = AttackRequest::oracle_guided(&locked.circuit, &oracle);
            let run = SatAttack::new()
                .with_engine(engine)
                .execute(&request)
                .map_err(|e| format!("{} CEGAR run failed: {e}", engine.name()))?;
            if run.outcome.exact_key().is_none() {
                return Err(format!(
                    "{} engine did not recover a key ({})",
                    engine.name(),
                    run.outcome.kind()
                ));
            }
            let secs = run.runtime.as_secs_f64().max(f64::MIN_POSITIVE);
            best = best.max(run.iterations as f64 / secs);
        }
        Ok(best)
    };
    let gate_iters_per_sec = iters_per_sec(DipEngineKind::Gate)?;
    let aig_iters_per_sec = iters_per_sec(DipEngineKind::Aig)?;
    Ok(DipAigRecord {
        name: format!("dip_aig_{}", host.name()),
        key_bits: DIP_KERNEL_KEY_BITS as u64,
        gate_vars: gate.vars as u64,
        gate_clauses: gate.clauses as u64,
        aig_vars: aig.vars as u64,
        aig_clauses: aig.clauses as u64,
        var_reduction: 1.0 - aig.vars as f64 / gate.vars.max(1) as f64,
        clause_reduction: 1.0 - aig.clauses as f64 / gate.clauses.max(1) as f64,
        gate_iters_per_sec,
        aig_iters_per_sec,
    })
}

/// Measures the tracked rewriting kernels: `Aig::rewrite` on every ISCAS
/// host, exact live-node counts before and after. Pure structure — no
/// timing, no solving.
pub fn measure_rewrite_kernels() -> Vec<RewriteRecord> {
    IscasCircuit::ALL
        .iter()
        .map(|&host| {
            let aig = Aig::from_circuit(&host.generate()).expect("ISCAS hosts are acyclic");
            let before = aig.stats();
            let after = aig.rewrite().stats();
            RewriteRecord {
                name: format!("rewrite_{}", host.name()),
                nodes_before: before.ands as u64,
                nodes_after: after.ands as u64,
                levels_before: before.levels as u64,
                levels_after: after.levels as u64,
                node_reduction: 1.0 - after.ands as f64 / before.ands.max(1) as f64,
            }
        })
        .collect()
}

/// Gate scale of the portfolio kernels, matching the SCOPE/DIP kernels: a
/// quarter-scale host keeps several full attack runs per cell in CI
/// territory while preserving the engine asymmetry being raced.
const PORTFOLIO_KERNEL_SCALE: f64 = 0.25;

/// Wall-clock safety cap per attack run of the portfolio kernels. The
/// tracked cells finish in seconds; the cap only turns a hung engine into
/// a dropped (and logged) record instead of a stalled CI job.
const PORTFOLIO_KERNEL_BUDGET: Duration = Duration::from_secs(60);

/// Measures the tracked portfolio-race kernels: on each tracked scheme ×
/// host cell, the default-member portfolio race against each member run
/// solo. Solo members run as single-member portfolios so their wall
/// includes the identical SAT verification of the claimed key — the
/// overhead ratio compares like against like.
pub fn measure_portfolio_kernels() -> Vec<PortfolioRecord> {
    [
        (IscasCircuit::C2670, "sarlock", 8u64),
        (IscasCircuit::C2670, "rll", 16u64),
    ]
    .iter()
    .filter_map(|&(host, scheme, key_bits)| {
        // As with the fraig/scope kernels: a dropped record fails the CI
        // gate as "missing", so the root cause must reach the job log.
        measure_portfolio_kernel(host, scheme, key_bits)
            .map_err(|why| eprintln!("portfolio kernel {}_{scheme} dropped: {why}", host.name()))
            .ok()
    })
    .collect()
}

/// One timed portfolio execution: the race wall plus whether the winning
/// claim was verified and who won. Best-of-2 — the runs are seconds-long
/// attacks, not micro-kernels, so two samples bound scheduler noise
/// without tripling the suite's wall-clock.
fn time_portfolio(
    portfolio: &PortfolioAttack,
    request: &AttackRequest,
) -> Result<(f64, bool, String), String> {
    let mut best_ms = f64::INFINITY;
    let mut verified = false;
    let mut winner = String::new();
    for _ in 0..2 {
        let run = portfolio
            .execute(request)
            .map_err(|e| format!("portfolio run failed: {e}"))?;
        let member = run
            .winning_member()
            .ok_or("race finished without a winning member")?;
        let ms = run.runtime.as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            verified = member.verified;
            winner = member.name.clone();
        }
    }
    Ok((best_ms, verified, winner))
}

fn measure_portfolio_kernel(
    host: IscasCircuit,
    scheme: &str,
    key_bits: u64,
) -> Result<PortfolioRecord, String> {
    let original = host.generate_scaled(PORTFOLIO_KERNEL_SCALE);
    let spec = SchemeSpec::new(scheme)
        .map_err(|e| format!("{scheme} is not registered: {e}"))?
        .with_param("k", key_bits)
        .with_param("seed", 0x90f7);
    let locked = kratt_locking::scheme_registry()
        .lock(&spec, &original)
        .map_err(|e| format!("locking failed: {e}"))?;
    let oracle = Oracle::new(original.clone()).map_err(|e| format!("oracle failed: {e}"))?;
    let request = AttackRequest::oracle_guided(&locked.circuit, &oracle)
        .with_budget(Budget::with_time_limit(PORTFOLIO_KERNEL_BUDGET));

    let registry = kratt::attack_registry();
    let members: Vec<String> = kratt_attacks::portfolio::DEFAULT_MEMBERS
        .iter()
        .map(|name| name.to_string())
        .collect();
    let race = PortfolioAttack::from_registry(&registry, &members)
        .map_err(|e| format!("portfolio setup failed: {e}"))?;
    let (portfolio_ms, verified, winner) = time_portfolio(&race, &request)?;
    if !verified {
        return Err(format!(
            "the race's winning claim (member {winner}) was not verified"
        ));
    }

    // Best and worst are taken over the solo members that produced a
    // *verified* exact key: a member that settles for an approximate guess
    // (AppSAT's contract) finishes early but has not solved the cell, so
    // its wall is not a meaningful baseline for the race. A solo that
    // errors outright (KRATT's structural pipeline refusing random XOR
    // locking, say) is skipped the same way the race absorbs it.
    let mut best_member_ms = f64::INFINITY;
    let mut worst_member_ms: f64 = 0.0;
    for member in &members {
        let solo = PortfolioAttack::from_registry(&registry, std::slice::from_ref(member))
            .map_err(|e| format!("solo {member} setup failed: {e}"))?;
        let Ok((solo_ms, solo_verified, _)) = time_portfolio(&solo, &request) else {
            continue;
        };
        if solo_verified {
            best_member_ms = best_member_ms.min(solo_ms);
            worst_member_ms = worst_member_ms.max(solo_ms);
        }
    }
    if !best_member_ms.is_finite() {
        return Err("no solo member produced a verified exact key".to_string());
    }
    Ok(PortfolioRecord {
        name: format!("portfolio_{}_{scheme}", host.name()),
        members,
        winner,
        verified,
        portfolio_ms,
        best_member_ms,
        worst_member_ms,
        overhead: portfolio_ms / best_member_ms.max(f64::MIN_POSITIVE),
    })
}

/// Measures the tracked parallel-fraig kernels: the fraig sweep of each
/// full-scale ISCAS host against its resynthesised variant, 1 worker versus
/// [`FRAIG_PAR_WORKERS`] (capped by the host's parallelism), best-of-3 on
/// the sweep-stage wall alone. Both widths must agree on the verdict and on
/// the proved-merge count for the record to count.
pub fn measure_fraig_par_kernels() -> Vec<FraigParRecord> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(FRAIG_PAR_WORKERS);
    if workers <= 1 {
        eprintln!(
            "fraig_par kernels: only 1 CPU available — the sweep cannot be widened, \
             the >= {FRAIG_PAR_SPEEDUP_FLOOR}x gate will be skipped"
        );
    }
    [IscasCircuit::C2670, IscasCircuit::C5315]
        .iter()
        .filter_map(|&host| {
            measure_fraig_par_kernel(host, workers)
                .map_err(|why| eprintln!("fraig_par kernel {} dropped: {why}", host.name()))
                .ok()
        })
        .collect()
}

fn measure_fraig_par_kernel(host: IscasCircuit, workers: usize) -> Result<FraigParRecord, String> {
    // Full scale, unlike the fraig speedup kernels: there is no monolithic
    // gate-level baseline to wait for here, and the sweep needs enough
    // candidate classes for the partition to mean anything.
    let (a, b) = miter_pair(host);
    let sweep = |width: usize| -> Result<(f64, bool, u64), String> {
        let mut best_ms = f64::INFINITY;
        let mut equivalent = false;
        let mut merges = 0u64;
        for _ in 0..3 {
            let (result, stats) =
                kratt_synth::check_equivalence_with_stats_workers(&a, &b, None, None, width)
                    .map_err(|e| format!("{width}-worker sweep failed: {e}"))?;
            best_ms = best_ms.min(stats.sweep_time.as_secs_f64() * 1e3);
            equivalent = result.is_equivalent();
            merges = stats.proved_merges as u64;
        }
        Ok((best_ms, equivalent, merges))
    };
    let (seq_sweep_ms, seq_equivalent, seq_merges) = sweep(1)?;
    let (par_sweep_ms, par_equivalent, par_merges) = sweep(workers)?;
    if !seq_equivalent {
        return Err("the sequential sweep did not prove equivalence".to_string());
    }
    Ok(FraigParRecord {
        name: format!("fraig_par_{}", host.name()),
        workers: workers as u64,
        seq_sweep_ms,
        par_sweep_ms,
        speedup: seq_sweep_ms / par_sweep_ms.max(f64::MIN_POSITIVE),
        verdicts_match: seq_equivalent == par_equivalent,
        merges_match: seq_merges == par_merges,
    })
}

/// Measures the tracked scheduler kernel: the full attack matrix dispatched
/// once through the static per-worker split and once through the
/// work-stealing scheduler, on identical pre-built cases. Locking and
/// synthesis happen before the clock starts, so the makespans compare pure
/// dispatch + attack time.
///
/// # Errors
///
/// Returns an error naming the offending entry if an attack name is not
/// registered.
pub fn measure_scheduler_kernels(
    attack_names: &[String],
    options: &ExperimentOptions,
) -> Result<Vec<SchedulerRecord>, String> {
    let attacks = build_attacks(attack_names)?;
    // Pin the worker count: an unbounded `Harness::new()` made the record's
    // speedup depend on the runner's core count, and on wide machines the
    // static split already saturates. Four workers exercise stealing
    // without oversubscribing CI runners; on a single-CPU host the ratio
    // is vacuous and `compare` skips the gate (log why here).
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);
    if workers <= 1 {
        eprintln!(
            "scheduler kernel: only 1 CPU available — work stealing cannot be exercised, \
             the >= {SCHEDULER_SPEEDUP_FLOOR} static-split gate will be skipped"
        );
    }
    let harness = Harness::with_workers(workers);
    let (cases, budget) = crate::experiments::matrix_cases(options);
    let start = Instant::now();
    let static_rows = harness.run_matrix(&attacks, &cases, &budget);
    let static_ms = start.elapsed().as_secs_f64() * 1e3;
    let report = harness.run_matrix_scheduled(
        &attacks,
        &cases[..],
        &budget,
        &kratt_attacks::ScheduleOptions::default(),
    );
    let stats = report.stats;
    let scheduled_ms = stats.makespan.as_secs_f64() * 1e3;
    let waits: Vec<f64> = report
        .rows
        .iter()
        .flatten()
        .map(|row| row.telemetry.queue_wait.as_secs_f64() * 1e3)
        .collect();
    let mean_queue_wait_ms = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    Ok(vec![SchedulerRecord {
        name: "scheduler_matrix".to_string(),
        jobs: static_rows.len() as u64,
        workers: stats.workers as u64,
        steals: stats.steals as u64,
        static_ms,
        scheduled_ms,
        speedup: static_ms / scheduled_ms.max(f64::MIN_POSITIVE),
        mean_queue_wait_ms,
    }])
}

/// Builds the named attacks from the registry, or reports the first
/// unknown name together with the valid ones. Called *before* any
/// expensive measurement so a `KRATT_ATTACKS` typo fails fast.
fn build_attacks(attack_names: &[String]) -> Result<Vec<Box<dyn kratt_attacks::Attack>>, String> {
    let registry = kratt::attack_registry();
    attack_names
        .iter()
        .map(|name| {
            registry
                .build(name)
                .map_err(|e| format!("{e} (known attacks: {})", registry.names().join(", ")))
        })
        .collect()
}

/// Runs the scaled-down attack matrix (the same cases as the `matrix`
/// binary) and flattens the rows into [`AttackRecord`]s.
///
/// # Errors
///
/// Returns an error naming the offending entry if an attack name is not
/// registered.
pub fn measure_attack_matrix(
    attack_names: &[String],
    options: &ExperimentOptions,
) -> Result<Vec<AttackRecord>, String> {
    let attacks = build_attacks(attack_names)?;
    let harness = Harness::new();
    let (_cases, rows) = crate::run_attack_matrix(&harness, &attacks, options);
    Ok(rows
        .into_iter()
        .map(|row| match row.result {
            Ok(run) => AttackRecord {
                attack: row.attack,
                host: row.case,
                outcome: run.outcome.kind().to_string(),
                wall_ms: run.runtime.as_secs_f64() * 1e3,
                iterations: run.iterations as u64,
                oracle_queries: run.oracle_queries,
            },
            Err(e) => AttackRecord {
                attack: row.attack,
                host: row.case,
                outcome: format!("error: {e}"),
                wall_ms: 0.0,
                iterations: 0,
                oracle_queries: 0,
            },
        })
        .collect())
}

/// Runs the full suite: tracked kernels plus the attack matrix for the
/// given registry names, under the scale/budget read from the environment
/// by [`crate::options_from_env`]. Attack names are validated *before* the
/// kernel measurements so a `KRATT_ATTACKS` typo fails in milliseconds.
///
/// # Errors
///
/// Returns an error naming the offending entry if an attack name is not
/// registered.
pub fn run_bench_suite(
    attack_names: &[String],
    options: &ExperimentOptions,
) -> Result<BenchResults, String> {
    build_attacks(attack_names)?;
    Ok(BenchResults {
        schema: 6,
        os: std::env::consts::OS.to_string(),
        cpus: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        scale: options.scale,
        budget_secs: options.baseline_budget.as_secs_f64(),
        kernels: measure_sim_kernels(),
        cnf: measure_cnf_kernels(),
        fraig: measure_fraig_kernels(),
        scope: measure_scope_kernels(),
        scheduler: measure_scheduler_kernels(attack_names, options)?,
        dip_aig: measure_dip_kernels(),
        rewrite: measure_rewrite_kernels(),
        portfolio: measure_portfolio_kernels(),
        fraig_par: measure_fraig_par_kernels(),
        attacks: measure_attack_matrix(attack_names, options)?,
    })
}

/// Checks that every name resolves in the attack registry without running
/// anything — callers invoke this before long measurements.
///
/// # Errors
///
/// Returns an error naming the offending entry and the valid names.
pub fn validate_attacks(attack_names: &[String]) -> Result<(), String> {
    build_attacks(attack_names).map(|_| ())
}

/// The attack names of the tracked matrix: `KRATT_ATTACKS` (comma-separated
/// registry names) with the bench default of `kratt,sat`.
pub fn tracked_attacks_from_env() -> Vec<String> {
    std::env::var("KRATT_ATTACKS")
        .unwrap_or_else(|_| "kratt,sat".to_string())
        .split(',')
        .map(|name| name.trim().to_string())
        .filter(|name| !name.is_empty())
        .collect()
}

impl BenchResults {
    /// Renders the results as pretty-printed JSON. Hand-rolled because the
    /// workspace is offline (no serde); [`BenchResults::from_json`] parses
    /// exactly this shape back.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"os\": {},", json_string(&self.os));
        let _ = writeln!(out, "  \"cpus\": {},", self.cpus);
        let _ = writeln!(out, "  \"scale\": {},", json_number(self.scale));
        let _ = writeln!(out, "  \"budget_secs\": {},", json_number(self.budget_secs));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"scalar_ms\": {}, \"packed_ms\": {}, \"speedup\": {}}}",
                json_string(&k.name),
                json_number(k.scalar_ms),
                json_number(k.packed_ms),
                json_number(k.speedup)
            );
            out.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"cnf\": [\n");
        for (i, k) in self.cnf.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"gate_vars\": {}, \"gate_clauses\": {}, \"aig_vars\": {}, \
                 \"aig_clauses\": {}, \"var_reduction\": {}, \"clause_reduction\": {}}}",
                json_string(&k.name),
                k.gate_vars,
                k.gate_clauses,
                k.aig_vars,
                k.aig_clauses,
                json_number(k.var_reduction),
                json_number(k.clause_reduction)
            );
            out.push_str(if i + 1 < self.cnf.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n  \"fraig\": [\n");
        for (i, k) in self.fraig.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"gate_level_ms\": {}, \"fraig_ms\": {}, \"speedup\": {}, \
                 \"sat_calls\": {}, \"proved_merges\": {}}}",
                json_string(&k.name),
                json_number(k.gate_level_ms),
                json_number(k.fraig_ms),
                json_number(k.speedup),
                k.sat_calls,
                k.proved_merges
            );
            out.push_str(if i + 1 < self.fraig.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"scope\": [\n");
        for (i, k) in self.scope.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"key_bits\": {}, \"resynth_ms\": {}, \"aig_ms\": {}, \
                 \"speedup\": {}, \"matches\": {}}}",
                json_string(&k.name),
                k.key_bits,
                json_number(k.resynth_ms),
                json_number(k.aig_ms),
                json_number(k.speedup),
                k.matches
            );
            out.push_str(if i + 1 < self.scope.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"scheduler\": [\n");
        for (i, k) in self.scheduler.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"jobs\": {}, \"workers\": {}, \"steals\": {}, \
                 \"static_ms\": {}, \"scheduled_ms\": {}, \"speedup\": {}, \
                 \"mean_queue_wait_ms\": {}}}",
                json_string(&k.name),
                k.jobs,
                k.workers,
                k.steals,
                json_number(k.static_ms),
                json_number(k.scheduled_ms),
                json_number(k.speedup),
                json_number(k.mean_queue_wait_ms)
            );
            out.push_str(if i + 1 < self.scheduler.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"dip_aig\": [\n");
        for (i, k) in self.dip_aig.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"key_bits\": {}, \"gate_vars\": {}, \"gate_clauses\": {}, \
                 \"aig_vars\": {}, \"aig_clauses\": {}, \"var_reduction\": {}, \
                 \"clause_reduction\": {}, \"gate_iters_per_sec\": {}, \
                 \"aig_iters_per_sec\": {}}}",
                json_string(&k.name),
                k.key_bits,
                k.gate_vars,
                k.gate_clauses,
                k.aig_vars,
                k.aig_clauses,
                json_number(k.var_reduction),
                json_number(k.clause_reduction),
                json_number(k.gate_iters_per_sec),
                json_number(k.aig_iters_per_sec)
            );
            out.push_str(if i + 1 < self.dip_aig.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"rewrite\": [\n");
        for (i, k) in self.rewrite.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"nodes_before\": {}, \"nodes_after\": {}, \
                 \"levels_before\": {}, \"levels_after\": {}, \"node_reduction\": {}}}",
                json_string(&k.name),
                k.nodes_before,
                k.nodes_after,
                k.levels_before,
                k.levels_after,
                json_number(k.node_reduction)
            );
            out.push_str(if i + 1 < self.rewrite.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"portfolio\": [\n");
        for (i, k) in self.portfolio.iter().enumerate() {
            let members = k
                .members
                .iter()
                .map(|m| json_string(m))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                out,
                "    {{\"name\": {}, \"members\": [{members}], \"winner\": {}, \
                 \"verified\": {}, \"portfolio_ms\": {}, \"best_member_ms\": {}, \
                 \"worst_member_ms\": {}, \"overhead\": {}}}",
                json_string(&k.name),
                json_string(&k.winner),
                k.verified,
                json_number(k.portfolio_ms),
                json_number(k.best_member_ms),
                json_number(k.worst_member_ms),
                json_number(k.overhead)
            );
            out.push_str(if i + 1 < self.portfolio.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"fraig_par\": [\n");
        for (i, k) in self.fraig_par.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"workers\": {}, \"seq_sweep_ms\": {}, \
                 \"par_sweep_ms\": {}, \"speedup\": {}, \"verdicts_match\": {}, \
                 \"merges_match\": {}}}",
                json_string(&k.name),
                k.workers,
                json_number(k.seq_sweep_ms),
                json_number(k.par_sweep_ms),
                json_number(k.speedup),
                k.verdicts_match,
                k.merges_match
            );
            out.push_str(if i + 1 < self.fraig_par.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"attacks\": [\n");
        for (i, a) in self.attacks.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"attack\": {}, \"host\": {}, \"outcome\": {}, \"wall_ms\": {}, \
                 \"iterations\": {}, \"oracle_queries\": {}}}",
                json_string(&a.attack),
                json_string(&a.host),
                json_string(&a.outcome),
                json_number(a.wall_ms),
                a.iterations,
                a.oracle_queries
            );
            out.push_str(if i + 1 < self.attacks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parses a `BENCH_*.json` file produced by [`BenchResults::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let top = value.as_object()?;
        let kernels = top
            .get("kernels")
            .ok_or("missing `kernels`")?
            .as_array()?
            .iter()
            .map(|k| {
                let k = k.as_object()?;
                Ok(KernelRecord {
                    name: k.get("name").ok_or("missing kernel `name`")?.as_str()?,
                    scalar_ms: k
                        .get("scalar_ms")
                        .ok_or("missing `scalar_ms`")?
                        .as_number()?,
                    packed_ms: k
                        .get("packed_ms")
                        .ok_or("missing `packed_ms`")?
                        .as_number()?,
                    speedup: k.get("speedup").ok_or("missing `speedup`")?.as_number()?,
                })
            })
            .collect::<Result<_, String>>()?;
        let cnf = match top.get("cnf") {
            // Absent in schema-1 files; an empty set simply tracks nothing.
            None => Vec::new(),
            Some(value) => value
                .as_array()?
                .iter()
                .map(|k| {
                    let k = k.as_object()?;
                    let number = |field: &str| -> Result<f64, String> {
                        k.get(field)
                            .ok_or(format!("missing `{field}`"))?
                            .as_number()
                    };
                    Ok(CnfRecord {
                        name: k.get("name").ok_or("missing cnf `name`")?.as_str()?,
                        gate_vars: number("gate_vars")? as u64,
                        gate_clauses: number("gate_clauses")? as u64,
                        aig_vars: number("aig_vars")? as u64,
                        aig_clauses: number("aig_clauses")? as u64,
                        var_reduction: number("var_reduction")?,
                        clause_reduction: number("clause_reduction")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let fraig = match top.get("fraig") {
            None => Vec::new(),
            Some(value) => value
                .as_array()?
                .iter()
                .map(|k| {
                    let k = k.as_object()?;
                    let number = |field: &str| -> Result<f64, String> {
                        k.get(field)
                            .ok_or(format!("missing `{field}`"))?
                            .as_number()
                    };
                    Ok(FraigRecord {
                        name: k.get("name").ok_or("missing fraig `name`")?.as_str()?,
                        gate_level_ms: number("gate_level_ms")?,
                        fraig_ms: number("fraig_ms")?,
                        speedup: number("speedup")?,
                        sat_calls: number("sat_calls")? as u64,
                        proved_merges: number("proved_merges")? as u64,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let scope = match top.get("scope") {
            // Absent in schema-2 files; an empty set simply tracks nothing.
            None => Vec::new(),
            Some(value) => value
                .as_array()?
                .iter()
                .map(|k| {
                    let k = k.as_object()?;
                    let number = |field: &str| -> Result<f64, String> {
                        k.get(field)
                            .ok_or(format!("missing `{field}`"))?
                            .as_number()
                    };
                    Ok(ScopeRecord {
                        name: k.get("name").ok_or("missing scope `name`")?.as_str()?,
                        key_bits: number("key_bits")? as u64,
                        resynth_ms: number("resynth_ms")?,
                        aig_ms: number("aig_ms")?,
                        speedup: number("speedup")?,
                        matches: k.get("matches").ok_or("missing `matches`")?.as_bool()?,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let scheduler = match top.get("scheduler") {
            // Absent in schema-3 files; an empty set simply tracks nothing.
            None => Vec::new(),
            Some(value) => value
                .as_array()?
                .iter()
                .map(|k| {
                    let k = k.as_object()?;
                    let number = |field: &str| -> Result<f64, String> {
                        k.get(field)
                            .ok_or(format!("missing `{field}`"))?
                            .as_number()
                    };
                    Ok(SchedulerRecord {
                        name: k.get("name").ok_or("missing scheduler `name`")?.as_str()?,
                        jobs: number("jobs")? as u64,
                        workers: number("workers")? as u64,
                        steals: number("steals")? as u64,
                        static_ms: number("static_ms")?,
                        scheduled_ms: number("scheduled_ms")?,
                        speedup: number("speedup")?,
                        mean_queue_wait_ms: number("mean_queue_wait_ms")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let dip_aig = match top.get("dip_aig") {
            // Absent in schema-4 files; an empty set simply tracks nothing.
            None => Vec::new(),
            Some(value) => value
                .as_array()?
                .iter()
                .map(|k| {
                    let k = k.as_object()?;
                    let number = |field: &str| -> Result<f64, String> {
                        k.get(field)
                            .ok_or(format!("missing `{field}`"))?
                            .as_number()
                    };
                    Ok(DipAigRecord {
                        name: k.get("name").ok_or("missing dip_aig `name`")?.as_str()?,
                        key_bits: number("key_bits")? as u64,
                        gate_vars: number("gate_vars")? as u64,
                        gate_clauses: number("gate_clauses")? as u64,
                        aig_vars: number("aig_vars")? as u64,
                        aig_clauses: number("aig_clauses")? as u64,
                        var_reduction: number("var_reduction")?,
                        clause_reduction: number("clause_reduction")?,
                        gate_iters_per_sec: number("gate_iters_per_sec")?,
                        aig_iters_per_sec: number("aig_iters_per_sec")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let rewrite = match top.get("rewrite") {
            // Absent in schema-4 files; an empty set simply tracks nothing.
            None => Vec::new(),
            Some(value) => value
                .as_array()?
                .iter()
                .map(|k| {
                    let k = k.as_object()?;
                    let number = |field: &str| -> Result<f64, String> {
                        k.get(field)
                            .ok_or(format!("missing `{field}`"))?
                            .as_number()
                    };
                    Ok(RewriteRecord {
                        name: k.get("name").ok_or("missing rewrite `name`")?.as_str()?,
                        nodes_before: number("nodes_before")? as u64,
                        nodes_after: number("nodes_after")? as u64,
                        levels_before: number("levels_before")? as u64,
                        levels_after: number("levels_after")? as u64,
                        node_reduction: number("node_reduction")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let portfolio = match top.get("portfolio") {
            // Absent in schema-5 files; an empty set simply tracks nothing.
            None => Vec::new(),
            Some(value) => value
                .as_array()?
                .iter()
                .map(|k| {
                    let k = k.as_object()?;
                    let number = |field: &str| -> Result<f64, String> {
                        k.get(field)
                            .ok_or(format!("missing `{field}`"))?
                            .as_number()
                    };
                    Ok(PortfolioRecord {
                        name: k.get("name").ok_or("missing portfolio `name`")?.as_str()?,
                        members: k
                            .get("members")
                            .ok_or("missing `members`")?
                            .as_array()?
                            .iter()
                            .map(|m| m.as_str())
                            .collect::<Result<_, String>>()?,
                        winner: k.get("winner").ok_or("missing `winner`")?.as_str()?,
                        verified: k.get("verified").ok_or("missing `verified`")?.as_bool()?,
                        portfolio_ms: number("portfolio_ms")?,
                        best_member_ms: number("best_member_ms")?,
                        worst_member_ms: number("worst_member_ms")?,
                        overhead: number("overhead")?,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let fraig_par = match top.get("fraig_par") {
            // Absent in schema-5 files; an empty set simply tracks nothing.
            None => Vec::new(),
            Some(value) => value
                .as_array()?
                .iter()
                .map(|k| {
                    let k = k.as_object()?;
                    let number = |field: &str| -> Result<f64, String> {
                        k.get(field)
                            .ok_or(format!("missing `{field}`"))?
                            .as_number()
                    };
                    Ok(FraigParRecord {
                        name: k.get("name").ok_or("missing fraig_par `name`")?.as_str()?,
                        workers: number("workers")? as u64,
                        seq_sweep_ms: number("seq_sweep_ms")?,
                        par_sweep_ms: number("par_sweep_ms")?,
                        speedup: number("speedup")?,
                        verdicts_match: k
                            .get("verdicts_match")
                            .ok_or("missing `verdicts_match`")?
                            .as_bool()?,
                        merges_match: k
                            .get("merges_match")
                            .ok_or("missing `merges_match`")?
                            .as_bool()?,
                    })
                })
                .collect::<Result<_, String>>()?,
        };
        let attacks = top
            .get("attacks")
            .ok_or("missing `attacks`")?
            .as_array()?
            .iter()
            .map(|a| {
                let a = a.as_object()?;
                Ok(AttackRecord {
                    attack: a.get("attack").ok_or("missing `attack`")?.as_str()?,
                    host: a.get("host").ok_or("missing `host`")?.as_str()?,
                    outcome: a.get("outcome").ok_or("missing `outcome`")?.as_str()?,
                    wall_ms: a.get("wall_ms").ok_or("missing `wall_ms`")?.as_number()?,
                    iterations: a
                        .get("iterations")
                        .ok_or("missing `iterations`")?
                        .as_number()? as u64,
                    oracle_queries: a
                        .get("oracle_queries")
                        .ok_or("missing `oracle_queries`")?
                        .as_number()? as u64,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(BenchResults {
            schema: top.get("schema").ok_or("missing `schema`")?.as_number()? as u64,
            os: top.get("os").ok_or("missing `os`")?.as_str()?,
            cpus: top.get("cpus").ok_or("missing `cpus`")?.as_number()? as u64,
            scale: top.get("scale").ok_or("missing `scale`")?.as_number()?,
            budget_secs: top
                .get("budget_secs")
                .ok_or("missing `budget_secs`")?
                .as_number()?,
            kernels,
            cnf,
            fraig,
            scope,
            scheduler,
            dip_aig,
            rewrite,
            portfolio,
            fraig_par,
            attacks,
        })
    }
}

/// One regression found by [`compare`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// What regressed (`"kernel sim_sweep64_c6288"`, ...).
    pub subject: String,
    /// Human-readable description with both numbers.
    pub detail: String,
    /// Whether the gate must fail on this entry (kernels) or the entry is
    /// informational drift (attack telemetry on a differently-loaded host).
    pub fatal: bool,
}

/// Compares `current` against `baseline` with a relative `tolerance`
/// (0.25 = 25%). Tracked kernels gate on the packed-over-scalar speedup
/// ratio and on the `min_speedup` floor. The kernel measurement is
/// single-threaded, so the ratio is comparable across machines of the same
/// `os`; only a cross-OS comparison downgrades a ratio miss to non-fatal
/// drift (regenerate the baseline on the runner's OS to re-arm it), while
/// the absolute `min_speedup` floor stays fatal everywhere. Attack rows
/// gate fatally on outcome flips of non-budget-bound baseline rows (an
/// `exact-key` row turning into an error or out-of-budget is a code
/// regression); their numeric telemetry (iterations / oracle queries) is
/// reported as non-fatal drift unless `strict_attacks` is set.
pub fn compare(
    baseline: &BenchResults,
    current: &BenchResults,
    tolerance: f64,
    min_speedup: f64,
    strict_attacks: bool,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let comparable_host = baseline.os == current.os;
    for base in &baseline.kernels {
        let subject = format!("kernel {}", base.name);
        match current.kernels.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                let floor = base.speedup / (1.0 + tolerance);
                if cur.speedup < floor {
                    regressions.push(Regression {
                        subject: subject.clone(),
                        detail: format!(
                            "packed speedup fell {:.1}x -> {:.1}x (floor {:.1}x at {:.0}% tolerance{})",
                            base.speedup,
                            cur.speedup,
                            floor,
                            tolerance * 100.0,
                            if comparable_host {
                                ""
                            } else {
                                "; host differs from baseline — regenerate the baseline on this runner class to re-arm the ratio gate"
                            }
                        ),
                        fatal: comparable_host,
                    });
                }
                if cur.speedup < min_speedup {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "packed speedup {:.1}x is below the {min_speedup:.0}x acceptance floor",
                            cur.speedup
                        ),
                        fatal: true,
                    });
                }
            }
        }
    }
    // CNF-size kernels: exact counts, so the gate is deterministic on any
    // machine. Each record must not regress its reductions beyond the
    // tolerance, and the *aggregate* reduction across the tracked miter set
    // must stay above the acceptance floor.
    for base in &baseline.cnf {
        let subject = format!("cnf {}", base.name);
        match current.cnf.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked CNF kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                for (metric, base_r, cur_r) in [
                    ("variable", base.var_reduction, cur.var_reduction),
                    ("clause", base.clause_reduction, cur.clause_reduction),
                ] {
                    // A near-total baseline reduction means the miter folded
                    // structurally (the two halves hashed to one graph — the
                    // c6288 case): the record measures structural identity,
                    // not encoder quality, and a *better* resynthesis
                    // scrambler would legitimately lower it. Such records
                    // gate only on the absolute acceptance floor.
                    let floor = if base_r > 0.95 {
                        CNF_REDUCTION_FLOOR
                    } else {
                        base_r * (1.0 - tolerance)
                    };
                    if cur_r < floor {
                        regressions.push(Regression {
                            subject: subject.clone(),
                            detail: format!(
                                "{metric} reduction fell {:.1}% -> {:.1}% (floor {:.1}%)",
                                base_r * 100.0,
                                cur_r * 100.0,
                                floor * 100.0
                            ),
                            fatal: true,
                        });
                    }
                }
            }
        }
    }
    if !baseline.cnf.is_empty() && !current.cnf.is_empty() {
        let sum = |records: &[CnfRecord], f: fn(&CnfRecord) -> u64| -> f64 {
            records.iter().map(f).sum::<u64>() as f64
        };
        for (metric, gate, aig) in [
            (
                "variable",
                sum(&current.cnf, |k| k.gate_vars),
                sum(&current.cnf, |k| k.aig_vars),
            ),
            (
                "clause",
                sum(&current.cnf, |k| k.gate_clauses),
                sum(&current.cnf, |k| k.aig_clauses),
            ),
        ] {
            let reduction = 1.0 - aig / gate.max(1.0);
            if reduction < CNF_REDUCTION_FLOOR {
                regressions.push(Regression {
                    subject: "cnf aggregate".to_string(),
                    detail: format!(
                        "aggregate {metric} reduction {:.1}% is below the {:.0}% acceptance floor",
                        reduction * 100.0,
                        CNF_REDUCTION_FLOOR * 100.0
                    ),
                    fatal: true,
                });
            }
        }
    }
    // Fraig-equivalence kernels: gate on the speedup ratio like the
    // simulation kernels (fatal on a same-OS host, drift otherwise).
    for base in &baseline.fraig {
        let subject = format!("fraig {}", base.name);
        match current.fraig.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked fraig kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                let floor = base.speedup / (1.0 + tolerance);
                if cur.speedup < floor {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "fraig speedup fell {:.2}x -> {:.2}x (floor {:.2}x at {:.0}% tolerance{})",
                            base.speedup,
                            cur.speedup,
                            floor,
                            tolerance * 100.0,
                            if comparable_host {
                                ""
                            } else {
                                "; host differs from baseline"
                            }
                        ),
                        fatal: comparable_host,
                    });
                }
            }
        }
    }
    // SCOPE feature kernels: the speedup ratio gates like the fraig kernels
    // (fatal on a same-OS host, drift otherwise) on top of an absolute
    // acceptance floor, and the engines agreeing is a correctness property —
    // a baseline `matches` flipping to false is always fatal.
    for base in &baseline.scope {
        let subject = format!("scope {}", base.name);
        match current.scope.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked SCOPE kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                if base.matches && !cur.matches {
                    regressions.push(Regression {
                        subject: subject.clone(),
                        detail: "dataflow and resynthesis engines no longer produce the same \
                                 key guess"
                            .to_string(),
                        fatal: true,
                    });
                }
                let floor = base.speedup / (1.0 + tolerance);
                if cur.speedup < floor {
                    regressions.push(Regression {
                        subject: subject.clone(),
                        detail: format!(
                            "scope speedup fell {:.1}x -> {:.1}x (floor {:.1}x at {:.0}% tolerance{})",
                            base.speedup,
                            cur.speedup,
                            floor,
                            tolerance * 100.0,
                            if comparable_host {
                                ""
                            } else {
                                "; host differs from baseline"
                            }
                        ),
                        fatal: comparable_host,
                    });
                }
                if cur.speedup < SCOPE_SPEEDUP_FLOOR {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "scope speedup {:.1}x is below the {SCOPE_SPEEDUP_FLOOR:.0}x \
                             acceptance floor",
                            cur.speedup
                        ),
                        fatal: true,
                    });
                }
            }
        }
    }
    // Scheduler kernel: both makespans come from the same process on the
    // same machine, so the work-stealing-over-static ratio is
    // machine-portable. The absolute acceptance floor (work stealing must
    // not lose to the static split beyond the noise margin) is fatal
    // everywhere; the baseline-relative ratio gates like the other timing
    // kernels (fatal on a same-OS host, drift otherwise).
    for base in &baseline.scheduler {
        let subject = format!("scheduler {}", base.name);
        match current.scheduler.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked scheduler kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) if cur.workers <= 1 => {
                // A single worker cannot steal: the ratio measures nothing
                // but dispatch overhead, so gating it would only reward or
                // punish noise. Record the skip so the job log says why.
                regressions.push(Regression {
                    subject,
                    detail: format!(
                        "ran on a single worker (1 CPU) — the {SCHEDULER_SPEEDUP_FLOOR:.2} \
                         static-split gate is skipped: work stealing cannot be exercised \
                         without parallelism"
                    ),
                    fatal: false,
                });
            }
            Some(cur) => {
                if cur.speedup < SCHEDULER_SPEEDUP_FLOOR {
                    regressions.push(Regression {
                        subject: subject.clone(),
                        detail: format!(
                            "work-stealing makespan {:.0} ms lost to the static split \
                             {:.0} ms (ratio {:.2} is below the {SCHEDULER_SPEEDUP_FLOOR:.2} \
                             acceptance floor)",
                            cur.scheduled_ms, cur.static_ms, cur.speedup
                        ),
                        fatal: true,
                    });
                }
                // A single-worker *baseline* recorded a vacuous ~1.0 ratio
                // (no stealing happened); only the absolute floor above is
                // meaningful against it.
                let floor = base.speedup / (1.0 + tolerance);
                if base.workers > 1 && cur.speedup < floor && cur.speedup >= SCHEDULER_SPEEDUP_FLOOR
                {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "scheduler ratio fell {:.2} -> {:.2} (floor {:.2} at {:.0}% tolerance{})",
                            base.speedup,
                            cur.speedup,
                            floor,
                            tolerance * 100.0,
                            if comparable_host {
                                ""
                            } else {
                                "; host differs from baseline"
                            }
                        ),
                        fatal: comparable_host,
                    });
                }
            }
        }
    }
    // DIP-engine kernels: the encode reductions are exact counts (gate
    // deterministically, like the CNF kernels) on top of the absolute
    // acceptance floor; the CEGAR throughput of the AIG engine gates as a
    // same-OS ratio like the other timing kernels.
    for base in &baseline.dip_aig {
        let subject = format!("dip_aig {}", base.name);
        match current.dip_aig.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked DIP-engine kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                for (metric, base_r, cur_r) in [
                    ("variable", base.var_reduction, cur.var_reduction),
                    ("clause", base.clause_reduction, cur.clause_reduction),
                ] {
                    // As with the CNF kernels, a near-total baseline
                    // reduction means the miter folded structurally; such
                    // records gate only on the absolute floor.
                    let floor = if base_r > 0.95 {
                        DIP_ENCODE_REDUCTION_FLOOR
                    } else {
                        (base_r * (1.0 - tolerance)).max(DIP_ENCODE_REDUCTION_FLOOR)
                    };
                    if cur_r < floor {
                        regressions.push(Regression {
                            subject: subject.clone(),
                            detail: format!(
                                "DIP miter {metric} reduction fell {:.1}% -> {:.1}% (floor {:.1}%)",
                                base_r * 100.0,
                                cur_r * 100.0,
                                floor * 100.0
                            ),
                            fatal: true,
                        });
                    }
                }
                let floor = base.aig_iters_per_sec / (1.0 + tolerance);
                if cur.aig_iters_per_sec < floor {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "AIG-engine CEGAR throughput fell {:.1} -> {:.1} iters/s \
                             (floor {:.1} at {:.0}% tolerance{})",
                            base.aig_iters_per_sec,
                            cur.aig_iters_per_sec,
                            floor,
                            tolerance * 100.0,
                            if comparable_host {
                                ""
                            } else {
                                "; host differs from baseline"
                            }
                        ),
                        fatal: comparable_host,
                    });
                }
            }
        }
    }
    // Rewriting kernels: exact node counts, so both the baseline-relative
    // gate and the absolute floor are deterministic and fatal everywhere.
    for base in &baseline.rewrite {
        let subject = format!("rewrite {}", base.name);
        match current.rewrite.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked rewriting kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                // The absolute floor only arms on hosts whose baseline clears
                // it: c6288's multiplier array has no profitable 4-cuts, and a
                // legitimately-zero baseline must not fail its own self-compare.
                let floor = if base.node_reduction >= REWRITE_REDUCTION_FLOOR {
                    (base.node_reduction * (1.0 - tolerance)).max(REWRITE_REDUCTION_FLOOR)
                } else {
                    base.node_reduction * (1.0 - tolerance)
                };
                if cur.node_reduction < floor {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "rewrite node reduction fell {:.1}% -> {:.1}% (floor {:.1}%; \
                             {} -> {} nodes)",
                            base.node_reduction * 100.0,
                            cur.node_reduction * 100.0,
                            floor * 100.0,
                            cur.nodes_before,
                            cur.nodes_after
                        ),
                        fatal: true,
                    });
                }
            }
        }
    }
    // Portfolio-race kernels: the race losing its verified winner is a
    // correctness regression (fatal anywhere); the overhead ceiling over
    // the best solo member is machine-portable (both walls come from the
    // same process) but meaningless on a single-CPU runner where the
    // members can only timeslice — skip it there, like the scheduler gate.
    for base in &baseline.portfolio {
        let subject = format!("portfolio {}", base.name);
        match current.portfolio.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked portfolio kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                if base.verified && !cur.verified {
                    regressions.push(Regression {
                        subject: subject.clone(),
                        detail: format!(
                            "the race no longer produces a SAT-verified exact key \
                             (winner `{}`)",
                            cur.winner
                        ),
                        fatal: true,
                    });
                }
                if current.cpus <= 1 {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "ran on a single worker (1 CPU) — the {PORTFOLIO_OVERHEAD_CEIL:.2}x \
                             overhead gate is skipped: racing members can only timeslice \
                             without parallelism"
                        ),
                        fatal: false,
                    });
                    continue;
                }
                if cur.overhead > PORTFOLIO_OVERHEAD_CEIL {
                    regressions.push(Regression {
                        subject: subject.clone(),
                        detail: format!(
                            "race wall {:.0} ms is {:.2}x its best solo member {:.0} ms \
                             (ceiling {PORTFOLIO_OVERHEAD_CEIL:.2}x)",
                            cur.portfolio_ms, cur.overhead, cur.best_member_ms
                        ),
                        fatal: true,
                    });
                }
                // Losing outright to the *worst* member means cancellation
                // stopped paying at all; with the overhead ceiling already
                // gating fatally, this reads as a diagnosis aid, not a
                // second trip wire (best == worst makes it vacuous anyway).
                if cur.portfolio_ms > cur.worst_member_ms
                    && cur.worst_member_ms > cur.best_member_ms
                {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "race wall {:.0} ms lost to its worst solo member {:.0} ms",
                            cur.portfolio_ms, cur.worst_member_ms
                        ),
                        fatal: false,
                    });
                }
            }
        }
    }
    // Parallel-fraig kernels: verdict/merge agreement between the widths is
    // a correctness property (fatal anywhere); the sweep speedup gates on
    // the absolute floor only when the record ran at full width — a
    // narrower sweep (CPU-starved runner) cannot reach it and is noted.
    for base in &baseline.fraig_par {
        let subject = format!("fraig_par {}", base.name);
        match current.fraig_par.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked parallel-fraig kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                if !cur.verdicts_match || !cur.merges_match {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "parallel and sequential sweeps disagree (verdicts match: {}, \
                             merge counts match: {})",
                            cur.verdicts_match, cur.merges_match
                        ),
                        fatal: true,
                    });
                } else if cur.workers <= 1 {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "ran on a single worker (1 CPU) — the \
                             {FRAIG_PAR_SPEEDUP_FLOOR:.1}x gate is skipped: the sweep \
                             cannot be widened without parallelism"
                        ),
                        fatal: false,
                    });
                } else if cur.speedup < FRAIG_PAR_SPEEDUP_FLOOR {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "{}-worker sweep speedup {:.2}x is below the \
                             {FRAIG_PAR_SPEEDUP_FLOOR:.1}x acceptance floor{}",
                            cur.workers,
                            cur.speedup,
                            if (cur.workers as usize) < FRAIG_PAR_WORKERS {
                                " (narrow runner: fewer CPUs than the tracked width)"
                            } else {
                                ""
                            }
                        ),
                        fatal: cur.workers as usize >= FRAIG_PAR_WORKERS,
                    });
                }
            }
        }
    }
    for base in &baseline.attacks {
        let subject = format!("attack {} on {}", base.attack, base.host);
        let Some(cur) = current
            .attacks
            .iter()
            .find(|a| a.attack == base.attack && a.host == base.host)
        else {
            regressions.push(Regression {
                subject,
                detail: "tracked attack row missing from current results".to_string(),
                fatal: true,
            });
            continue;
        };
        // Budget-bound baseline rows spent however many iterations the
        // host's clock allowed — not comparable across machines (and a row
        // that *used* to time out succeeding now is an improvement).
        if base.outcome == "out-of-budget" {
            continue;
        }
        // A non-budget-bound baseline outcome flipping (exact-key -> error
        // or out-of-budget) is a code regression, not noise: the succeeding
        // rows finish with >10x headroom against the budget.
        if cur.outcome != base.outcome {
            regressions.push(Regression {
                subject: subject.clone(),
                detail: format!("outcome flipped `{}` -> `{}`", base.outcome, cur.outcome),
                fatal: true,
            });
            continue;
        }
        for (metric, base_n, cur_n) in [
            ("iterations", base.iterations, cur.iterations),
            ("oracle queries", base.oracle_queries, cur.oracle_queries),
        ] {
            let ceiling = (base_n as f64 * (1.0 + tolerance)).ceil() as u64 + 2;
            if cur_n > ceiling {
                regressions.push(Regression {
                    subject: subject.clone(),
                    detail: format!("{metric} grew {base_n} -> {cur_n} (ceiling {ceiling})"),
                    fatal: strict_attacks,
                });
            }
        }
    }
    regressions
}

fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "0.0".to_string()
    }
}

/// A minimal JSON reader for the subset [`BenchResults::to_json`] emits
/// (objects, arrays, strings with basic escapes, numbers and booleans — no
/// nulls).
mod json {
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    pub enum Value {
        Object(HashMap<String, Value>),
        Array(Vec<Value>),
        String(String),
        Number(f64),
        Bool(bool),
    }

    impl Value {
        pub fn as_object(&self) -> Result<&HashMap<String, Value>, String> {
            match self {
                Value::Object(map) => Ok(map),
                other => Err(format!("expected an object, found {other:?}")),
            }
        }

        pub fn as_array(&self) -> Result<&Vec<Value>, String> {
            match self {
                Value::Array(items) => Ok(items),
                other => Err(format!("expected an array, found {other:?}")),
            }
        }

        pub fn as_str(&self) -> Result<String, String> {
            match self {
                Value::String(s) => Ok(s.clone()),
                other => Err(format!("expected a string, found {other:?}")),
            }
        }

        pub fn as_number(&self) -> Result<f64, String> {
            match self {
                Value::Number(n) => Ok(*n),
                other => Err(format!("expected a number, found {other:?}")),
            }
        }

        pub fn as_bool(&self) -> Result<bool, String> {
            match self {
                Value::Bool(b) => Ok(*b),
                other => Err(format!("expected a boolean, found {other:?}")),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut position = 0usize;
        let value = parse_value(bytes, &mut position)?;
        skip_whitespace(bytes, &mut position);
        if position != bytes.len() {
            return Err(format!("trailing data at byte {position}"));
        }
        Ok(value)
    }

    fn skip_whitespace(bytes: &[u8], position: &mut usize) {
        while *position < bytes.len() && bytes[*position].is_ascii_whitespace() {
            *position += 1;
        }
    }

    fn expect(bytes: &[u8], position: &mut usize, byte: u8) -> Result<(), String> {
        skip_whitespace(bytes, position);
        if bytes.get(*position) == Some(&byte) {
            *position += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {position}",
                char::from(byte)
            ))
        }
    }

    fn parse_value(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        skip_whitespace(bytes, position);
        match bytes.get(*position) {
            Some(b'{') => parse_object(bytes, position),
            Some(b'[') => parse_array(bytes, position),
            Some(b'"') => Ok(Value::String(parse_string(bytes, position)?)),
            Some(b't') | Some(b'f') => parse_bool(bytes, position),
            Some(_) => parse_number(bytes, position),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_bool(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        for (literal, value) in [("true", true), ("false", false)] {
            if bytes[*position..].starts_with(literal.as_bytes()) {
                *position += literal.len();
                return Ok(Value::Bool(value));
            }
        }
        Err(format!("expected `true` or `false` at byte {position}"))
    }

    fn parse_object(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        expect(bytes, position, b'{')?;
        let mut map = HashMap::new();
        skip_whitespace(bytes, position);
        if bytes.get(*position) == Some(&b'}') {
            *position += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_whitespace(bytes, position);
            let key = parse_string(bytes, position)?;
            expect(bytes, position, b':')?;
            let value = parse_value(bytes, position)?;
            map.insert(key, value);
            skip_whitespace(bytes, position);
            match bytes.get(*position) {
                Some(b',') => *position += 1,
                Some(b'}') => {
                    *position += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {position}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        expect(bytes, position, b'[')?;
        let mut items = Vec::new();
        skip_whitespace(bytes, position);
        if bytes.get(*position) == Some(&b']') {
            *position += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, position)?);
            skip_whitespace(bytes, position);
            match bytes.get(*position) {
                Some(b',') => *position += 1,
                Some(b']') => {
                    *position += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {position}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], position: &mut usize) -> Result<String, String> {
        expect(bytes, position, b'"')?;
        // Accumulate raw bytes; multi-byte UTF-8 sequences pass through
        // verbatim and are validated once at the end.
        let mut out: Vec<u8> = Vec::new();
        while let Some(&byte) = bytes.get(*position) {
            *position += 1;
            match byte {
                b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
                b'\\' => {
                    let escape = bytes.get(*position).ok_or("unterminated escape sequence")?;
                    *position += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let hex = bytes
                                .get(*position..*position + 4)
                                .ok_or("truncated \\u escape")?;
                            *position += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            let mut buffer = [0u8; 4];
                            out.extend_from_slice(
                                char::from_u32(code)
                                    .unwrap_or('\u{fffd}')
                                    .encode_utf8(&mut buffer)
                                    .as_bytes(),
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", char::from(*other))),
                    }
                }
                byte => out.push(byte),
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        let start = *position;
        while let Some(&byte) = bytes.get(*position) {
            if byte.is_ascii_digit() || matches!(byte, b'-' | b'+' | b'.' | b'e' | b'E') {
                *position += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&bytes[start..*position])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_results() -> BenchResults {
        BenchResults {
            schema: 6,
            os: "linux".to_string(),
            cpus: 8,
            scale: 0.05,
            budget_secs: 2.0,
            kernels: vec![KernelRecord {
                name: "sim_sweep64_c6288".to_string(),
                scalar_ms: 3.2,
                packed_ms: 0.1,
                speedup: 32.0,
            }],
            cnf: vec![CnfRecord {
                name: "cnf_miter_c6288".to_string(),
                gate_vars: 10_000,
                gate_clauses: 30_000,
                aig_vars: 5_000,
                aig_clauses: 18_000,
                var_reduction: 0.5,
                clause_reduction: 0.4,
            }],
            fraig: vec![FraigRecord {
                name: "fraig_eqv_c6288".to_string(),
                gate_level_ms: 900.0,
                fraig_ms: 300.0,
                speedup: 3.0,
                sat_calls: 120,
                proved_merges: 80,
            }],
            scope: vec![ScopeRecord {
                name: "scope_aig_c2670".to_string(),
                key_bits: 16,
                resynth_ms: 800.0,
                aig_ms: 40.0,
                speedup: 20.0,
                matches: true,
            }],
            scheduler: vec![SchedulerRecord {
                name: "scheduler_matrix".to_string(),
                jobs: 24,
                workers: 8,
                steals: 5,
                static_ms: 1200.0,
                scheduled_ms: 1000.0,
                speedup: 1.2,
                mean_queue_wait_ms: 35.0,
            }],
            dip_aig: vec![DipAigRecord {
                name: "dip_aig_c2670".to_string(),
                key_bits: 16,
                gate_vars: 4_000,
                gate_clauses: 12_000,
                aig_vars: 1_500,
                aig_clauses: 6_000,
                var_reduction: 0.625,
                clause_reduction: 0.5,
                gate_iters_per_sec: 60.0,
                aig_iters_per_sec: 100.0,
            }],
            rewrite: vec![RewriteRecord {
                name: "rewrite_c2670".to_string(),
                nodes_before: 1_000,
                nodes_after: 900,
                levels_before: 30,
                levels_after: 28,
                node_reduction: 0.1,
            }],
            portfolio: vec![PortfolioRecord {
                name: "portfolio_c2670_sarlock".to_string(),
                members: vec!["kratt".to_string(), "sat".to_string(), "appsat".to_string()],
                winner: "kratt".to_string(),
                verified: true,
                portfolio_ms: 220.0,
                best_member_ms: 200.0,
                worst_member_ms: 1800.0,
                overhead: 1.1,
            }],
            fraig_par: vec![FraigParRecord {
                name: "fraig_par_c5315".to_string(),
                workers: 4,
                seq_sweep_ms: 400.0,
                par_sweep_ms: 160.0,
                speedup: 2.5,
                verdicts_match: true,
                merges_match: true,
            }],
            attacks: vec![AttackRecord {
                attack: "sat".to_string(),
                host: "c2670/RLL \"quoted\"".to_string(),
                outcome: "exact-key".to_string(),
                wall_ms: 41.5,
                iterations: 12,
                oracle_queries: 12,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let results = sample_results();
        let parsed = BenchResults::from_json(&results.to_json()).unwrap();
        assert_eq!(parsed.schema, 6);
        assert_eq!(parsed.cpus, 8);
        assert_eq!(parsed.kernels, results.kernels);
        assert_eq!(parsed.cnf, results.cnf);
        assert_eq!(parsed.fraig, results.fraig);
        assert_eq!(parsed.scope, results.scope);
        assert_eq!(parsed.scheduler, results.scheduler);
        assert_eq!(parsed.dip_aig, results.dip_aig);
        assert_eq!(parsed.rewrite, results.rewrite);
        assert_eq!(parsed.portfolio, results.portfolio);
        assert_eq!(parsed.fraig_par, results.fraig_par);
        assert_eq!(parsed.attacks, results.attacks);
    }

    #[test]
    fn schema_one_files_without_cnf_sections_still_parse() {
        let legacy = r#"{
  "schema": 1,
  "os": "linux",
  "cpus": 1,
  "scale": 0.05,
  "budget_secs": 2.0,
  "kernels": [],
  "attacks": []
}"#;
        let parsed = BenchResults::from_json(legacy).unwrap();
        assert!(parsed.cnf.is_empty());
        assert!(parsed.fraig.is_empty());
        assert!(parsed.scope.is_empty());
        assert!(parsed.scheduler.is_empty());
        assert!(parsed.dip_aig.is_empty());
        assert!(parsed.rewrite.is_empty());
        assert!(parsed.portfolio.is_empty());
        assert!(parsed.fraig_par.is_empty());
    }

    #[test]
    fn compare_skips_the_scheduler_gate_on_a_single_worker() {
        let baseline = sample_results();
        // A 1-CPU runner cannot steal: even a ratio below the floor is a
        // non-fatal note explaining the skip, not a failure.
        let mut current = sample_results();
        current.scheduler[0].workers = 1;
        current.scheduler[0].speedup = 0.6;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(!regressions[0].fatal);
        assert!(regressions[0].detail.contains("single worker"));
        // A single-worker *baseline* record (vacuous ~1.0 ratio) disarms
        // the baseline-relative gate but not the absolute floor.
        let mut baseline = sample_results();
        baseline.scheduler[0].workers = 1;
        baseline.scheduler[0].speedup = 1.0;
        let mut current = sample_results();
        current.scheduler[0].speedup = 0.85; // below 1.0/1.25 but above 0.8
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
        current.scheduler[0].speedup = 0.7;
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("lost to the static split")));
    }

    #[test]
    fn compare_gates_the_portfolio_race_overhead_and_verification() {
        let baseline = sample_results();
        // Losing the verified winner is a correctness regression — fatal
        // even on a single-CPU runner where the overhead gate is skipped.
        let mut current = sample_results();
        current.portfolio[0].verified = false;
        current.cpus = 1;
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("SAT-verified exact key")));

        // Overhead above the ceiling is fatal on a parallel runner.
        let mut current = sample_results();
        current.portfolio[0].overhead = 1.4;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal && regressions[0].detail.contains("ceiling"));

        // A 1-CPU runner cannot race: the overhead miss becomes a non-fatal
        // note explaining the skip.
        current.cpus = 1;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(!regressions[0].fatal && regressions[0].detail.contains("single worker"));

        // Losing to the worst member warns (the ceiling gate already fired
        // fatally when that can matter).
        let mut current = sample_results();
        current.portfolio[0].portfolio_ms = 2000.0;
        current.portfolio[0].overhead = 10.0;
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| !r.fatal && r.detail.contains("worst solo member")));

        // Missing record is fatal; a clean record passes.
        let mut current = sample_results();
        current.portfolio.clear();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("portfolio kernel missing")));
        let current = sample_results();
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn compare_gates_the_parallel_fraig_sweep() {
        let baseline = sample_results();
        // The widths disagreeing is a correctness regression anywhere.
        let mut current = sample_results();
        current.fraig_par[0].merges_match = false;
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("disagree")));

        // Below the floor at full width is fatal.
        let mut current = sample_results();
        current.fraig_par[0].speedup = 1.2;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal && regressions[0].detail.contains("acceptance floor"));

        // Below the floor on a narrow (2-worker) runner is a note, and a
        // single worker skips the gate entirely.
        current.fraig_par[0].workers = 2;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(!regressions[0].fatal && regressions[0].detail.contains("narrow runner"));
        current.fraig_par[0].workers = 1;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(!regressions[0].fatal && regressions[0].detail.contains("single worker"));

        // Missing record is fatal; a clean record passes.
        let mut current = sample_results();
        current.fraig_par.clear();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("parallel-fraig kernel missing")));
        let current = sample_results();
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn compare_gates_dip_encode_reductions_and_throughput() {
        let baseline = sample_results();
        // An encode-reduction collapse is fatal regardless of host (the
        // counts are exact).
        let mut current = sample_results();
        current.dip_aig[0].var_reduction = 0.2;
        current.os = "macos".to_string();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions
            .iter()
            .any(|r| r.fatal && r.subject.contains("dip_aig") && r.detail.contains("variable")));

        // CEGAR throughput gates as a same-OS ratio like the other timing
        // kernels: fatal at home, drift across OSes.
        let mut current = sample_results();
        current.dip_aig[0].aig_iters_per_sec = 50.0; // > 25% below 100
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal && regressions[0].detail.contains("throughput"));
        current.os = "macos".to_string();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .all(|r| !r.fatal));

        // A missing record is fatal; within tolerance is clean.
        let mut current = sample_results();
        current.dip_aig.clear();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("DIP-engine kernel missing")));
        let mut current = sample_results();
        current.dip_aig[0].aig_iters_per_sec = 90.0;
        current.dip_aig[0].var_reduction = 0.55;
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn compare_gates_rewrite_node_reductions() {
        let baseline = sample_results();
        // Falling beyond tolerance is fatal anywhere — the counts are exact.
        let mut current = sample_results();
        current.rewrite[0].node_reduction = 0.05; // > 25% below 0.1
        current.os = "macos".to_string();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal && regressions[0].subject.contains("rewrite"));

        // The absolute floor catches a rewrite that stops shrinking even
        // when the baseline reduction was already tiny.
        let mut baseline = sample_results();
        baseline.rewrite[0].node_reduction = 0.012;
        let mut current = sample_results();
        current.rewrite[0].node_reduction = 0.0;
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.subject.contains("rewrite")));

        // A missing record is fatal; within tolerance is clean.
        let baseline = sample_results();
        let mut current = sample_results();
        current.rewrite.clear();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("rewriting kernel missing")));
        let mut current = sample_results();
        current.rewrite[0].node_reduction = 0.09;
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());

        // A host whose baseline legitimately rewrites to zero gain (c6288's
        // multiplier array has no profitable 4-cuts) must pass self-compare:
        // the absolute floor only arms when the baseline itself clears it.
        let mut baseline = sample_results();
        baseline.rewrite[0].nodes_after = baseline.rewrite[0].nodes_before;
        baseline.rewrite[0].node_reduction = 0.0;
        let current = baseline.clone();
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn compare_gates_the_scheduler_against_the_static_split() {
        let baseline = sample_results();
        // Losing to the static split beyond the noise margin is fatal on
        // any machine.
        let mut current = sample_results();
        current.scheduler[0].speedup = 0.7;
        current.os = "macos".to_string();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions
            .iter()
            .any(|r| r.fatal && r.detail.contains("lost to the static split")));
        // A same-OS ratio regression above the floor gates like the other
        // timing kernels.
        let mut current = sample_results();
        current.scheduler[0].speedup = 0.9; // > 25% below 1.2, above 0.8
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal && regressions[0].subject.contains("scheduler"));
        // Cross-OS: drift, not failure.
        current.os = "macos".to_string();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .all(|r| !r.fatal));
        // Missing kernel is fatal; within tolerance is clean.
        let mut current = sample_results();
        current.scheduler.clear();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("scheduler kernel missing")));
        let mut current = sample_results();
        current.scheduler[0].speedup = 1.1;
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn compare_gates_scope_speedups_and_engine_agreement() {
        let baseline = sample_results();
        // A ratio regression beyond tolerance is fatal on the same OS.
        let mut current = sample_results();
        current.scope[0].speedup = 12.0; // > 25% below 20x, above the 5x floor
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal && regressions[0].subject.contains("scope"));
        // Cross-OS: the ratio miss downgrades to drift...
        current.os = "macos".to_string();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions.iter().all(|r| !r.fatal));
        // ...but the absolute acceptance floor stays fatal everywhere.
        current.scope[0].speedup = 4.0;
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("acceptance floor")));

        // The engines disagreeing is a correctness regression, not noise.
        let mut current = sample_results();
        current.scope[0].matches = false;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal && regressions[0].detail.contains("same key guess"));

        // A missing record is fatal; within tolerance is clean.
        let mut current = sample_results();
        current.scope.clear();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("SCOPE kernel missing")));
        let mut current = sample_results();
        current.scope[0].speedup = 18.0;
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn compare_gates_cnf_reductions() {
        let baseline = sample_results();
        let mut current = sample_results();
        // A reduction collapse is fatal regardless of host.
        current.cnf[0].var_reduction = 0.2;
        current.os = "macos".to_string();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions
            .iter()
            .any(|r| r.fatal && r.subject.contains("cnf") && r.detail.contains("variable")));

        // Aggregate floor: both metrics must clear 25% across the set.
        let mut current = sample_results();
        current.cnf[0].aig_clauses = 29_000;
        current.cnf[0].clause_reduction = 1.0 - 29_000.0 / 30_000.0;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions
            .iter()
            .any(|r| r.fatal && r.subject == "cnf aggregate"));

        // Missing CNF kernel is fatal.
        let mut current = sample_results();
        current.cnf.clear();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.detail.contains("CNF kernel missing")));

        // A near-degenerate baseline (the miter folded structurally) gates
        // only on the absolute floor: a drop to 60% is fine, below 25% not.
        let mut baseline = sample_results();
        baseline.cnf[0].var_reduction = 0.995;
        let mut current = sample_results();
        current.cnf[0].var_reduction = 0.6;
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
        current.cnf[0].var_reduction = 0.2;
        assert!(compare(&baseline, &current, 0.25, 8.0, false)
            .iter()
            .any(|r| r.fatal && r.subject.contains("cnf")));
    }

    #[test]
    fn compare_gates_fraig_speedups_like_kernels() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.fraig[0].speedup = 2.0; // > 25% below 3.0x
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions
            .iter()
            .any(|r| r.fatal && r.subject.contains("fraig")));
        // Cross-OS: drift, not failure.
        current.os = "macos".to_string();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions
            .iter()
            .any(|r| !r.fatal && r.subject.contains("fraig")));
        // Within tolerance: clean.
        let mut current = sample_results();
        current.fraig[0].speedup = 2.7;
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(BenchResults::from_json("{").is_err());
        assert!(BenchResults::from_json("{}").is_err());
        assert!(BenchResults::from_json("[1, 2]").is_err());
    }

    #[test]
    fn compare_flags_kernel_speedup_regressions() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.kernels[0].speedup = 20.0; // > 25% below 32x
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal);
        assert!(regressions[0].subject.contains("sim_sweep64_c6288"));

        // Within tolerance: clean.
        current.kernels[0].speedup = 30.0;
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn ratio_misses_on_a_different_os_are_non_fatal() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.os = "macos".to_string();
        current.kernels[0].speedup = 20.0; // ratio miss, above the 8x floor
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(!regressions[0].fatal, "cross-OS ratio drift must warn");
        assert!(regressions[0].detail.contains("host differs"));

        // The absolute floor stays fatal even across OSes.
        current.kernels[0].speedup = 5.0;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions
            .iter()
            .any(|r| r.fatal && r.detail.contains("acceptance floor")));

        // A different CPU count alone does not disarm the ratio gate (the
        // kernel measurement is single-threaded).
        let mut current = sample_results();
        current.cpus = 4;
        current.kernels[0].speedup = 20.0;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal);
    }

    #[test]
    fn outcome_flips_of_succeeding_rows_are_fatal() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.attacks[0].outcome = "error: no key inputs".to_string();
        current.attacks[0].iterations = 0;
        current.attacks[0].oracle_queries = 0;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal);
        assert!(regressions[0].detail.contains("outcome flipped"));

        // Success degrading to out-of-budget is also a flip.
        current.attacks[0].outcome = "out-of-budget".to_string();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)[0].fatal);
    }

    #[test]
    fn compare_enforces_the_acceptance_floor() {
        let mut baseline = sample_results();
        baseline.kernels[0].speedup = 6.0;
        let current = baseline.clone();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].detail.contains("acceptance floor"));
    }

    #[test]
    fn compare_ignores_budget_bound_rows_and_reports_drift() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.attacks[0].iterations = 100;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(
            !regressions[0].fatal,
            "attack drift is non-fatal by default"
        );
        assert!(compare(&baseline, &current, 0.25, 8.0, true)[0].fatal);

        // Budget-bound *baseline* rows are never compared: their telemetry
        // is whatever the baseline host's clock allowed, and a current run
        // that now succeeds is an improvement.
        let mut baseline = sample_results();
        baseline.attacks[0].outcome = "out-of-budget".to_string();
        let current = sample_results();
        assert!(compare(&baseline, &current, 0.25, 8.0, true).is_empty());
    }

    #[test]
    fn missing_entries_are_fatal() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.kernels.clear();
        current.attacks.clear();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 2);
        assert!(regressions.iter().all(|r| r.fatal));
    }
}
