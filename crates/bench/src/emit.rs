//! The benchmark JSON emitter: measures the tracked kernels (bit-parallel
//! simulation sweeps) and the per-attack × per-host wall-clock / iteration /
//! oracle-query telemetry, and renders everything as `BENCH_results.json`.
//!
//! One emitter serves both workflows: locally via `KRATT_BENCH_OUT=path.json
//! cargo bench -p kratt-bench --bench kernels`, and in CI where the
//! `bench-regression` job uploads the file as an artifact and gates merges
//! with the `bench_check` binary against the committed `BENCH_baseline.json`.
//!
//! Cross-machine comparability: kernel records track the *speedup ratio* of
//! the packed 64-lane sweep over 64 scalar evaluations (a property of the
//! code, not of the host's absolute clock), so the regression gate holds on
//! any runner. Absolute wall-clock numbers are recorded for trend reading
//! but only compared when explicitly requested.

use crate::ExperimentOptions;
use kratt_attacks::Harness;
use kratt_benchmarks::IscasCircuit;
use kratt_netlist::sim::Simulator;
use std::fmt::Write as _;
use std::time::Instant;

/// One tracked simulation kernel: 64 patterns through an ISCAS host, scalar
/// versus packed.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel name (`"sim_sweep64_c5315"`, ...).
    pub name: String,
    /// Wall-clock of 64 scalar evaluations, in milliseconds.
    pub scalar_ms: f64,
    /// Wall-clock of one packed 64-lane sweep, in milliseconds.
    pub packed_ms: f64,
    /// `scalar_ms / packed_ms` — the machine-portable tracked metric.
    pub speedup: f64,
}

/// One attack × host cell of the scaled-down bench matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackRecord {
    /// Registry name of the attack.
    pub attack: String,
    /// Case name (`"c2670/SARLock"`, ...).
    pub host: String,
    /// Outcome kind (`"exact-key"`, `"out-of-budget"`, `"error: ..."`).
    pub outcome: String,
    /// Wall-clock of the run, in milliseconds.
    pub wall_ms: f64,
    /// Attack iterations (DIPs, CEGAR rounds, ...).
    pub iterations: u64,
    /// Oracle queries spent.
    pub oracle_queries: u64,
}

/// Everything `BENCH_results.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResults {
    /// Schema version of the file.
    pub schema: u64,
    /// `std::env::consts::OS` of the producing host.
    pub os: String,
    /// Available parallelism of the producing host.
    pub cpus: u64,
    /// `KRATT_SCALE` the attack matrix ran at.
    pub scale: f64,
    /// Per-attack budget (seconds) the matrix ran with.
    pub budget_secs: f64,
    /// The tracked simulation kernels.
    pub kernels: Vec<KernelRecord>,
    /// The attack × host telemetry.
    pub attacks: Vec<AttackRecord>,
}

/// Times `f` adaptively and noise-robustly: sizes a batch so one batch
/// takes ≥10 ms of wall-clock, then returns the *best* per-call time over
/// several batches (minimum-of-N discards scheduler noise on shared CI
/// runners, which matters because the regression gate compares the
/// scalar/packed ratio across machines). The first (warm-up) call is
/// discarded.
fn time_ms_per_call<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm-up: schedule compilation, caches
    let mut reps = 1u32;
    let reps = loop {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        if start.elapsed().as_millis() >= 10 || reps >= 4096 {
            break reps;
        }
        reps *= 4;
    };
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e3 / f64::from(reps));
    }
    best
}

/// Measures the tracked kernels: for each ISCAS host, 64 scalar evaluations
/// versus one packed 64-lane sweep over the same patterns.
pub fn measure_sim_kernels() -> Vec<KernelRecord> {
    IscasCircuit::ALL
        .iter()
        .map(|&host| {
            let circuit = host.generate();
            let sim = Simulator::new(&circuit).expect("ISCAS hosts are acyclic");
            let n = circuit.num_inputs();
            // A fixed, seed-free pattern set: pattern p sets input i to bit
            // (p * (i + 1)) of a fixed word, deterministic across hosts.
            let patterns: Vec<Vec<bool>> = (0..64u64)
                .map(|p| {
                    (0..n)
                        .map(|i| (p.wrapping_mul(i as u64 + 1) ^ p >> 3) & 1 != 0)
                        .collect()
                })
                .collect();
            let words = kratt_netlist::sim::pack_patterns(&patterns);
            let scalar_ms = time_ms_per_call(|| {
                for pattern in &patterns {
                    std::hint::black_box(sim.run(pattern).unwrap());
                }
            });
            let packed_ms = time_ms_per_call(|| {
                std::hint::black_box(sim.run_words(&words).unwrap());
            });
            KernelRecord {
                name: format!("sim_sweep64_{}", host.name()),
                scalar_ms,
                packed_ms,
                speedup: scalar_ms / packed_ms.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// Builds the named attacks from the registry, or reports the first
/// unknown name together with the valid ones. Called *before* any
/// expensive measurement so a `KRATT_ATTACKS` typo fails fast.
fn build_attacks(attack_names: &[String]) -> Result<Vec<Box<dyn kratt_attacks::Attack>>, String> {
    let registry = kratt::attack_registry();
    attack_names
        .iter()
        .map(|name| {
            registry
                .build(name)
                .map_err(|e| format!("{e} (known attacks: {})", registry.names().join(", ")))
        })
        .collect()
}

/// Runs the scaled-down attack matrix (the same cases as the `matrix`
/// binary) and flattens the rows into [`AttackRecord`]s.
///
/// # Errors
///
/// Returns an error naming the offending entry if an attack name is not
/// registered.
pub fn measure_attack_matrix(
    attack_names: &[String],
    options: &ExperimentOptions,
) -> Result<Vec<AttackRecord>, String> {
    let attacks = build_attacks(attack_names)?;
    let harness = Harness::new();
    let (_cases, rows) = crate::run_attack_matrix(&harness, &attacks, options);
    Ok(rows
        .into_iter()
        .map(|row| match row.result {
            Ok(run) => AttackRecord {
                attack: row.attack,
                host: row.case,
                outcome: run.outcome.kind().to_string(),
                wall_ms: run.runtime.as_secs_f64() * 1e3,
                iterations: run.iterations as u64,
                oracle_queries: run.oracle_queries,
            },
            Err(e) => AttackRecord {
                attack: row.attack,
                host: row.case,
                outcome: format!("error: {e}"),
                wall_ms: 0.0,
                iterations: 0,
                oracle_queries: 0,
            },
        })
        .collect())
}

/// Runs the full suite: tracked kernels plus the attack matrix for the
/// given registry names, under the scale/budget read from the environment
/// by [`crate::options_from_env`]. Attack names are validated *before* the
/// kernel measurements so a `KRATT_ATTACKS` typo fails in milliseconds.
///
/// # Errors
///
/// Returns an error naming the offending entry if an attack name is not
/// registered.
pub fn run_bench_suite(
    attack_names: &[String],
    options: &ExperimentOptions,
) -> Result<BenchResults, String> {
    build_attacks(attack_names)?;
    Ok(BenchResults {
        schema: 1,
        os: std::env::consts::OS.to_string(),
        cpus: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
        scale: options.scale,
        budget_secs: options.baseline_budget.as_secs_f64(),
        kernels: measure_sim_kernels(),
        attacks: measure_attack_matrix(attack_names, options)?,
    })
}

/// Checks that every name resolves in the attack registry without running
/// anything — callers invoke this before long measurements.
///
/// # Errors
///
/// Returns an error naming the offending entry and the valid names.
pub fn validate_attacks(attack_names: &[String]) -> Result<(), String> {
    build_attacks(attack_names).map(|_| ())
}

/// The attack names of the tracked matrix: `KRATT_ATTACKS` (comma-separated
/// registry names) with the bench default of `kratt,sat`.
pub fn tracked_attacks_from_env() -> Vec<String> {
    std::env::var("KRATT_ATTACKS")
        .unwrap_or_else(|_| "kratt,sat".to_string())
        .split(',')
        .map(|name| name.trim().to_string())
        .filter(|name| !name.is_empty())
        .collect()
}

impl BenchResults {
    /// Renders the results as pretty-printed JSON. Hand-rolled because the
    /// workspace is offline (no serde); [`BenchResults::from_json`] parses
    /// exactly this shape back.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"os\": {},", json_string(&self.os));
        let _ = writeln!(out, "  \"cpus\": {},", self.cpus);
        let _ = writeln!(out, "  \"scale\": {},", json_number(self.scale));
        let _ = writeln!(out, "  \"budget_secs\": {},", json_number(self.budget_secs));
        out.push_str("  \"kernels\": [\n");
        for (i, k) in self.kernels.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"scalar_ms\": {}, \"packed_ms\": {}, \"speedup\": {}}}",
                json_string(&k.name),
                json_number(k.scalar_ms),
                json_number(k.packed_ms),
                json_number(k.speedup)
            );
            out.push_str(if i + 1 < self.kernels.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n  \"attacks\": [\n");
        for (i, a) in self.attacks.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"attack\": {}, \"host\": {}, \"outcome\": {}, \"wall_ms\": {}, \
                 \"iterations\": {}, \"oracle_queries\": {}}}",
                json_string(&a.attack),
                json_string(&a.host),
                json_string(&a.outcome),
                json_number(a.wall_ms),
                a.iterations,
                a.oracle_queries
            );
            out.push_str(if i + 1 < self.attacks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parses a `BENCH_*.json` file produced by [`BenchResults::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = json::parse(text)?;
        let top = value.as_object()?;
        let kernels = top
            .get("kernels")
            .ok_or("missing `kernels`")?
            .as_array()?
            .iter()
            .map(|k| {
                let k = k.as_object()?;
                Ok(KernelRecord {
                    name: k.get("name").ok_or("missing kernel `name`")?.as_str()?,
                    scalar_ms: k
                        .get("scalar_ms")
                        .ok_or("missing `scalar_ms`")?
                        .as_number()?,
                    packed_ms: k
                        .get("packed_ms")
                        .ok_or("missing `packed_ms`")?
                        .as_number()?,
                    speedup: k.get("speedup").ok_or("missing `speedup`")?.as_number()?,
                })
            })
            .collect::<Result<_, String>>()?;
        let attacks = top
            .get("attacks")
            .ok_or("missing `attacks`")?
            .as_array()?
            .iter()
            .map(|a| {
                let a = a.as_object()?;
                Ok(AttackRecord {
                    attack: a.get("attack").ok_or("missing `attack`")?.as_str()?,
                    host: a.get("host").ok_or("missing `host`")?.as_str()?,
                    outcome: a.get("outcome").ok_or("missing `outcome`")?.as_str()?,
                    wall_ms: a.get("wall_ms").ok_or("missing `wall_ms`")?.as_number()?,
                    iterations: a
                        .get("iterations")
                        .ok_or("missing `iterations`")?
                        .as_number()? as u64,
                    oracle_queries: a
                        .get("oracle_queries")
                        .ok_or("missing `oracle_queries`")?
                        .as_number()? as u64,
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(BenchResults {
            schema: top.get("schema").ok_or("missing `schema`")?.as_number()? as u64,
            os: top.get("os").ok_or("missing `os`")?.as_str()?,
            cpus: top.get("cpus").ok_or("missing `cpus`")?.as_number()? as u64,
            scale: top.get("scale").ok_or("missing `scale`")?.as_number()?,
            budget_secs: top
                .get("budget_secs")
                .ok_or("missing `budget_secs`")?
                .as_number()?,
            kernels,
            attacks,
        })
    }
}

/// One regression found by [`compare`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    /// What regressed (`"kernel sim_sweep64_c6288"`, ...).
    pub subject: String,
    /// Human-readable description with both numbers.
    pub detail: String,
    /// Whether the gate must fail on this entry (kernels) or the entry is
    /// informational drift (attack telemetry on a differently-loaded host).
    pub fatal: bool,
}

/// Compares `current` against `baseline` with a relative `tolerance`
/// (0.25 = 25%). Tracked kernels gate on the packed-over-scalar speedup
/// ratio and on the `min_speedup` floor. The kernel measurement is
/// single-threaded, so the ratio is comparable across machines of the same
/// `os`; only a cross-OS comparison downgrades a ratio miss to non-fatal
/// drift (regenerate the baseline on the runner's OS to re-arm it), while
/// the absolute `min_speedup` floor stays fatal everywhere. Attack rows
/// gate fatally on outcome flips of non-budget-bound baseline rows (an
/// `exact-key` row turning into an error or out-of-budget is a code
/// regression); their numeric telemetry (iterations / oracle queries) is
/// reported as non-fatal drift unless `strict_attacks` is set.
pub fn compare(
    baseline: &BenchResults,
    current: &BenchResults,
    tolerance: f64,
    min_speedup: f64,
    strict_attacks: bool,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    let comparable_host = baseline.os == current.os;
    for base in &baseline.kernels {
        let subject = format!("kernel {}", base.name);
        match current.kernels.iter().find(|k| k.name == base.name) {
            None => regressions.push(Regression {
                subject,
                detail: "tracked kernel missing from current results".to_string(),
                fatal: true,
            }),
            Some(cur) => {
                let floor = base.speedup / (1.0 + tolerance);
                if cur.speedup < floor {
                    regressions.push(Regression {
                        subject: subject.clone(),
                        detail: format!(
                            "packed speedup fell {:.1}x -> {:.1}x (floor {:.1}x at {:.0}% tolerance{})",
                            base.speedup,
                            cur.speedup,
                            floor,
                            tolerance * 100.0,
                            if comparable_host {
                                ""
                            } else {
                                "; host differs from baseline — regenerate the baseline on this runner class to re-arm the ratio gate"
                            }
                        ),
                        fatal: comparable_host,
                    });
                }
                if cur.speedup < min_speedup {
                    regressions.push(Regression {
                        subject,
                        detail: format!(
                            "packed speedup {:.1}x is below the {min_speedup:.0}x acceptance floor",
                            cur.speedup
                        ),
                        fatal: true,
                    });
                }
            }
        }
    }
    for base in &baseline.attacks {
        let subject = format!("attack {} on {}", base.attack, base.host);
        let Some(cur) = current
            .attacks
            .iter()
            .find(|a| a.attack == base.attack && a.host == base.host)
        else {
            regressions.push(Regression {
                subject,
                detail: "tracked attack row missing from current results".to_string(),
                fatal: true,
            });
            continue;
        };
        // Budget-bound baseline rows spent however many iterations the
        // host's clock allowed — not comparable across machines (and a row
        // that *used* to time out succeeding now is an improvement).
        if base.outcome == "out-of-budget" {
            continue;
        }
        // A non-budget-bound baseline outcome flipping (exact-key -> error
        // or out-of-budget) is a code regression, not noise: the succeeding
        // rows finish with >10x headroom against the budget.
        if cur.outcome != base.outcome {
            regressions.push(Regression {
                subject: subject.clone(),
                detail: format!("outcome flipped `{}` -> `{}`", base.outcome, cur.outcome),
                fatal: true,
            });
            continue;
        }
        for (metric, base_n, cur_n) in [
            ("iterations", base.iterations, cur.iterations),
            ("oracle queries", base.oracle_queries, cur.oracle_queries),
        ] {
            let ceiling = (base_n as f64 * (1.0 + tolerance)).ceil() as u64 + 2;
            if cur_n > ceiling {
                regressions.push(Regression {
                    subject: subject.clone(),
                    detail: format!("{metric} grew {base_n} -> {cur_n} (ceiling {ceiling})"),
                    fatal: strict_attacks,
                });
            }
        }
    }
    regressions
}

fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "0.0".to_string()
    }
}

/// A minimal JSON reader for the subset [`BenchResults::to_json`] emits
/// (objects, arrays, strings with basic escapes, and numbers — no
/// booleans or nulls).
mod json {
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    pub enum Value {
        Object(HashMap<String, Value>),
        Array(Vec<Value>),
        String(String),
        Number(f64),
    }

    impl Value {
        pub fn as_object(&self) -> Result<&HashMap<String, Value>, String> {
            match self {
                Value::Object(map) => Ok(map),
                other => Err(format!("expected an object, found {other:?}")),
            }
        }

        pub fn as_array(&self) -> Result<&Vec<Value>, String> {
            match self {
                Value::Array(items) => Ok(items),
                other => Err(format!("expected an array, found {other:?}")),
            }
        }

        pub fn as_str(&self) -> Result<String, String> {
            match self {
                Value::String(s) => Ok(s.clone()),
                other => Err(format!("expected a string, found {other:?}")),
            }
        }

        pub fn as_number(&self) -> Result<f64, String> {
            match self {
                Value::Number(n) => Ok(*n),
                other => Err(format!("expected a number, found {other:?}")),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut position = 0usize;
        let value = parse_value(bytes, &mut position)?;
        skip_whitespace(bytes, &mut position);
        if position != bytes.len() {
            return Err(format!("trailing data at byte {position}"));
        }
        Ok(value)
    }

    fn skip_whitespace(bytes: &[u8], position: &mut usize) {
        while *position < bytes.len() && bytes[*position].is_ascii_whitespace() {
            *position += 1;
        }
    }

    fn expect(bytes: &[u8], position: &mut usize, byte: u8) -> Result<(), String> {
        skip_whitespace(bytes, position);
        if bytes.get(*position) == Some(&byte) {
            *position += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {position}",
                char::from(byte)
            ))
        }
    }

    fn parse_value(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        skip_whitespace(bytes, position);
        match bytes.get(*position) {
            Some(b'{') => parse_object(bytes, position),
            Some(b'[') => parse_array(bytes, position),
            Some(b'"') => Ok(Value::String(parse_string(bytes, position)?)),
            Some(_) => parse_number(bytes, position),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_object(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        expect(bytes, position, b'{')?;
        let mut map = HashMap::new();
        skip_whitespace(bytes, position);
        if bytes.get(*position) == Some(&b'}') {
            *position += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_whitespace(bytes, position);
            let key = parse_string(bytes, position)?;
            expect(bytes, position, b':')?;
            let value = parse_value(bytes, position)?;
            map.insert(key, value);
            skip_whitespace(bytes, position);
            match bytes.get(*position) {
                Some(b',') => *position += 1,
                Some(b'}') => {
                    *position += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {position}")),
            }
        }
    }

    fn parse_array(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        expect(bytes, position, b'[')?;
        let mut items = Vec::new();
        skip_whitespace(bytes, position);
        if bytes.get(*position) == Some(&b']') {
            *position += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(bytes, position)?);
            skip_whitespace(bytes, position);
            match bytes.get(*position) {
                Some(b',') => *position += 1,
                Some(b']') => {
                    *position += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {position}")),
            }
        }
    }

    fn parse_string(bytes: &[u8], position: &mut usize) -> Result<String, String> {
        expect(bytes, position, b'"')?;
        // Accumulate raw bytes; multi-byte UTF-8 sequences pass through
        // verbatim and are validated once at the end.
        let mut out: Vec<u8> = Vec::new();
        while let Some(&byte) = bytes.get(*position) {
            *position += 1;
            match byte {
                b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
                b'\\' => {
                    let escape = bytes.get(*position).ok_or("unterminated escape sequence")?;
                    *position += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'u' => {
                            let hex = bytes
                                .get(*position..*position + 4)
                                .ok_or("truncated \\u escape")?;
                            *position += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            let mut buffer = [0u8; 4];
                            out.extend_from_slice(
                                char::from_u32(code)
                                    .unwrap_or('\u{fffd}')
                                    .encode_utf8(&mut buffer)
                                    .as_bytes(),
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", char::from(*other))),
                    }
                }
                byte => out.push(byte),
            }
        }
        Err("unterminated string".to_string())
    }

    fn parse_number(bytes: &[u8], position: &mut usize) -> Result<Value, String> {
        let start = *position;
        while let Some(&byte) = bytes.get(*position) {
            if byte.is_ascii_digit() || matches!(byte, b'-' | b'+' | b'.' | b'e' | b'E') {
                *position += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&bytes[start..*position])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_results() -> BenchResults {
        BenchResults {
            schema: 1,
            os: "linux".to_string(),
            cpus: 8,
            scale: 0.05,
            budget_secs: 2.0,
            kernels: vec![KernelRecord {
                name: "sim_sweep64_c6288".to_string(),
                scalar_ms: 3.2,
                packed_ms: 0.1,
                speedup: 32.0,
            }],
            attacks: vec![AttackRecord {
                attack: "sat".to_string(),
                host: "c2670/RLL \"quoted\"".to_string(),
                outcome: "exact-key".to_string(),
                wall_ms: 41.5,
                iterations: 12,
                oracle_queries: 12,
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let results = sample_results();
        let parsed = BenchResults::from_json(&results.to_json()).unwrap();
        assert_eq!(parsed.schema, 1);
        assert_eq!(parsed.cpus, 8);
        assert_eq!(parsed.kernels, results.kernels);
        assert_eq!(parsed.attacks, results.attacks);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(BenchResults::from_json("{").is_err());
        assert!(BenchResults::from_json("{}").is_err());
        assert!(BenchResults::from_json("[1, 2]").is_err());
    }

    #[test]
    fn compare_flags_kernel_speedup_regressions() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.kernels[0].speedup = 20.0; // > 25% below 32x
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal);
        assert!(regressions[0].subject.contains("sim_sweep64_c6288"));

        // Within tolerance: clean.
        current.kernels[0].speedup = 30.0;
        assert!(compare(&baseline, &current, 0.25, 8.0, false).is_empty());
    }

    #[test]
    fn ratio_misses_on_a_different_os_are_non_fatal() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.os = "macos".to_string();
        current.kernels[0].speedup = 20.0; // ratio miss, above the 8x floor
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(!regressions[0].fatal, "cross-OS ratio drift must warn");
        assert!(regressions[0].detail.contains("host differs"));

        // The absolute floor stays fatal even across OSes.
        current.kernels[0].speedup = 5.0;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert!(regressions
            .iter()
            .any(|r| r.fatal && r.detail.contains("acceptance floor")));

        // A different CPU count alone does not disarm the ratio gate (the
        // kernel measurement is single-threaded).
        let mut current = sample_results();
        current.cpus = 4;
        current.kernels[0].speedup = 20.0;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal);
    }

    #[test]
    fn outcome_flips_of_succeeding_rows_are_fatal() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.attacks[0].outcome = "error: no key inputs".to_string();
        current.attacks[0].iterations = 0;
        current.attacks[0].oracle_queries = 0;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].fatal);
        assert!(regressions[0].detail.contains("outcome flipped"));

        // Success degrading to out-of-budget is also a flip.
        current.attacks[0].outcome = "out-of-budget".to_string();
        assert!(compare(&baseline, &current, 0.25, 8.0, false)[0].fatal);
    }

    #[test]
    fn compare_enforces_the_acceptance_floor() {
        let mut baseline = sample_results();
        baseline.kernels[0].speedup = 6.0;
        let current = baseline.clone();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].detail.contains("acceptance floor"));
    }

    #[test]
    fn compare_ignores_budget_bound_rows_and_reports_drift() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.attacks[0].iterations = 100;
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 1);
        assert!(
            !regressions[0].fatal,
            "attack drift is non-fatal by default"
        );
        assert!(compare(&baseline, &current, 0.25, 8.0, true)[0].fatal);

        // Budget-bound *baseline* rows are never compared: their telemetry
        // is whatever the baseline host's clock allowed, and a current run
        // that now succeeds is an improvement.
        let mut baseline = sample_results();
        baseline.attacks[0].outcome = "out-of-budget".to_string();
        let current = sample_results();
        assert!(compare(&baseline, &current, 0.25, 8.0, true).is_empty());
    }

    #[test]
    fn missing_entries_are_fatal() {
        let baseline = sample_results();
        let mut current = sample_results();
        current.kernels.clear();
        current.attacks.clear();
        let regressions = compare(&baseline, &current, 0.25, 8.0, false);
        assert_eq!(regressions.len(), 2);
        assert!(regressions.iter().all(|r| r.fatal));
    }
}
