//! The experiment runners, one per table/figure of the paper's evaluation.

use crate::campaign::run_campaign_preset;
use crate::Table;
use kratt::{KrattAttack, KrattConfig, ThreatOutcome};
use kratt_attacks::{
    key_input_names, score_guess, Attack, AttackBudget, AttackRequest, AttackRun, Budget, Harness,
    KeyGuess, MatrixCase, Oracle, SatAttack, ScopeAttack, Verdict,
};
use kratt_benchmarks::hello_ctf::HelloCtfCircuit;
use kratt_benchmarks::{table1_circuits, ItcCircuit};
use kratt_locking::{
    scheme_registry, AntiSat, Cac, CasLock, GenAntiSat, LockedCircuit, LockingTechnique, SarLock,
    SchemeSpec, SecretKey, TtLock,
};
use kratt_netlist::Circuit;
use kratt_synth::{resynthesize, Effort, ResynthesisOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Options shared by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Gate-budget scale of the generated host circuits (1.0 = paper scale).
    pub scale: f64,
    /// Wall-clock budget per baseline oracle-guided attack ("OoT" when hit).
    pub baseline_budget: Duration,
    /// Number of resynthesised variants in the Fig. 6 study (paper: 50).
    pub fig6_variants: usize,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            scale: 0.05,
            baseline_budget: Duration::from_secs(5),
            fig6_variants: 10,
        }
    }
}

/// Locks a host deterministically from a scheme spec (the spec's seed plants
/// the secret) and resynthesises the result (as the paper does with Cadence
/// Genus). The ad-hoc per-call RNG plumbing this used to carry now lives in
/// one place: `SchemeRegistry::lock`.
fn lock_and_synthesise(original: &Circuit, spec: &SchemeSpec) -> LockedCircuit {
    let mut locked = scheme_registry()
        .lock(spec, original)
        .expect("host large enough");
    locked.circuit = resynthesize(
        &locked.circuit,
        &ResynthesisOptions::with_seed(spec.seed() ^ 0x5eed).effort(Effort::Medium),
    )
    .expect("resynthesis never fails on locked hosts");
    locked
}

/// `cdk/dk` cell, following the paper's convention of proving functional
/// correctness: when the attack recovered a complete key that provably
/// unlocks the design (simulation check against the oracle circuit), every
/// deciphered bit is counted correct even if Anti-SAT-style multi-key
/// equivalences make it differ bitwise from the stored secret.
fn score_cell(original: &Circuit, locked: &LockedCircuit, guess: &KeyGuess) -> (usize, usize) {
    let key_names = key_input_names(&locked.circuit);
    let (cdk, dk) = score_guess(locked, guess);
    if dk == key_names.len() {
        let key = guess.to_secret_key(&key_names);
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        if kratt_locking::common::verify_key_by_simulation(
            original,
            &locked.circuit,
            &key,
            64,
            &mut rng,
        )
        .unwrap_or(false)
        {
            return (dk, dk);
        }
    }
    (cdk, dk)
}

fn kratt_ol_guess(locked: &LockedCircuit) -> (KeyGuess, Duration) {
    let report = KrattAttack::new()
        .attack_oracle_less(&locked.circuit)
        .expect("locked designs have a critical signal");
    (
        report.outcome.as_guess(&key_input_names(&locked.circuit)),
        report.runtime,
    )
}

fn og_cell(run: &AttackRun) -> String {
    match run.outcome.exact_key() {
        Some(_) => format!("{:.2}", run.runtime.as_secs_f64()),
        None => "OoT".to_string(),
    }
}

/// SCOPE through the unified attack API: the per-bit guess plus its runtime.
fn scope_guess(locked: &LockedCircuit) -> (KeyGuess, Duration) {
    let run = ScopeAttack::new()
        .execute(&AttackRequest::oracle_less(&locked.circuit).with_budget(Budget::unlimited()))
        .expect("locked circuit");
    (
        run.outcome.as_guess(&key_input_names(&locked.circuit)),
        run.runtime,
    )
}

/// The four techniques of Tables II/III as scheme specs, in the paper's
/// column order, at the given key width and seed.
fn table_scheme_list(key_bits: usize, seed: u64) -> Vec<(&'static str, SchemeSpec)> {
    TABLE_TECHNIQUES
        .iter()
        .map(|&(display, technique)| {
            let spec = SchemeSpec::new(technique)
                .expect("table techniques are registered")
                .with_param("k", key_bits as u64)
                .with_param("seed", seed);
            (display, spec)
        })
        .collect()
}

/// (display name, canonical scheme name) of the Table II/III techniques.
const TABLE_TECHNIQUES: [(&str, &str); 4] = [
    ("Anti-SAT", "antisat"),
    ("SARLock", "sarlock"),
    ("CAC", "cac"),
    ("TTLock", "ttlock"),
];

/// Table I: the benchmark circuits and their interface statistics.
pub fn run_table1(options: &ExperimentOptions) -> Table {
    let mut table = Table::new(["Circuit", "#inputs", "#outputs", "#gates", "#key inputs"]);
    for row in table1_circuits(options.scale) {
        table.add_row([
            row.name.to_string(),
            row.circuit.num_inputs().to_string(),
            row.circuit.num_outputs().to_string(),
            row.circuit.num_gates().to_string(),
            row.key_bits.to_string(),
        ]);
    }
    table
}

/// Table II: oracle-less attacks (SCOPE vs KRATT) on the locked ISCAS'85 and
/// ITC'99 circuits. Each cell is `cdk/dk` and CPU seconds.
pub fn run_table2(options: &ExperimentOptions) -> Table {
    let mut table = Table::new([
        "Circuit",
        "Technique",
        "SCOPE cdk/dk",
        "SCOPE CPU",
        "KRATT cdk/dk",
        "KRATT CPU",
    ]);
    for row in table1_circuits(options.scale) {
        for (name, spec) in table_scheme_list(row.key_bits, 0x7ab1e2) {
            let locked = lock_and_synthesise(&row.circuit, &spec);
            let (scope_guess_bits, scope_runtime) = scope_guess(&locked);
            let (scope_cdk, scope_dk) = score_cell(&row.circuit, &locked, &scope_guess_bits);
            let (kratt_guess, kratt_runtime) = kratt_ol_guess(&locked);
            let (kratt_cdk, kratt_dk) = score_cell(&row.circuit, &locked, &kratt_guess);
            table.add_row([
                row.name.to_string(),
                name.to_string(),
                format!("{scope_cdk}/{scope_dk}"),
                format!("{:.2}", scope_runtime.as_secs_f64()),
                format!("{kratt_cdk}/{kratt_dk}"),
                format!("{:.2}", kratt_runtime.as_secs_f64()),
            ]);
        }
    }
    table
}

/// A campaign cell in the Table III convention: seconds when the attack
/// claimed an exact key *and* the verification step confirmed it against the
/// planted secret, `OoT` otherwise (unverified claims are demoted — a cell
/// only scores if the key provably unlocks the design).
fn verified_cell(cell: &kratt_attacks::CampaignCell) -> String {
    if cell.outcome == Some("exact-key") && cell.verdict == Verdict::Verified {
        format!("{:.2}", cell.runtime.as_secs_f64())
    } else {
        "OoT".to_string()
    }
}

/// Table III: oracle-guided attacks (SAT, DDIP, AppSAT vs KRATT) on the
/// locked circuits — now a thin render of the `table3` preset campaign:
/// locking, the attack matrix, and per-cell key verification all run through
/// the end-to-end campaign pipeline.
pub fn run_table3(options: &ExperimentOptions) -> Table {
    let report = run_campaign_preset("table3", options).expect("the table3 preset is well-formed");
    let mut table = Table::new(["Circuit", "Technique", "SAT", "DDIP", "AppSAT", "KRATT"]);
    for case in report.cells.chunks(report.attacks.len().max(1)) {
        let display = TABLE_TECHNIQUES
            .iter()
            .find(|(_, technique)| {
                case[0]
                    .scheme
                    .split(':')
                    .next()
                    .is_some_and(|name| name == *technique)
            })
            .map(|(display, _)| *display)
            .unwrap_or(case[0].scheme.as_str());
        table.add_row([
            case[0].host.clone(),
            display.to_string(),
            verified_cell(&case[0]),
            verified_cell(&case[1]),
            verified_cell(&case[2]),
            verified_cell(&case[3]),
        ]);
    }
    table
}

/// The generic attacks × benchmarks sweep behind the `matrix` binary: every
/// Table 1 circuit locked by the four table techniques, attacked by the
/// given engines through the harness under the shared baseline budget.
/// Returns the number of cases and the matrix rows (case-major).
pub fn run_attack_matrix(
    harness: &Harness,
    attacks: &[Box<dyn kratt_attacks::Attack>],
    options: &ExperimentOptions,
) -> (usize, Vec<kratt_attacks::MatrixRow>) {
    let (cases, budget) = matrix_cases(options);
    let rows = harness.run_matrix(attacks, &cases, &budget);
    (cases.len(), rows)
}

/// Like [`run_attack_matrix`], but through the work-stealing scheduler:
/// `on_row` fires from the worker threads the moment each row finishes (the
/// `--stream` hook), and the scheduler's aggregate telemetry comes back
/// alongside the rows.
pub fn run_attack_matrix_observed(
    harness: &Harness,
    attacks: &[Box<dyn kratt_attacks::Attack>],
    options: &ExperimentOptions,
    on_row: kratt_attacks::RowHook<'_>,
) -> (
    usize,
    Vec<kratt_attacks::MatrixRow>,
    kratt_attacks::SchedulerStats,
) {
    let (cases, budget) = matrix_cases(options);
    let report = harness.run_matrix_scheduled(
        attacks,
        &cases[..],
        &budget,
        &kratt_attacks::ScheduleOptions {
            on_row: Some(on_row),
            ..Default::default()
        },
    );
    // Without an include filter or global deadline every job executes, so
    // every row slot is populated.
    let rows = report.rows.into_iter().flatten().collect();
    (cases.len(), rows, report.stats)
}

/// The shared attacks × benchmarks grid: every Table-I circuit locked by
/// the four table techniques, oracle-guided, plus the per-cell budget.
pub(crate) fn matrix_cases(options: &ExperimentOptions) -> (Vec<MatrixCase>, Budget) {
    let budget = Budget {
        time_limit: Some(options.baseline_budget),
        max_iterations: 10_000,
        ..Budget::default()
    };
    let mut cases: Vec<MatrixCase> = Vec::new();
    for row in table1_circuits(options.scale) {
        for (name, spec) in table_scheme_list(row.key_bits, 0x7ab1e4) {
            let locked = lock_and_synthesise(&row.circuit, &spec);
            cases.push(MatrixCase::oracle_guided(
                format!("{}/{}", row.name, name),
                locked.circuit,
                row.circuit.clone(),
            ));
        }
    }
    (cases, budget)
}

/// Table IV: oracle-less attacks on ITC'99 circuits locked by Gen-Anti-SAT
/// with 128 key inputs.
pub fn run_table4(options: &ExperimentOptions) -> Table {
    let mut table = Table::new([
        "Circuit",
        "SCOPE cdk/dk",
        "SCOPE CPU",
        "KRATT cdk/dk",
        "KRATT CPU",
    ]);
    for circuit in ItcCircuit::ALL {
        let host = circuit.generate_scaled(options.scale);
        let spec = SchemeSpec::new("genantisat")
            .expect("registered")
            .with_param("k", 128)
            .with_param("seed", 0x6e6e);
        let locked = lock_and_synthesise(&host, &spec);
        let (scope_guess_bits, scope_runtime) = scope_guess(&locked);
        let (scope_cdk, scope_dk) = score_cell(&host, &locked, &scope_guess_bits);
        let (kratt_guess, kratt_runtime) = kratt_ol_guess(&locked);
        let (kratt_cdk, kratt_dk) = score_cell(&host, &locked, &kratt_guess);
        table.add_row([
            circuit.name().to_string(),
            format!("{scope_cdk}/{scope_dk}"),
            format!("{:.2}", scope_runtime.as_secs_f64()),
            format!("{kratt_cdk}/{kratt_dk}"),
            format!("{:.2}", kratt_runtime.as_secs_f64()),
        ]);
    }
    table
}

/// Table V: the HeLLO: CTF'22 circuits — details plus OL (SCOPE vs KRATT) and
/// OG (SAT vs KRATT) results.
pub fn run_table5(options: &ExperimentOptions) -> Table {
    let mut table = Table::new([
        "Circuit",
        "#inputs",
        "#outputs",
        "#gates",
        "#keys",
        "SCOPE cdk/dk",
        "KRATT-OL cdk/dk",
        "KRATT-OL CPU",
        "SAT",
        "KRATT-OG",
    ]);
    let budget = AttackBudget {
        time_limit: Some(options.baseline_budget),
        max_iterations: 10_000,
        ..AttackBudget::default()
    };
    for challenge in HelloCtfCircuit::ALL {
        // final_v3 is tiny and always generated at full scale.
        let scale = if challenge == HelloCtfCircuit::FinalV3 {
            1.0
        } else {
            options.scale
        };
        let (host, locked) = challenge
            .generate_locked_scaled(scale)
            .expect("generatable");
        let (scope_guess_bits, _scope_runtime) = scope_guess(&locked);
        let (scope_cdk, scope_dk) = score_cell(&host, &locked, &scope_guess_bits);
        let (kratt_guess, kratt_ol_runtime) = kratt_ol_guess(&locked);
        let (kratt_cdk, kratt_dk) = score_cell(&host, &locked, &kratt_guess);
        let sat_oracle = Oracle::new(host.clone()).unwrap();
        let sat = SatAttack::new()
            .execute(
                &AttackRequest::oracle_guided(&locked.circuit, &sat_oracle)
                    .with_budget(budget.clone()),
            )
            .expect("interfaces match");
        let oracle = Oracle::new(host.clone()).unwrap();
        let start = Instant::now();
        let kratt_og = KrattAttack::new()
            .attack_oracle_guided(&locked.circuit, &oracle)
            .expect("locked designs have a critical signal");
        let kratt_og_cell = match kratt_og.outcome {
            ThreatOutcome::ExactKey(_) => format!("{:.2}", start.elapsed().as_secs_f64()),
            _ => "OoT".to_string(),
        };
        table.add_row([
            challenge.name().to_string(),
            locked.circuit.num_inputs().to_string(),
            locked.circuit.num_outputs().to_string(),
            locked.circuit.num_gates().to_string(),
            locked.circuit.key_inputs().len().to_string(),
            format!("{scope_cdk}/{scope_dk}"),
            format!("{kratt_cdk}/{kratt_dk}"),
            format!("{:.2}", kratt_ol_runtime.as_secs_f64()),
            og_cell(&sat),
            kratt_og_cell,
        ]);
    }
    table
}

/// Fig. 6: impact of resynthesis on KRATT's run-time. The locked c6288 analog
/// is resynthesised with `options.fig6_variants` different seeds / efforts /
/// delay constraints and KRATT (oracle-guided) attacks every variant; the
/// table reports per-technique mean, standard deviation and max/min ratio,
/// plus every individual sample (the figure's scatter points).
pub fn run_fig6(options: &ExperimentOptions) -> (Table, Table) {
    let original = kratt_benchmarks::IscasCircuit::C6288.generate_scaled(options.scale);
    let key_bits = 32;
    let techniques: Vec<(&str, Box<dyn LockingTechnique>)> = vec![
        ("Anti-SAT", Box::new(AntiSat::new(key_bits))),
        ("SARLock", Box::new(SarLock::new(key_bits))),
        ("CAC", Box::new(Cac::new(key_bits))),
        ("TTLock", Box::new(TtLock::new(key_bits))),
    ];
    let mut samples = Table::new(["Technique", "Variant", "KRATT runtime (s)"]);
    let mut summary = Table::new(["Technique", "mean (s)", "stddev (s)", "max/min"]);
    for (name, technique) in techniques {
        let mut rng = StdRng::seed_from_u64(0xF16);
        let secret = SecretKey::random(&mut rng, technique.key_bits());
        let locked = technique
            .lock(&original, &secret)
            .expect("host large enough");
        let mut runtimes: Vec<f64> = Vec::with_capacity(options.fig6_variants);
        for variant in 0..options.fig6_variants {
            let effort = match variant % 3 {
                0 => Effort::Low,
                1 => Effort::Medium,
                _ => Effort::High,
            };
            let variant_options = ResynthesisOptions {
                seed: variant as u64,
                effort,
                balanced_trees: variant % 2 == 0,
            };
            let netlist = resynthesize(&locked.circuit, &variant_options).expect("resynthesis");
            let oracle = Oracle::new(original.clone()).unwrap();
            let start = Instant::now();
            let report = KrattAttack::new()
                .attack_oracle_guided(&netlist, &oracle)
                .expect("locked designs have a critical signal");
            let seconds = start.elapsed().as_secs_f64();
            assert!(
                report.outcome.exact_key().is_some(),
                "{name}: variant {variant} was not broken"
            );
            samples.add_row([
                name.to_string(),
                variant.to_string(),
                format!("{seconds:.3}"),
            ]);
            runtimes.push(seconds);
        }
        let mean = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
        let variance =
            runtimes.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / runtimes.len() as f64;
        let max = runtimes.iter().cloned().fold(f64::MIN, f64::max);
        let min = runtimes.iter().cloned().fold(f64::MAX, f64::min);
        summary.add_row([
            name.to_string(),
            format!("{mean:.3}"),
            format!("{:.3}", variance.sqrt()),
            format!("{:.2}", max / min.max(1e-9)),
        ]);
    }
    (samples, summary)
}

/// The Valkyrie-repository sweep described in the text of Section IV: ITC'99
/// circuits locked by the six techniques with two key lengths and several
/// synthesis seeds. Reports, per technique, how many instances KRATT broke
/// and through which path.
pub fn run_valkyrie_sweep(options: &ExperimentOptions, seeds: usize) -> Table {
    let mut table = Table::new([
        "Technique",
        "Instances",
        "Broken",
        "via QBF",
        "via structural analysis",
    ]);
    let circuits = [ItcCircuit::B14C, ItcCircuit::B15C, ItcCircuit::B20C];
    let key_sizes = [32usize, 64];
    let techniques: [(&str, &str); 6] = [
        ("Anti-SAT", "antisat"),
        ("CAS-Lock", "caslock"),
        ("Gen-Anti-SAT", "genantisat"),
        ("SARLock", "sarlock"),
        ("CAC", "cac"),
        ("TTLock", "ttlock"),
    ];
    for (name, canonical) in techniques {
        let mut total = 0usize;
        let mut broken = 0usize;
        let mut via_qbf = 0usize;
        let mut via_structural = 0usize;
        for &circuit in &circuits {
            let host = circuit.generate_scaled(options.scale);
            for &key_bits in &key_sizes {
                for seed in 0..seeds as u64 {
                    total += 1;
                    let spec = SchemeSpec::new(canonical)
                        .expect("registered")
                        .with_param("k", key_bits as u64)
                        .with_param("seed", seed);
                    let locked = lock_and_synthesise(&host, &spec);
                    let oracle = Oracle::new(host.clone()).unwrap();
                    let report = KrattAttack::new()
                        .attack_oracle_guided(&locked.circuit, &oracle)
                        .expect("locked designs have a critical signal");
                    if let ThreatOutcome::ExactKey(key) = &report.outcome {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let functional = kratt_locking::common::verify_key_by_simulation(
                            &host,
                            &locked.circuit,
                            key,
                            32,
                            &mut rng,
                        )
                        .unwrap_or(false);
                        if functional {
                            broken += 1;
                            match report.path {
                                kratt::KrattPath::Qbf => via_qbf += 1,
                                _ => via_structural += 1,
                            }
                        }
                    }
                }
            }
        }
        table.add_row([
            name.to_string(),
            total.to_string(),
            broken.to_string(),
            via_qbf.to_string(),
            via_structural.to_string(),
        ]);
    }
    table
}

/// Returns a KRATT configuration mirroring the paper's one-minute QBF limit.
pub fn paper_kratt_config() -> KrattConfig {
    KrattConfig::default()
}

/// Output-corruption study behind the paper's Fig. 2 discussion: for every
/// locking technique, the output error rate of the secret key (always 0) and
/// the mean/maximum error rate over random wrong keys. Point-function SFLTs
/// and DFLTs sit at the "barely corrupts anything" end of the spectrum —
/// which is exactly why one distinguishing input pattern eliminates only one
/// wrong key and the SAT attack needs exponentially many of them — while
/// Gen-Anti-SAT and classic random XOR locking corrupt far more.
pub fn run_corruption_study(options: &ExperimentOptions) -> Table {
    use kratt_locking::metrics::corruption_profile;
    use kratt_locking::{LutLock, RandomXorLocking, SfllFlex, SfllHd};

    let host = kratt_benchmarks::arith::array_multiplier(8).expect("valid width");
    let samples = ((4096.0 * options.scale.max(0.01)) as u64).max(512);
    let wrong_keys = 12usize;
    let techniques: Vec<(&str, Box<dyn LockingTechnique>)> = vec![
        ("SARLock", Box::new(SarLock::new(16))),
        ("Anti-SAT", Box::new(AntiSat::new(16))),
        ("CAS-Lock", Box::new(CasLock::new(16))),
        ("Gen-Anti-SAT", Box::new(GenAntiSat::new(16))),
        ("TTLock", Box::new(TtLock::new(16))),
        ("CAC", Box::new(Cac::new(16))),
        ("SFLL-HD(2)", Box::new(SfllHd::new(16, 2))),
        ("SFLL-Flex(2x8)", Box::new(SfllFlex::new(8, 2))),
        ("LUT-Lock(4)", Box::new(LutLock::new(4))),
        ("RLL", Box::new(RandomXorLocking::new(16, 21))),
    ];
    let mut table = Table::new([
        "Technique",
        "#key inputs",
        "secret key error",
        "mean wrong-key error",
        "max wrong-key error",
    ]);
    for (name, technique) in techniques {
        let mut rng = StdRng::seed_from_u64(0xF162);
        let secret = SecretKey::random(&mut rng, technique.key_bits());
        let locked = technique.lock(&host, &secret).expect("host large enough");
        let profile = corruption_profile(&host, &locked, wrong_keys, samples, &mut rng)
            .expect("simulation succeeds");
        let wrong: Vec<f64> = profile.per_key[1..].iter().map(|(_, rate)| *rate).collect();
        let mean = wrong.iter().sum::<f64>() / wrong.len() as f64;
        let max = wrong.iter().copied().fold(0.0, f64::max);
        table.add_row([
            name.to_string(),
            technique.key_bits().to_string(),
            format!("{:.4}", profile.per_key[0].1),
            format!("{mean:.4}"),
            format!("{max:.4}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> ExperimentOptions {
        ExperimentOptions {
            scale: 0.02,
            baseline_budget: Duration::from_millis(300),
            fig6_variants: 2,
        }
    }

    #[test]
    fn table1_lists_all_six_circuits() {
        let table = run_table1(&tiny_options());
        let text = table.render();
        for name in ["c2670", "c5315", "c6288", "b14_C", "b15_C", "b20_C"] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn fig6_summary_has_four_techniques() {
        let mut options = tiny_options();
        options.scale = 0.05;
        let (_, summary) = run_fig6(&options);
        let text = summary.render();
        for name in ["Anti-SAT", "SARLock", "CAC", "TTLock"] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn corruption_study_covers_all_families_and_secret_keys_never_corrupt() {
        let table = run_corruption_study(&tiny_options());
        let text = table.render();
        for name in [
            "SARLock",
            "Gen-Anti-SAT",
            "TTLock",
            "SFLL-Flex",
            "LUT-Lock",
            "RLL",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
        // Every technique's secret-key error rate (third column) is 0.
        let zero_secret_rows = text.lines().filter(|line| line.contains("0.0000")).count();
        assert!(
            zero_secret_rows >= 10,
            "secret keys must never corrupt:\n{text}"
        );
    }
}
