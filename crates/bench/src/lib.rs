//! Experiment harness regenerating every table and figure of the KRATT
//! paper's evaluation (Section IV).
//!
//! Each public `run_*` function corresponds to one table or figure and is
//! wrapped by a thin binary (`cargo run -p kratt-bench --bin table2
//! --release`, etc.). The harness works on the synthetic benchmark analogs of
//! `kratt-benchmarks`; the `KRATT_SCALE` environment variable scales the host
//! circuits' gate budgets (1.0 = paper-scale gate counts, default 0.05 so the
//! whole suite regenerates in minutes on a laptop), and `KRATT_BUDGET_SECS`
//! sets the per-attack budget used to declare "OoT" for the baseline attacks
//! (the paper used two days; the default here is a few seconds — the
//! qualitative outcome is identical because the baselines' DIP counts are
//! exponential in the key length).

pub mod campaign;
pub mod emit;
pub mod experiments;
pub mod table;

pub use campaign::{
    build_campaign, campaign_hosts, resynthesis_prepare, run_campaign_preset, CAMPAIGN_PRESETS,
};
pub use emit::{
    AttackRecord, BenchResults, DipAigRecord, FraigParRecord, KernelRecord, PortfolioRecord,
    Regression, RewriteRecord, SchedulerRecord, ScopeRecord,
};
pub use experiments::{
    run_attack_matrix, run_attack_matrix_observed, run_corruption_study, run_fig6, run_table1,
    run_table2, run_table3, run_table4, run_table5, run_valkyrie_sweep, ExperimentOptions,
};
pub use table::Table;

use std::time::Duration;

/// Reads the circuit scale from `KRATT_SCALE` (default 0.05).
pub fn scale_from_env() -> f64 {
    std::env::var("KRATT_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.05)
        .clamp(0.01, 1.0)
}

/// Reads the per-attack baseline budget from `KRATT_BUDGET_SECS` (default 5).
pub fn budget_from_env() -> Duration {
    let seconds = std::env::var("KRATT_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5);
    Duration::from_secs(seconds.max(1))
}

/// Reads the number of resynthesised variants for Fig. 6 from
/// `KRATT_FIG6_VARIANTS` (default 10; the paper uses 50).
pub fn fig6_variants_from_env() -> usize {
    std::env::var("KRATT_FIG6_VARIANTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(10)
        .max(2)
}

/// Options shared by every experiment run.
pub fn options_from_env() -> ExperimentOptions {
    ExperimentOptions {
        scale: scale_from_env(),
        baseline_budget: budget_from_env(),
        fig6_variants: fig6_variants_from_env(),
    }
}
