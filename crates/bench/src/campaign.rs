//! Campaign presets over the paper's benchmark hosts: the glue between the
//! generic lock → attack → verify pipeline in `kratt_attacks::campaign` and
//! the Table-I circuits, the paper's resynthesis step and the experiment
//! environment knobs.
//!
//! `run_table3` is a thin instance of the `table3` preset; the `campaign`
//! binary drives any preset from the command line and the `campaign-smoke`
//! CI job gates on the `smoke` preset's verification verdicts.

use crate::ExperimentOptions;
use kratt_attacks::{AttackError, Budget, Campaign, CampaignHost, CampaignReport, CorpusCache};
use kratt_benchmarks::table1_circuits;
use kratt_locking::LockedCircuit;
use kratt_synth::{resynthesize, Effort, ResynthesisOptions};
use std::sync::Arc;

/// The campaign presets the suite ships.
pub const CAMPAIGN_PRESETS: [&str; 2] = ["table3", "smoke"];

/// The Table-I hosts as campaign hosts (name, circuit, Table-I key width).
pub fn campaign_hosts(options: &ExperimentOptions) -> Vec<CampaignHost> {
    table1_circuits(options.scale)
        .into_iter()
        .map(|row| CampaignHost::new(row.name, row.circuit, row.key_bits))
        .collect()
}

/// The paper's post-lock resynthesis step (Cadence Genus in the original,
/// `kratt-synth` here) as a campaign prepare hook. The tag keys the corpus
/// cache so raw and resynthesised instances never collide.
pub fn resynthesis_prepare() -> (String, kratt_attacks::PrepareHook) {
    let hook = Arc::new(|mut locked: LockedCircuit| {
        // Seed the resynthesis from the planted secret so distinct instances
        // take distinct netlist shapes, deterministically.
        let seed = locked
            .secret
            .bits()
            .iter()
            .fold(0x5eedu64, |acc, &bit| acc << 1 ^ acc >> 61 ^ u64::from(bit));
        locked.circuit = resynthesize(
            &locked.circuit,
            &ResynthesisOptions::with_seed(seed).effort(Effort::Medium),
        )
        .map_err(|e| AttackError::Other(format!("resynthesis failed: {e}")))?;
        Ok(locked)
    });
    ("resynth-medium".to_string(), hook)
}

/// Builds a named preset campaign over the experiment options.
///
/// * `table3` — the four table techniques × all six Table-I hosts × the
///   SAT/DDIP/AppSAT/KRATT attacks (what [`crate::run_table3`] renders).
/// * `smoke` — 2 schemes × 2 hosts × 2 attacks at 16-bit keys, the tight
///   CI gate.
///
/// Both resynthesise every locked instance, as the paper does.
///
/// # Errors
///
/// Returns [`AttackError::Other`] for an unknown preset name.
pub fn build_campaign(preset: &str, options: &ExperimentOptions) -> Result<Campaign, AttackError> {
    let budget = Budget {
        time_limit: Some(options.baseline_budget),
        max_iterations: 10_000,
        ..Budget::default()
    };
    // Host trimming (e.g. smoke's 2 hosts at 16-bit keys) is the preset's
    // own policy, so every front end runs the same grid per name.
    let (tag, hook) = resynthesis_prepare();
    Ok(Campaign::preset(preset, campaign_hosts(options), budget)?.with_prepare(tag, hook))
}

/// Builds and runs a preset campaign through the full registries.
///
/// # Errors
///
/// Propagates unknown presets and unknown attack names.
pub fn run_campaign_preset(
    preset: &str,
    options: &ExperimentOptions,
) -> Result<CampaignReport, AttackError> {
    let campaign = build_campaign(preset, options)?;
    campaign.run(
        &kratt::attack_registry(),
        &kratt_locking::scheme_registry(),
        &CorpusCache::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny_options() -> ExperimentOptions {
        ExperimentOptions {
            scale: 0.02,
            baseline_budget: Duration::from_millis(300),
            fig6_variants: 2,
        }
    }

    #[test]
    fn presets_expand_to_the_documented_grids() {
        let options = tiny_options();
        let table3 = build_campaign("table3", &options).unwrap();
        assert_eq!(table3.schemes.len(), 4);
        assert_eq!(table3.hosts.len(), 6);
        assert_eq!(table3.attacks.len(), 4);
        assert!(table3.prepare.is_some());
        let smoke = build_campaign("smoke", &options).unwrap();
        assert_eq!(smoke.num_cells(), 2 * 2 * 2);
        assert!(smoke.hosts.iter().all(|h| h.default_key_bits == 16));
        assert!(build_campaign("frobnicate", &options).is_err());
    }

    #[test]
    fn smoke_campaign_runs_and_all_exact_claims_verify() {
        let report = run_campaign_preset("smoke", &tiny_options()).unwrap();
        assert_eq!(report.cells.len(), 8);
        // Locking happened once per (host, scheme) pair despite two attacks.
        assert_eq!(report.locked_instances, 4);
        assert_eq!(
            report.unverified_exact_claims(),
            0,
            "every claimed key must verify against the planted secret:\n{}",
            report.render()
        );
    }
}
