//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the BDD fast path of the 2QBF engine vs. the complete CEGAR fallback,
//! * the cone-guided candidate ordering of the oracle-guided structural
//!   analysis vs. a blind single-bit/expansion search,
//! * the sensitivity of the QBF path to the netlist style (textbook locking
//!   structure vs. resynthesised vs. technology-mapped).
//!
//! Each benchmark asserts the attack still succeeds, so the numbers compare
//! equally correct configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kratt::og::StructuralAnalysisConfig;
use kratt::{KrattAttack, KrattConfig};
use kratt_attacks::Oracle;
use kratt_benchmarks::arith::array_multiplier;
use kratt_locking::{LockingTechnique, SarLock, SecretKey, TtLock};
use kratt_qbf::{ExistsForallSolver, QbfConfig};
use kratt_synth::passes::{map_to_cell_library, CellLibrary};
use kratt_synth::{resynthesize, Effort, ResynthesisOptions};

/// BDD decision path vs. CEGAR refinement on the same SARLock locking unit.
fn bench_qbf_bdd_vs_cegar(c: &mut Criterion) {
    let original = array_multiplier(8).expect("valid width");
    let secret = SecretKey::from_u64(0xA53, 12);
    let locked = SarLock::new(12).lock(&original, &secret).expect("lockable");
    let artifacts = kratt::removal::remove_locking_unit(&locked.circuit).expect("has unit");
    let unit = artifacts.unit.clone();
    let keys = unit.key_inputs();
    let ppis = unit.data_inputs();
    let out = unit.outputs()[0];

    let mut group = c.benchmark_group("qbf_engine");
    group.sample_size(10);
    for (label, bdd_node_limit) in [("bdd_path", 1usize << 21), ("cegar_only", 0usize)] {
        group.bench_with_input(
            BenchmarkId::new("sarlock_unit_12_keys", label),
            &bdd_node_limit,
            |b, &limit| {
                b.iter(|| {
                    let solver = ExistsForallSolver::new(&unit, &keys, &ppis, out, false)
                        .with_config(QbfConfig {
                            bdd_node_limit: limit,
                            ..Default::default()
                        });
                    assert!(solver.solve().is_sat());
                });
            },
        );
    }
    group.finish();
}

/// Oracle-guided structural analysis with and without the cone-derived
/// candidate patterns (the paper's step 6). Without them the search falls
/// back to single-bit patterns and blind expansion.
fn bench_og_candidate_ordering(c: &mut Criterion) {
    let original = array_multiplier(8).expect("valid width");
    let secret = SecretKey::from_u64(0x5C3, 12);
    let locked = TtLock::new(12).lock(&original, &secret).expect("lockable");

    let mut group = c.benchmark_group("og_candidate_ordering");
    group.sample_size(10);
    for (label, max_cones) in [("cone_guided", 1024usize), ("blind_expansion", 0usize)] {
        group.bench_with_input(
            BenchmarkId::new("ttlock_12_keys", label),
            &max_cones,
            |b, &cones| {
                b.iter(|| {
                    let config = KrattConfig {
                        structural: StructuralAnalysisConfig {
                            max_cones: cones,
                            ..Default::default()
                        },
                        ..Default::default()
                    };
                    let oracle = Oracle::new(original.clone()).unwrap();
                    let report = KrattAttack::with_config(config)
                        .attack_oracle_guided(&locked.circuit, &oracle)
                        .unwrap();
                    assert_eq!(
                        report.outcome.exact_key().unwrap().to_u64(),
                        secret.to_u64()
                    );
                });
            },
        );
    }
    group.finish();
}

/// Sensitivity of the oracle-less QBF path to the netlist style: the textbook
/// locked netlist, a resynthesised variant and a NAND2+INV-mapped variant.
fn bench_netlist_style(c: &mut Criterion) {
    let original = array_multiplier(8).expect("valid width");
    let secret = SecretKey::from_u64(0xBEEF, 16);
    let locked = SarLock::new(16).lock(&original, &secret).expect("lockable");
    let resynthesised = resynthesize(
        &locked.circuit,
        &ResynthesisOptions::with_seed(5).effort(Effort::High),
    )
    .expect("resynthesis");
    let mapped = map_to_cell_library(&resynthesised, CellLibrary::Nand2Inv).expect("mapping");

    let mut group = c.benchmark_group("kratt_ol_netlist_style");
    group.sample_size(10);
    for (label, netlist) in [
        ("textbook", &locked.circuit),
        ("resynthesised", &resynthesised),
        ("nand2_mapped", &mapped),
    ] {
        group.bench_with_input(
            BenchmarkId::new("sarlock_16_keys", label),
            netlist,
            |b, netlist| {
                b.iter(|| {
                    let report = KrattAttack::new().attack_oracle_less(netlist).unwrap();
                    assert!(report.outcome.exact_key().is_some());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_qbf_bdd_vs_cegar,
    bench_og_candidate_ordering,
    bench_netlist_style
);
criterion_main!(ablations);
