//! Baseline comparison: the FALL functional-analysis attack vs. KRATT on the
//! same TTLock- and SFLL-HD-locked circuits.
//!
//! The paper runs FALL against its TTLock/SFLL circuits as an additional
//! baseline (Section IV). This example shows the two attacks side by side on
//! a 16-bit ripple-carry adder: FALL derives candidate keys from the
//! unateness of the stripped comparator cone, KRATT drives its oracle-guided
//! structural analysis, and both are checked against the ground truth.
//!
//! Run with `cargo run --example fall_vs_kratt`.

use kratt::{KrattAttack, ThreatOutcome};
use kratt_attacks::{score_guess, FallAttack, Oracle};
use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_locking::{LockedCircuit, LockingTechnique, SecretKey, SfllHd, TtLock};
use std::time::Instant;

fn attack_both(original_name: &str, locked: &LockedCircuit, original: &kratt_netlist::Circuit) {
    println!(
        "\n=== {} locked with {} ({} key bits, secret {}) ===",
        original_name,
        locked.technique,
        locked.key_width(),
        locked.secret
    );

    // --- FALL --------------------------------------------------------------
    let oracle = Oracle::new(original.clone()).expect("oracle");
    let start = Instant::now();
    let fall = FallAttack::new().run(&locked.circuit, &oracle).expect("locked circuit");
    let fall_runtime = start.elapsed();
    println!(
        "FALL: {} candidate keys from {} analysed nodes in {:.3} s",
        fall.candidates.len(),
        fall.analyzed_nodes,
        fall_runtime.as_secs_f64()
    );
    for candidate in &fall.candidates {
        let (cdk, dk) = score_guess(locked, candidate);
        println!("  candidate scores {cdk}/{dk} correct/deciphered key bits");
    }
    match fall.key() {
        Some(key) => {
            println!("  confirmed key: {key}");
            assert_eq!(key.to_u64(), locked.secret.to_u64());
        }
        None => println!("  no candidate survived key confirmation"),
    }

    // --- KRATT -------------------------------------------------------------
    let oracle = Oracle::new(original.clone()).expect("oracle");
    let start = Instant::now();
    let kratt = KrattAttack::new()
        .attack_oracle_guided(&locked.circuit, &oracle)
        .expect("locked circuit");
    println!(
        "KRATT ({:?}): {:.3} s, {} oracle queries",
        kratt.path,
        start.elapsed().as_secs_f64(),
        oracle.queries()
    );
    match &kratt.outcome {
        ThreatOutcome::ExactKey(key) => {
            println!("  recovered key: {key}");
            assert_eq!(key.to_u64(), locked.secret.to_u64());
        }
        other => println!("  unexpected outcome: {other:?}"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = ripple_carry_adder(8)?;
    println!("host circuit: {original}");

    let secret = SecretKey::from_u64(0xA5C3, 16);
    let ttlock = TtLock::new(16).lock(&original, &secret)?;
    attack_both("ripple-carry adder", &ttlock, &original);

    let secret = SecretKey::from_u64(0x3C5A, 16);
    let sfll = SfllHd::new(16, 0).lock(&original, &secret)?;
    attack_both("ripple-carry adder", &sfll, &original);

    println!("\nBoth attacks agree with the ground-truth secrets on these unsynthesised hosts;");
    println!("EXPERIMENTS.md discusses where the paper observed FALL failing (Genus-synthesised");
    println!("netlists whose comparator cones are merged into the host logic).");
    Ok(())
}
