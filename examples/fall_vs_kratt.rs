//! Baseline comparison: the FALL functional-analysis attack vs. KRATT on the
//! same TTLock- and SFLL-HD-locked circuits, driven through the unified
//! attack API.
//!
//! The paper runs FALL against its TTLock/SFLL circuits as an additional
//! baseline (Section IV). This example shows the two attacks side by side on
//! a 16-bit ripple-carry adder: both engines are constructed by name from
//! the registry and executed through the same `Attack::execute` call on the
//! same oracle-guided request, so the comparison is symmetric by design.
//!
//! Run with `cargo run --example fall_vs_kratt`.

use kratt_attacks::{score_guess, AttackOutcome, AttackRequest, Oracle};
use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_locking::{LockedCircuit, LockingTechnique, SecretKey, SfllHd, TtLock};

fn attack_both(original_name: &str, locked: &LockedCircuit, original: &kratt_netlist::Circuit) {
    println!(
        "\n=== {} locked with {} ({} key bits, secret {}) ===",
        original_name,
        locked.technique,
        locked.key_width(),
        locked.secret
    );

    let registry = kratt::attack_registry();
    for name in ["fall", "kratt"] {
        let attack = registry.build(name).expect("registered");
        let oracle = Oracle::new(original.clone()).expect("oracle");
        let request = AttackRequest::oracle_guided(&locked.circuit, &oracle);
        let run = attack.execute(&request).expect("locked circuit");
        println!(
            "{}: {:.3} s, {} iterations, {} oracle queries",
            run.attack,
            run.runtime.as_secs_f64(),
            run.iterations,
            run.oracle_queries
        );
        for step in &run.steps {
            println!(
                "  step {:<36} {:.3} s",
                step.name,
                step.duration.as_secs_f64()
            );
        }
        match &run.outcome {
            AttackOutcome::ExactKey(key) => {
                println!("  recovered key: {key}");
                assert_eq!(key.to_u64(), locked.secret.to_u64());
            }
            AttackOutcome::PartialGuess(guess) => {
                let (cdk, dk) = score_guess(locked, guess);
                println!("  partial guess scoring {cdk}/{dk} correct/deciphered key bits");
            }
            other => println!("  unexpected outcome: {other:?}"),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = ripple_carry_adder(8)?;
    println!("host circuit: {original}");

    let secret = SecretKey::from_u64(0xA5C3, 16);
    let ttlock = TtLock::new(16).lock(&original, &secret)?;
    attack_both("ripple-carry adder", &ttlock, &original);

    let secret = SecretKey::from_u64(0x3C5A, 16);
    let sfll = SfllHd::new(16, 0).lock(&original, &secret)?;
    attack_both("ripple-carry adder", &sfll, &original);

    println!("\nBoth attacks agree with the ground-truth secrets on these unsynthesised hosts;");
    println!("EXPERIMENTS.md discusses where the paper observed FALL failing (Genus-synthesised");
    println!("netlists whose comparator cones are merged into the host logic).");
    Ok(())
}
