//! A miniature version of the paper's Fig. 6 study: how does resynthesis
//! affect KRATT's run-time?
//!
//! The locked multiplier is resynthesised with many seeds, efforts and
//! delay-constraint settings, giving functionally equivalent but structurally
//! different netlists, and KRATT attacks every variant.
//!
//! Run with `cargo run --release --example resynthesis_study`.

use kratt::KrattAttack;
use kratt_attacks::Oracle;
use kratt_benchmarks::arith::array_multiplier;
use kratt_locking::{LockingTechnique, SarLock, SecretKey, TtLock};
use kratt_synth::{resynthesize, Effort, ResynthesisOptions};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = array_multiplier(6)?;
    let key_bits = 12;
    let variants = 12usize;

    for (name, locked) in [
        (
            "SARLock",
            SarLock::new(key_bits).lock(&original, &SecretKey::from_u64(0xa5a, key_bits))?,
        ),
        (
            "TTLock",
            TtLock::new(key_bits).lock(&original, &SecretKey::from_u64(0x35c, key_bits))?,
        ),
    ] {
        let mut runtimes: Vec<Duration> = Vec::with_capacity(variants);
        for seed in 0..variants as u64 {
            let effort = match seed % 3 {
                0 => Effort::Low,
                1 => Effort::Medium,
                _ => Effort::High,
            };
            let options = ResynthesisOptions {
                seed,
                effort,
                balanced_trees: seed % 2 == 0,
            };
            let variant = resynthesize(&locked.circuit, &options)?;
            let oracle = Oracle::new(original.clone())?;
            let report = KrattAttack::new().attack_oracle_guided(&variant, &oracle)?;
            assert!(
                report.outcome.exact_key().is_some(),
                "{name}: variant {seed} not broken"
            );
            runtimes.push(report.runtime);
        }
        let mean = runtimes.iter().map(Duration::as_secs_f64).sum::<f64>() / variants as f64;
        let variance = runtimes
            .iter()
            .map(|d| (d.as_secs_f64() - mean).powi(2))
            .sum::<f64>()
            / variants as f64;
        let max = runtimes
            .iter()
            .map(Duration::as_secs_f64)
            .fold(0.0f64, f64::max);
        let min = runtimes
            .iter()
            .map(Duration::as_secs_f64)
            .fold(f64::MAX, f64::min);
        println!(
            "{name:<8} over {variants} resynthesised variants: mean {:.3}s  sigma {:.3}s  max/min {:.2}",
            mean,
            variance.sqrt(),
            max / min.max(1e-9)
        );
    }
    Ok(())
}
