//! Lock a benchmark-style circuit with every paper technique, resynthesise
//! it (as the paper does with a commercial tool), and compare the attacks:
//! SCOPE vs KRATT under the oracle-less model, and the SAT-based attack vs
//! KRATT under the oracle-guided model.
//!
//! Run with `cargo run --release --example lock_and_attack`.

use kratt::{KrattAttack, ThreatOutcome};
use kratt_attacks::{score_guess, AttackBudget, Oracle, SatAttack, ScopeAttack};
use kratt_benchmarks::arith::array_multiplier;
use kratt_locking::{table_techniques, SecretKey};
use kratt_synth::{resynthesize, ResynthesisOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8x8 array multiplier: the same structure as c6288, example-sized.
    let original = array_multiplier(8)?;
    println!("host circuit: {original}\n");
    let key_bits = 16;
    let mut rng = StdRng::seed_from_u64(2024);

    println!(
        "{:<14} {:>14} {:>14} {:>16} {:>16}",
        "technique", "SCOPE cdk/dk", "KRATT-OL cdk/dk", "SAT attack", "KRATT-OG"
    );
    for technique in table_techniques(key_bits) {
        let secret = SecretKey::random(&mut rng, key_bits);
        let locked = technique.lock(&original, &secret)?;
        // Break the regular structure of the locking unit, as Genus would.
        let resynthesised = resynthesize(&locked.circuit, &ResynthesisOptions::with_seed(7))?;
        let mut locked = locked;
        locked.circuit = resynthesised;

        // Oracle-less attacks.
        let scope = ScopeAttack::new().run(&locked.circuit)?;
        let (scope_cdk, scope_dk) = score_guess(&locked, &scope.guess);
        let kratt_ol = KrattAttack::new().attack_oracle_less(&locked.circuit)?;
        let key_names: Vec<String> = locked
            .circuit
            .key_inputs()
            .iter()
            .map(|&n| locked.circuit.net_name(n).to_string())
            .collect();
        let (kratt_cdk, kratt_dk) =
            score_guess(&locked, &kratt_ol.outcome.as_guess(&key_names));

        // Oracle-guided attacks (short budgets so the example stays fast).
        let oracle = Oracle::new(original.clone())?;
        let sat = SatAttack::with_budget(AttackBudget {
            time_limit: Some(Duration::from_secs(3)),
            max_iterations: 50,
            sat_conflict_limit: None,
        })
        .run(&locked.circuit, &oracle)?;
        let sat_cell = match sat.outcome.key() {
            Some(_) => format!("key in {:.2?}", sat.runtime),
            None => "OoT".to_string(),
        };
        let oracle = Oracle::new(original.clone())?;
        let kratt_og = KrattAttack::new().attack_oracle_guided(&locked.circuit, &oracle)?;
        let kratt_og_cell = match &kratt_og.outcome {
            ThreatOutcome::ExactKey(_) => format!("key in {:.2?}", kratt_og.runtime),
            ThreatOutcome::PartialGuess(_) => "partial".to_string(),
            ThreatOutcome::OutOfTime => "OoT".to_string(),
        };

        println!(
            "{:<14} {:>11}/{:<3} {:>11}/{:<3} {:>16} {:>16}",
            locked.technique.to_string(),
            scope_cdk,
            scope_dk,
            kratt_cdk,
            kratt_dk,
            sat_cell,
            kratt_og_cell
        );
    }
    Ok(())
}
