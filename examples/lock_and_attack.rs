//! Lock a benchmark-style circuit with every paper technique, resynthesise
//! it (as the paper does with a commercial tool), and compare the attacks:
//! SCOPE vs KRATT under the oracle-less model, and the SAT-based attack vs
//! KRATT under the oracle-guided model.
//!
//! The oracle-guided side is driven through the unified attack API: both
//! engines come out of the registry and run the same `AttackRequest` under
//! the same shared `Budget`.
//!
//! Run with `cargo run --release --example lock_and_attack`.

use kratt::KrattAttack;
use kratt_attacks::{
    key_input_names, score_guess, Attack, AttackOutcome, AttackRequest, Budget, Oracle, ScopeAttack,
};
use kratt_benchmarks::arith::array_multiplier;
use kratt_locking::{table_techniques, SecretKey};
use kratt_synth::{resynthesize, ResynthesisOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8x8 array multiplier: the same structure as c6288, example-sized.
    let original = array_multiplier(8)?;
    println!("host circuit: {original}\n");
    let key_bits = 16;
    let mut rng = StdRng::seed_from_u64(2024);
    let registry = kratt::attack_registry();

    println!(
        "{:<14} {:>14} {:>14} {:>16} {:>16}",
        "technique", "SCOPE cdk/dk", "KRATT-OL cdk/dk", "SAT attack", "KRATT-OG"
    );
    for technique in table_techniques(key_bits) {
        let secret = SecretKey::random(&mut rng, key_bits);
        let locked = technique.lock(&original, &secret)?;
        // Break the regular structure of the locking unit, as Genus would.
        let resynthesised = resynthesize(&locked.circuit, &ResynthesisOptions::with_seed(7))?;
        let mut locked = locked;
        locked.circuit = resynthesised;

        // Oracle-less attacks.
        let key_names = key_input_names(&locked.circuit);
        let scope = ScopeAttack::new().execute(
            &AttackRequest::oracle_less(&locked.circuit).with_budget(Budget::unlimited()),
        )?;
        let (scope_cdk, scope_dk) = score_guess(&locked, &scope.outcome.as_guess(&key_names));
        let kratt_ol = KrattAttack::new().attack_oracle_less(&locked.circuit)?;
        let (kratt_cdk, kratt_dk) = score_guess(&locked, &kratt_ol.outcome.as_guess(&key_names));

        // Oracle-guided attacks, both through the unified API under one
        // shared budget (short so the example stays fast: the SAT attack's
        // "OoT" on the point-function techniques is the expected result).
        let budget = Budget {
            time_limit: Some(Duration::from_secs(3)),
            max_iterations: 50,
            ..Budget::default()
        };
        let mut cells = Vec::new();
        for name in ["sat", "kratt"] {
            let attack = registry.build(name)?;
            let oracle = Oracle::new(original.clone())?;
            let request =
                AttackRequest::oracle_guided(&locked.circuit, &oracle).with_budget(budget.clone());
            let run = attack.execute(&request)?;
            cells.push(match &run.outcome {
                AttackOutcome::ExactKey(_) => format!("key in {:.2?}", run.runtime),
                AttackOutcome::PartialGuess(_) => "partial".to_string(),
                AttackOutcome::RecoveredCircuit(_) => "recovered".to_string(),
                AttackOutcome::OutOfBudget => "OoT".to_string(),
            });
        }

        println!(
            "{:<14} {:>11}/{:<3} {:>11}/{:<3} {:>16} {:>16}",
            locked.technique.to_string(),
            scope_cdk,
            scope_dk,
            kratt_cdk,
            kratt_dk,
            cells[0],
            cells[1]
        );
    }
    Ok(())
}
