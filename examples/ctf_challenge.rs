//! Attack the HeLLO: CTF'22-style challenges of the paper's Table V.
//!
//! The competition distributed SFLL-locked circuits without originals or
//! keys; this example regenerates analog challenges with known ground truth
//! (scaled-down hosts, identical interfaces), then lets KRATT loose on them
//! under both threat models.
//!
//! Run with `cargo run --release --example ctf_challenge`.

use kratt::{KrattAttack, ThreatOutcome};
use kratt_attacks::{score_guess, Oracle};
use kratt_benchmarks::hello_ctf::HelloCtfCircuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // final_v3 at full scale (it is tiny); the two large finals scaled down.
    let challenges = [
        (HelloCtfCircuit::FinalV3, 1.0),
        (HelloCtfCircuit::FinalV1, 0.02),
        (HelloCtfCircuit::FinalV2, 0.02),
    ];
    for (challenge, scale) in challenges {
        let (host, locked) = challenge.generate_locked_scaled(scale)?;
        println!(
            "\n{}: {} gates, {} key inputs",
            challenge.name(),
            locked.circuit.num_gates(),
            locked.circuit.key_inputs().len()
        );

        // Oracle-less: partial key guess.
        let ol = KrattAttack::new().attack_oracle_less(&locked.circuit)?;
        let key_names: Vec<String> = locked
            .circuit
            .key_inputs()
            .iter()
            .map(|&n| locked.circuit.net_name(n).to_string())
            .collect();
        let (cdk, dk) = score_guess(&locked, &ol.outcome.as_guess(&key_names));
        println!(
            "  oracle-less ({:?}): cdk/dk = {cdk}/{dk} in {:.2?}",
            ol.path, ol.runtime
        );

        // Oracle-guided: exact key.
        let oracle = Oracle::new(host.clone())?;
        let og = KrattAttack::new().attack_oracle_guided(&locked.circuit, &oracle)?;
        match &og.outcome {
            ThreatOutcome::ExactKey(key) => {
                let correct = key
                    .bits()
                    .iter()
                    .zip(locked.secret.bits())
                    .filter(|(a, b)| a == b)
                    .count();
                println!(
                    "  oracle-guided ({:?}): key recovered in {:.2?}, {}/{} bits match the ground truth",
                    og.path,
                    og.runtime,
                    correct,
                    key.len()
                );
            }
            other => println!("  oracle-guided: {other:?} after {:.2?}", og.runtime),
        }
    }
    Ok(())
}
