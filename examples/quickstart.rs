//! Quickstart: the paper's running example (Fig. 5).
//!
//! A 3-input majority circuit is locked with SARLock (an SFLT) and with
//! TTLock (a DFLT); KRATT breaks the former with the QBF formulation alone
//! and the latter with the oracle-guided structural analysis.
//!
//! Run with `cargo run --example quickstart`.

use kratt::{KrattAttack, ThreatOutcome};
use kratt_attacks::Oracle;
use kratt_benchmarks::small::majority;
use kratt_locking::{LockingTechnique, SarLock, SecretKey, TtLock};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = majority();
    println!("original circuit: {original}");

    // --- SFLT: SARLock, broken oracle-less via QBF -------------------------
    let secret = SecretKey::from_u64(0b100, 3);
    let locked = SarLock::new(3).lock(&original, &secret)?;
    println!("\nlocked with SARLock, secret key k3k2k1 = {secret}");
    let report = KrattAttack::new().attack_oracle_less(&locked.circuit)?;
    match &report.outcome {
        ThreatOutcome::ExactKey(key) => {
            println!(
                "KRATT (oracle-less, {:?}) recovered key = {key}",
                report.path
            );
            assert_eq!(key.to_u64(), secret.to_u64());
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // --- DFLT: TTLock, broken oracle-guided via structural analysis --------
    let secret = SecretKey::from_u64(0b010, 3);
    let locked = TtLock::new(3).lock(&original, &secret)?;
    println!("\nlocked with TTLock, secret key k3k2k1 = {secret}");
    let oracle = Oracle::new(original.clone())?;
    let report = KrattAttack::new().attack_oracle_guided(&locked.circuit, &oracle)?;
    match &report.outcome {
        ThreatOutcome::ExactKey(key) => {
            println!(
                "KRATT (oracle-guided, {:?}) recovered key = {key} with {} oracle queries",
                report.path,
                oracle.queries()
            );
            assert_eq!(key.to_u64(), secret.to_u64());
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // The correct key restores the original function.
    let unlocked = locked.apply_key(&secret)?;
    assert!(kratt_netlist::sim::exhaustively_equivalent(
        &original, &unlocked
    )?);
    println!("\ncorrect key verified: locked circuit + secret key == original circuit");
    Ok(())
}
