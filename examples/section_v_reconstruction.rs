//! The paper's §V discussion end to end: locking schemes whose restore unit
//! lives in read-proof hardware (SFLL-Flex, row-activated LUT locking) hide
//! the key from every attack — but KRATT's structural analysis still recovers
//! every *protected pattern*, and the original circuit is rebuilt by adding
//! those patterns back into the functionality-stripped circuit with a
//! comparator and XOR logic.
//!
//! Run with `cargo run --example section_v_reconstruction`.

use kratt::extraction::extract_locked_subcircuit;
use kratt::og::{recover_protected_patterns, StructuralAnalysisConfig};
use kratt::reconstruct::reconstruct_original_from_patterns;
use kratt::removal::remove_locking_unit;
use kratt_attacks::Oracle;
use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_locking::{LockedCircuit, LockingTechnique, LutLock, SecretKey, SfllFlex};
use kratt_netlist::sim::exhaustively_equivalent;
use kratt_netlist::Circuit;

fn recover_and_rebuild(
    original: &Circuit,
    locked: &LockedCircuit,
) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "\n=== {} ({} key bits) ===",
        locked.technique,
        locked.key_width()
    );

    // Step 1: logic removal strips the (conceptually hidden) restore unit.
    let artifacts = remove_locking_unit(&locked.circuit)?;
    println!(
        "critical signal `{}`; {} protected primary inputs",
        artifacts.critical_signal,
        artifacts.protected_inputs().len()
    );

    // Steps 3 + 6–7: extract the locked subcircuit and recover every stripped
    // pattern with the oracle.
    let subcircuit = extract_locked_subcircuit(&artifacts)?;
    let oracle = Oracle::new(original.clone())?;
    let patterns = recover_protected_patterns(
        &artifacts,
        &subcircuit,
        &oracle,
        &StructuralAnalysisConfig::default(),
    )?;
    println!(
        "recovered {} protected pattern(s) with {} oracle queries:",
        patterns.len(),
        oracle.queries()
    );
    for pattern in &patterns {
        let rendered: String = pattern
            .iter()
            .rev()
            .map(|(_, bit)| if *bit { '1' } else { '0' })
            .collect();
        println!("  protected inputs = {rendered}");
    }

    // §V reconstruction: comparator-per-pattern, OR-reduced, XORed back in.
    let rebuilt = reconstruct_original_from_patterns(&artifacts, &patterns)?;
    let equivalent = exhaustively_equivalent(original, &rebuilt)?;
    println!("reconstructed circuit equivalent to the original: {equivalent}");
    assert!(equivalent);
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = ripple_carry_adder(4)?;
    println!("host circuit: {original}");

    // SFLL-Flex protecting two 4-bit patterns (8 key bits).
    let secret = SecretKey::from_bits(vec![true, false, true, false, false, true, true, false]);
    let flex = SfllFlex::new(4, 2).lock(&original, &secret)?;
    recover_and_rebuild(&original, &flex)?;

    // Row-activated LUT locking with 3 address bits (8 key bits = the LUT
    // truth table); protect addresses 2 and 7.
    let secret = SecretKey::from_u64(0b1000_0100, 8);
    let lut = LutLock::new(3).lock(&original, &secret)?;
    recover_and_rebuild(&original, &lut)?;

    println!("\nEven though the key itself stays hidden (the restore table is assumed to sit in");
    println!("read-proof hardware), the adversary walks away with a functionally identical");
    println!("netlist — exactly the §V conclusion of the paper.");
    Ok(())
}
