//! Interchange formats: `.bench`, structural Verilog, DIMACS and QDIMACS.
//!
//! The original KRATT tool lives in an ecosystem of external tools — locked
//! benchmarks arrive as `.bench` files, synthesis tools speak Verilog, and
//! the SAT/QBF instances are handed to CryptoMiniSat/DepQBF as DIMACS and
//! QDIMACS. This example locks a small circuit and round-trips it through all
//! four formats, showing how a user would plug real benchmark files or
//! external solvers into the reproduction.
//!
//! Run with `cargo run --example interchange_formats`.

use kratt::removal::remove_locking_unit;
use kratt_benchmarks::small::majority;
use kratt_locking::{LockingTechnique, SarLock, SecretKey};
use kratt_netlist::sim::exhaustively_equivalent;
use kratt_netlist::{bench, verilog};
use kratt_qbf::ExistsForallSolver;
use kratt_sat::cnf::{ClauseSink, Cnf};
use kratt_sat::{Encoder, Lit};
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Lock the running example with SARLock.
    let original = majority();
    let secret = SecretKey::from_u64(0b100, 3);
    let locked = SarLock::new(3).lock(&original, &secret)?;
    println!("locked circuit: {}", locked.circuit);

    // --- .bench and structural Verilog round trips -------------------------
    let bench_text = bench::write(&locked.circuit)?;
    println!(
        "\n--- locked netlist in .bench ({} lines) ---",
        bench_text.lines().count()
    );
    let reparsed_bench = bench::parse(locked.circuit.name(), &bench_text)?;
    assert!(exhaustively_equivalent(&locked.circuit, &reparsed_bench)?);

    let verilog_text = verilog::write(&locked.circuit)?;
    println!(
        "--- locked netlist in Verilog ({} lines) ---",
        verilog_text.lines().count()
    );
    println!(
        "{}",
        verilog_text.lines().take(8).collect::<Vec<_>>().join("\n")
    );
    println!("  ...");
    let reparsed_verilog = verilog::parse(&verilog_text)?;
    assert!(exhaustively_equivalent(&locked.circuit, &reparsed_verilog)?);
    println!("both round trips preserve the locked function");

    // --- DIMACS export of the Tseitin encoding ------------------------------
    let mut cnf = Cnf::new();
    let encoding = Encoder::new().encode(&mut cnf, &locked.circuit, &HashMap::new());
    // Pin the locked output to 1 just to make the instance non-trivial.
    cnf.add_clause([Lit::positive(encoding.outputs()[0])]);
    let dimacs = cnf.to_dimacs_with_comments(&["locked majority, output forced to 1"]);
    println!(
        "\n--- DIMACS CNF: {} variables, {} clauses (feed to any SAT solver) ---",
        cnf.num_vars(),
        cnf.num_clauses()
    );
    println!("{}", dimacs.lines().take(4).collect::<Vec<_>>().join("\n"));
    println!("  ...");
    assert!(Cnf::from_dimacs(&dimacs)?.solve().is_sat());

    // --- QDIMACS export of KRATT's ∃K ∀PPI instance -------------------------
    let artifacts = remove_locking_unit(&locked.circuit)?;
    let unit = &artifacts.unit;
    let solver = ExistsForallSolver::new(
        unit,
        &unit.key_inputs(),
        &unit.data_inputs(),
        unit.outputs()[0],
        false,
    );
    let qdimacs = solver.to_qdimacs();
    println!(
        "\n--- QDIMACS (the instance the paper hands to DepQBF), {} lines ---",
        qdimacs.lines().count()
    );
    println!(
        "{}",
        qdimacs.lines().take(10).collect::<Vec<_>>().join("\n")
    );
    println!("  ...");

    // The in-tree 2QBF engine solves the same instance and finds the secret.
    let result = solver.solve();
    let witness = result.witness().expect("SARLock unit is breakable");
    let recovered: u64 = (0..3)
        .map(|i| u64::from(witness[&format!("keyinput{i}")]) << i)
        .sum();
    println!(
        "in-tree 2QBF solver recovers key {recovered:03b} (secret {})",
        secret
    );
    assert_eq!(recovered, secret.to_u64());
    Ok(())
}
