//! Integration tests of the `kratt-lint` subsystem across the pipeline:
//! lint-clean circuits stay free of error-level diagnostics through the
//! lock → resynthesise → AIG round-trip chain, and every key bit the static
//! ternary engine reports as "forced" is confirmed by a complete SAT
//! equivalence check against the planted instance.

use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_benchmarks::random_logic::RandomLogicSpec;
use kratt_lint::{lint_circuit, lint_locked, Severity};
use kratt_locking::{scheme_registry, LockedCircuit, SchemeSpec, SecretKey};
use kratt_netlist::aig::Aig;
use kratt_netlist::Circuit;
use kratt_synth::{check_equivalence, resynthesize, EquivalenceResult, ResynthesisOptions};
use proptest::prelude::*;

fn host(seed: u64) -> Circuit {
    RandomLogicSpec::new(format!("host{seed}"), 10, 3, 40, seed).generate()
}

/// Locks the adder host with the named registry scheme at small key sizes.
fn lock_adder(spec_text: &str) -> (Circuit, LockedCircuit) {
    let mut original = ripple_carry_adder(4).unwrap();
    original.set_name("rca4");
    let spec: SchemeSpec = spec_text.parse().unwrap();
    let locked = scheme_registry()
        .lock(&spec, &original)
        .unwrap_or_else(|e| panic!("{spec_text}: locking failed: {e}"));
    (original, locked)
}

/// The key-forced-bit findings of a report, decoded as (bit index, forced
/// value) from the diagnostic's location (`keyinput<N>`) and message.
fn forced_bits(report: &kratt_lint::LintReport) -> Vec<(usize, bool)> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "key-forced-bit")
        .map(|d| {
            let name = d.location.as_deref().expect("forced bits carry a net");
            let index: usize = name
                .strip_prefix("keyinput")
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("`{name}` is not a key input"));
            let value = if d.message.contains("forced to 1") {
                true
            } else {
                assert!(d.message.contains("forced to 0"), "{}", d.message);
                false
            };
            (index, value)
        })
        .collect()
}

/// SAT-confirms one forced-bit verdict: the planted secret with that bit
/// flipped must be refuted by the complete equivalence check, so the bit
/// really is statically pinned and the verdict is not a false positive.
fn confirm_forced_bit(original: &Circuit, locked: &LockedCircuit, bit: usize, value: bool) {
    assert_eq!(
        locked.secret.bits()[bit],
        value,
        "bit {bit}: the forced value must match the planted secret"
    );
    let mut flipped = locked.secret.bits().to_vec();
    flipped[bit] = !value;
    let unlocked = locked
        .apply_key(&SecretKey::from_bits(flipped))
        .expect("applying the flipped key");
    assert!(
        matches!(
            check_equivalence(original, &unlocked).unwrap(),
            EquivalenceResult::NotEquivalent(_)
        ),
        "bit {bit}: flipping a statically forced bit must break the lock"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A lint-clean random host stays free of error-level diagnostics as it
    /// moves through the pipeline: after locking with any registry scheme,
    /// after AIG-based resynthesis of the locked netlist, and after a full
    /// `Circuit → Aig → Circuit` round trip. (Warnings and infos are
    /// expected — SFLT-style schemes legitimately trip the security lints.)
    #[test]
    fn clean_circuits_stay_error_free_through_the_pipeline(
        seed in 0u64..500,
        scheme_index in 0usize..10,
    ) {
        let original = host(seed);
        prop_assert!(!lint_circuit(&original).has_errors(), "the host itself must be clean");

        let registry = scheme_registry();
        let names = registry.names();
        let spec: SchemeSpec = names[scheme_index % names.len()].parse().unwrap();
        let spec = spec.or_key_bits(4);
        let locked = registry.lock(&spec, &original).unwrap();
        let report = lint_locked(&original, &locked.circuit);
        prop_assert!(
            !report.has_errors(),
            "{spec}: locking introduced error-level lint:\n{}",
            report.render_text()
        );

        let variant = resynthesize(&locked.circuit, &ResynthesisOptions::with_seed(seed)).unwrap();
        let report = lint_locked(&original, &variant);
        prop_assert!(
            !report.has_errors(),
            "{spec}: resynthesis introduced error-level lint:\n{}",
            report.render_text()
        );

        let round_tripped = Aig::from_circuit(&variant).unwrap().to_circuit().unwrap();
        let report = lint_locked(&original, &round_tripped);
        prop_assert!(
            !report.has_errors(),
            "{spec}: the AIG round trip introduced error-level lint:\n{}",
            report.render_text()
        );
    }
}

/// The static ternary engine finds forced key bits on SARLock (whose
/// key-only comparator hard-wires the secret), every verdict matches the
/// planted secret, and each one is confirmed by the complete SAT
/// equivalence check: flipping a forced bit breaks the lock, while the
/// planted secret still unlocks it.
#[test]
fn sarlock_forced_bits_are_sat_confirmed() {
    let (original, locked) = lock_adder("sarlock:k=4,seed=3");
    let report = lint_locked(&original, &locked.circuit);
    let forced = forced_bits(&report);
    assert!(
        !forced.is_empty(),
        "the ternary engine must find at least one forced bit on SARLock:\n{}",
        report.render_text()
    );
    for &(bit, value) in &forced {
        confirm_forced_bit(&original, &locked, bit, value);
    }
    let unlocked = locked.apply_key(&locked.secret).unwrap();
    assert!(
        check_equivalence(&original, &unlocked)
            .unwrap()
            .is_equivalent(),
        "the planted secret must still unlock the instance"
    );
}

/// Corpus sweep over every registry scheme: no scheme trips error-level
/// lint, and every "statically forced" verdict the security lints emit —
/// on any scheme, not just SARLock — survives SAT confirmation. Zero false
/// "forced" verdicts is the contract that keeps the lint usable as a
/// pre-attack triage signal.
#[test]
fn no_registry_scheme_draws_a_false_forced_verdict() {
    let specs = [
        "sarlock:k=4",
        "antisat:k=4",
        "caslock:k=4",
        "genantisat:k=4",
        "ttlock:k=4",
        "cac:k=4",
        "sfll-hd:k=4,h=1",
        "sfll-flex:bits=3,patterns=2",
        "lutlock:addr=3",
        "rll:k=4",
    ];
    let mut forced_total = 0;
    for spec in specs {
        let (original, locked) = lock_adder(spec);
        let report = lint_locked(&original, &locked.circuit);
        assert_eq!(
            report.count(Severity::Error),
            0,
            "{spec}: registry schemes must lint error-free:\n{}",
            report.render_text()
        );
        for (bit, value) in forced_bits(&report) {
            confirm_forced_bit(&original, &locked, bit, value);
            forced_total += 1;
        }
    }
    assert!(
        forced_total >= 1,
        "the corpus sweep must surface at least one (confirmed) forced bit"
    );
}
