//! Cross-validation of the dataflow-backed static analyses against their
//! ground-truth counterparts:
//!
//! * the AIG-side SCOPE kernel ([`ScopePlan`]) must produce bit-identical
//!   feature vectors — and therefore identical key-bit guesses — to the
//!   legacy resynthesis kernel on every Table-I host × registry scheme
//!   combination;
//! * every warning-level verdict the new dataflow lint rules emit on the
//!   registry corpus must survive SAT/equivalence confirmation — zero
//!   false verdicts is the contract that keeps the lints usable as
//!   pre-attack triage.

use kratt_attacks::{Attack, AttackRequest, Budget, ScopeAttack, ScopePlan};
use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_benchmarks::table1_circuits;
use kratt_lint::lint_locked;
use kratt_locking::{scheme_registry, LockedCircuit, SchemeSpec};
use kratt_netlist::transform::set_inputs_constant;
use kratt_netlist::{Circuit, NetId};
use kratt_sat::{Encoder, Lit, Solver, Var};
use kratt_synth::check_equivalence;
use std::collections::HashMap;

/// The ten-scheme corpus at cross-validation key sizes.
const SPECS: [&str; 10] = [
    "sarlock:k=4",
    "antisat:k=4",
    "caslock:k=4",
    "genantisat:k=4",
    "ttlock:k=4",
    "cac:k=4",
    "sfll-hd:k=4,h=1",
    "sfll-flex:bits=3,patterns=2",
    "lutlock:addr=3",
    "rll:k=4",
];

fn lock(spec_text: &str, original: &Circuit) -> LockedCircuit {
    let spec: SchemeSpec = spec_text.parse().unwrap();
    scheme_registry()
        .lock(&spec, original)
        .unwrap_or_else(|e| panic!("{spec_text}: locking failed: {e}"))
}

/// The dataflow replay and the legacy resynthesis agree feature-for-feature
/// on every key-bit cofactor of every Table-I host × scheme instance — and
/// hence the two SCOPE engines make identical guesses.
#[test]
fn scope_kernels_agree_on_every_table1_host_and_scheme() {
    for row in table1_circuits(0.05) {
        for spec in SPECS {
            let locked = lock(spec, &row.circuit);
            let plan = ScopePlan::new(&locked.circuit).unwrap();
            for &key in &locked.circuit.key_inputs() {
                for value in [false, true] {
                    let replayed = plan.features(&[(key, value)]);
                    let resynthesised =
                        ScopeAttack::resynthesis_features(&locked.circuit, key, value).unwrap();
                    assert_eq!(
                        replayed,
                        resynthesised,
                        "{}/{spec}: kernels disagree on {}={}",
                        row.name,
                        locked.circuit.net_name(key),
                        u8::from(value)
                    );
                }
            }
            let names = locked.circuit.key_input_names();
            let request =
                AttackRequest::oracle_less(&locked.circuit).with_budget(Budget::unlimited());
            let fast = ScopeAttack::new().execute(&request).unwrap();
            let legacy = ScopeAttack::resynthesis().execute(&request).unwrap();
            assert_eq!(
                fast.outcome.as_guess(&names),
                legacy.outcome.as_guess(&names),
                "{}/{spec}: the engines guessed different keys",
                row.name
            );
        }
    }
}

/// The output position of `oname` in a (simplified) circuit.
fn output_index(circuit: &Circuit, oname: &str) -> usize {
    circuit
        .outputs()
        .iter()
        .position(|&n| circuit.net_name(n) == oname)
        .unwrap_or_else(|| panic!("output `{oname}` survives the cofactor rebuild"))
}

/// The text between the first pair of backticks of a lint message.
fn backticked(message: &str) -> &str {
    let start = message.find('`').expect("the message names a net") + 1;
    let end = start + message[start..].find('`').expect("closing backtick");
    &message[start..end]
}

/// Whether `output = target` is satisfiable in the circuit (some input
/// assignment produces the value).
fn output_can_be(circuit: &Circuit, oname: &str, target: bool) -> bool {
    let mut solver = Solver::new();
    let encoder = Encoder::new();
    let enc = encoder.encode(&mut solver, circuit, &HashMap::new());
    let out = enc.outputs()[output_index(circuit, oname)];
    solver.add_clause([if target {
        Lit::positive(out)
    } else {
        Lit::negative(out)
    }]);
    solver.solve().is_sat()
}

/// SAT-confirms one `key-unate-output` verdict: for a monotone
/// non-decreasing (non-increasing) output there is no input assignment
/// where the `key = 0` cofactor is 1 and the `key = 1` cofactor is 0
/// (respectively the transpose), so the miter must be UNSAT.
fn confirm_unate(locked: &Circuit, key: NetId, oname: &str, non_decreasing: bool) {
    let c0 = set_inputs_constant(locked, &[(key, false)]).unwrap();
    let c1 = set_inputs_constant(locked, &[(key, true)]).unwrap();
    let mut solver = Solver::new();
    let encoder = Encoder::new();
    let e0 = encoder.encode(&mut solver, &c0, &HashMap::new());
    let shared: HashMap<String, Var> = e0.inputs().iter().cloned().collect();
    let e1 = encoder.encode(&mut solver, &c1, &shared);
    let out0 = e0.outputs()[output_index(&c0, oname)];
    let out1 = e1.outputs()[output_index(&c1, oname)];
    // Ask for the forbidden lane: a fall on a rising key bit (or a rise on
    // a falling one).
    let (high, low) = if non_decreasing {
        (out0, out1)
    } else {
        (out1, out0)
    };
    solver.add_clause([Lit::positive(high)]);
    solver.add_clause([Lit::negative(low)]);
    assert!(
        solver.solve().is_unsat(),
        "output `{oname}` is not monotone in `{}` — false unateness verdict",
        locked.net_name(key)
    );
}

/// SAT-confirms one `ternary-cofactor-constant` verdict: under
/// `key = pin` the output is `constant` for every input (the complement is
/// UNSAT), while the opposite cofactor still takes both values.
fn confirm_cofactor_constant(locked: &Circuit, key: NetId, oname: &str, constant: bool, pin: bool) {
    let pinned = set_inputs_constant(locked, &[(key, pin)]).unwrap();
    assert!(
        !output_can_be(&pinned, oname, !constant),
        "output `{oname}` is not constant {} under `{}` = {} — false verdict",
        u8::from(constant),
        locked.net_name(key),
        u8::from(pin)
    );
    let opposite = set_inputs_constant(locked, &[(key, !pin)]).unwrap();
    assert!(
        output_can_be(&opposite, oname, false) && output_can_be(&opposite, oname, true),
        "output `{oname}` is constant under both values of `{}` — the \
         data-dependence half of the verdict is false",
        locked.net_name(key)
    );
}

/// Equivalence-confirms one `odc-dead-key-gate` verdict: with the masking
/// bit pinned, the two cofactors of the masked key bit realise the same
/// function on every output.
fn confirm_odc(locked: &Circuit, masked: NetId, mask: NetId, value: bool) {
    let low = set_inputs_constant(locked, &[(mask, value), (masked, false)]).unwrap();
    let high = set_inputs_constant(locked, &[(mask, value), (masked, true)]).unwrap();
    assert!(
        check_equivalence(&low, &high).unwrap().is_equivalent(),
        "`{}` still matters under `{}` = {} — false ODC verdict",
        locked.net_name(masked),
        locked.net_name(mask),
        u8::from(value)
    );
}

/// Confirms every warning-level verdict of the new dataflow rules in one
/// report against the circuit it was issued on; returns the confirmation
/// count per rule id. The probability detector is informational (a
/// heuristic profile, not a claim about the function) and is validated by
/// the soundness property suite instead.
fn confirm_new_rule_verdicts(
    circuit: &Circuit,
    report: &kratt_lint::LintReport,
) -> HashMap<&'static str, usize> {
    let mut confirmed: HashMap<&'static str, usize> = HashMap::new();
    for d in &report.diagnostics {
        let location = d.location.as_deref();
        match d.rule {
            "key-unate-output" => {
                let key = circuit
                    .find_net(location.expect("unate verdicts carry the key"))
                    .unwrap();
                let oname = backticked(&d.message).to_string();
                let non_decreasing = d.message.contains("non-decreasing");
                assert!(
                    non_decreasing || d.message.contains("non-increasing"),
                    "unparsable direction in `{}`",
                    d.message
                );
                confirm_unate(circuit, key, &oname, non_decreasing);
                *confirmed.entry("key-unate-output").or_default() += 1;
            }
            "ternary-cofactor-constant" => {
                let key = circuit
                    .find_net(location.expect("cofactor verdicts carry the key"))
                    .unwrap();
                let oname = backticked(&d.message).to_string();
                let constant = d.message.contains("is constant 1");
                let pin = d.message.contains("this key bit is 1");
                confirm_cofactor_constant(circuit, key, &oname, constant, pin);
                *confirmed.entry("ternary-cofactor-constant").or_default() += 1;
            }
            "odc-dead-key-gate" => {
                let masked = circuit
                    .find_net(location.expect("ODC verdicts carry the masked key"))
                    .unwrap();
                let mask = circuit.find_net(backticked(&d.message)).unwrap();
                let value = d.message.contains("is 1:");
                confirm_odc(circuit, masked, mask, value);
                *confirmed.entry("odc-dead-key-gate").or_default() += 1;
            }
            _ => {}
        }
    }
    confirmed
}

/// Sweeps the registry corpus: whatever the new rules report must survive
/// confirmation — zero false verdicts. (The XOR-perturb/restore registry
/// schemes are binate in every key bit by construction, so silence is the
/// expected — and verified-correct — outcome on most of them.)
#[test]
fn registry_corpus_draws_no_false_dataflow_verdicts() {
    let mut original = ripple_carry_adder(4).unwrap();
    original.set_name("rca4");
    for spec in SPECS {
        let locked = lock(spec, &original);
        let report = lint_locked(&original, &locked.circuit);
        confirm_new_rule_verdicts(&locked.circuit, &report);
    }
}

/// Scheme-shaped fixtures where each new rule has something to find: a
/// MUX-style LUT lock (unate configuration bits), a key bit gating another
/// key's cone (ODC), and a key bit gating an output outright (cofactor
/// constant). Every verdict is SAT/equivalence-confirmed.
#[test]
fn new_lint_rule_verdicts_are_sat_confirmed_on_fixtures() {
    use kratt_netlist::GateType;

    // Classical MUX-LUT lock: out = (a AND k1) OR (NOT a AND k0) — the
    // configuration bits are positive unate.
    let mut lut = Circuit::new("mux_lut");
    let a = lut.add_input("a").unwrap();
    let k0 = lut.add_input("keyinput0").unwrap();
    let k1 = lut.add_input("keyinput1").unwrap();
    let na = lut.add_gate(GateType::Not, "na", &[a]).unwrap();
    let hi = lut.add_gate(GateType::And, "hi", &[a, k1]).unwrap();
    let lo = lut.add_gate(GateType::And, "lo", &[na, k0]).unwrap();
    let out = lut.add_gate(GateType::Or, "out", &[hi, lo]).unwrap();
    lut.mark_output(out);

    // One key gating another key's comparison into the output: under
    // keyinput0 = 0 the keyinput1 cone is an observability don't-care.
    let mut gatedkey = Circuit::new("key_gated_key");
    let x0 = gatedkey.add_input("x0").unwrap();
    let x1 = gatedkey.add_input("x1").unwrap();
    let g0 = gatedkey.add_input("keyinput0").unwrap();
    let g1 = gatedkey.add_input("keyinput1").unwrap();
    let func = gatedkey.add_gate(GateType::And, "func", &[x0, x1]).unwrap();
    let cmp = gatedkey.add_gate(GateType::Xor, "cmp", &[x1, g1]).unwrap();
    let gate = gatedkey
        .add_gate(GateType::And, "gate", &[g0, cmp])
        .unwrap();
    let out = gatedkey
        .add_gate(GateType::Or, "out", &[func, gate])
        .unwrap();
    gatedkey.mark_output(out);

    // A key bit that gates the output outright: constant 0 under one
    // cofactor, data-dependent under the other.
    let mut gatedout = Circuit::new("gated_output");
    let y0 = gatedout.add_input("x0").unwrap();
    let y1 = gatedout.add_input("x1").unwrap();
    let gk = gatedout.add_input("keyinput0").unwrap();
    let data = gatedout.add_gate(GateType::And, "data", &[y0, y1]).unwrap();
    let out = gatedout
        .add_gate(GateType::And, "out", &[data, gk])
        .unwrap();
    gatedout.mark_output(out);

    let mut totals: HashMap<&'static str, usize> = HashMap::new();
    for fixture in [&lut, &gatedkey, &gatedout] {
        let report = kratt_lint::lint_circuit(fixture);
        for (rule, count) in confirm_new_rule_verdicts(fixture, &report) {
            *totals.entry(rule).or_default() += count;
        }
    }
    for rule in [
        "key-unate-output",
        "odc-dead-key-gate",
        "ternary-cofactor-constant",
    ] {
        assert!(
            totals.get(rule).copied().unwrap_or(0) >= 1,
            "`{rule}` must fire (and confirm) on its fixture; got {totals:?}"
        );
    }
}
