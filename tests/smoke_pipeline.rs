//! Smoke test of the paper's Fig. 4 flow on a real ISCAS'85 host: lock a
//! small benchmark analog with an SFLT, run `KrattAttack`, and check the
//! recovered key against the planted secret. This keeps the tier-1 gate
//! honest — it exercises removal, the 2QBF step and key reconstruction
//! end-to-end instead of just proving the workspace compiles.

use kratt::{KrattAttack, KrattPath};
use kratt_attacks::Oracle;
use kratt_benchmarks::IscasCircuit;
use kratt_locking::{LockingTechnique, SarLock, SecretKey, TtLock};
use kratt_synth::check_equivalence;

/// Oracle-less path on an SFLT (steps 1–2 of Fig. 4): removal finds the
/// critical signal, the QBF formulation pins the exact secret.
#[test]
fn kratt_ol_recovers_sarlock_key_on_iscas_host() {
    let original = IscasCircuit::C2670.generate_scaled(0.02);
    let secret = SecretKey::from_u64(0x2CA5, 16);
    let locked = SarLock::new(16)
        .lock(&original, &secret)
        .expect("host is lockable");

    let report = KrattAttack::new()
        .attack_oracle_less(&locked.circuit)
        .expect("flow applies");

    assert_eq!(
        report.path,
        KrattPath::Qbf,
        "SARLock must fall to the QBF step"
    );
    let key = report.outcome.exact_key().expect("QBF must return a key");
    assert_eq!(
        key.to_u64(),
        secret.to_u64(),
        "recovered key differs from the secret"
    );

    // The recovered key must actually unlock the netlist, not just match.
    let unlocked = locked.apply_key(key).expect("key applies");
    assert!(
        check_equivalence(&original, &unlocked)
            .expect("comparable")
            .is_equivalent(),
        "unlocked circuit is not equivalent to the original"
    );
}

/// Oracle-guided path on a DFLT (steps 1–3 and 6–7 of Fig. 4): the QBF step
/// rejects the restore unit, structural analysis recovers the secret from
/// the oracle.
#[test]
fn kratt_og_recovers_ttlock_key_on_iscas_host() {
    let original = IscasCircuit::C5315.generate_scaled(0.02);
    let secret = SecretKey::from_u64(0x5A, 8);
    let locked = TtLock::new(8)
        .lock(&original, &secret)
        .expect("host is lockable");

    let oracle = Oracle::new(original).expect("oracle builds");
    let report = KrattAttack::new()
        .attack_oracle_guided(&locked.circuit, &oracle)
        .expect("flow applies");

    assert_eq!(
        report.path,
        KrattPath::StructuralAnalysis,
        "TTLock must fall to the structural-analysis step"
    );
    let key = report
        .outcome
        .exact_key()
        .expect("structural analysis must return a key");
    assert_eq!(
        key.to_u64(),
        secret.to_u64(),
        "recovered key differs from the secret"
    );
}
