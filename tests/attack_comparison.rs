//! Integration tests reproducing the comparative *shape* of the paper's
//! evaluation: the baselines struggle exactly where KRATT does not.

use kratt::KrattAttack;
use kratt_attacks::{
    score_guess, AppSatAttack, Attack, AttackBudget, AttackRequest, Budget, DoubleDipAttack,
    Oracle, SatAttack, ScopeAttack,
};
use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_locking::{LockingTechnique, RandomXorLocking, SarLock, SecretKey, TtLock};
use std::time::Duration;

fn short_budget() -> AttackBudget {
    AttackBudget {
        time_limit: Some(Duration::from_secs(2)),
        max_iterations: 12,
        ..AttackBudget::default()
    }
}

/// Table III shape: the SAT-based family breaks traditional locking but runs
/// out of budget on a point-function SFLT, while KRATT recovers the key.
#[test]
fn sat_family_times_out_on_sarlock_but_kratt_does_not() {
    let original = ripple_carry_adder(5).unwrap();
    let secret = SecretKey::from_u64(0x2d5 & 0x7ff, 11);
    let locked = SarLock::new(11).lock(&original, &secret).unwrap();

    let oracle_sat = Oracle::new(original.clone()).unwrap();
    let oracle_ddip = Oracle::new(original.clone()).unwrap();
    for (name, run) in [
        (
            "SAT",
            SatAttack::new()
                .execute(
                    &AttackRequest::oracle_guided(&locked.circuit, &oracle_sat)
                        .with_budget(short_budget()),
                )
                .unwrap(),
        ),
        (
            "DDIP",
            DoubleDipAttack::new()
                .execute(
                    &AttackRequest::oracle_guided(&locked.circuit, &oracle_ddip)
                        .with_budget(short_budget()),
                )
                .unwrap(),
        ),
    ] {
        assert!(
            run.outcome.is_out_of_budget(),
            "{name} should run out of budget"
        );
    }

    // AppSAT settles on an approximately correct key instead (its design
    // goal), which still is not the secret.
    let oracle_appsat = Oracle::new(original.clone()).unwrap();
    let appsat = AppSatAttack::new()
        .execute(
            &AttackRequest::oracle_guided(&locked.circuit, &oracle_appsat)
                .with_budget(short_budget()),
        )
        .unwrap();
    if let Some(key) = appsat.outcome.exact_key() {
        assert_ne!(
            key.to_u64(),
            secret.to_u64(),
            "AppSAT finding the exact key is unexpected"
        );
    }

    // KRATT (oracle-less!) pins the exact key through the QBF formulation.
    let kratt = KrattAttack::new()
        .attack_oracle_less(&locked.circuit)
        .unwrap();
    assert_eq!(kratt.outcome.exact_key().unwrap().to_u64(), secret.to_u64());
}

/// Sanity check in the other direction: on non-resilient locking the SAT
/// attack succeeds quickly — the baselines are real attacks, not strawmen.
#[test]
fn sat_attack_is_effective_on_traditional_locking() {
    let original = ripple_carry_adder(5).unwrap();
    let secret = SecretKey::from_u64(0b1011_0101, 8);
    let locked = RandomXorLocking::new(8, 3)
        .lock(&original, &secret)
        .unwrap();
    let oracle = Oracle::new(original.clone()).unwrap();
    let report = SatAttack::new()
        .execute(&AttackRequest::oracle_guided(&locked.circuit, &oracle))
        .unwrap();
    let key = report
        .outcome
        .exact_key()
        .expect("RLL must fall to the SAT attack")
        .clone();
    let unlocked = locked.apply_key(&key).unwrap();
    assert!(
        kratt_synth::check_equivalence(&original, &unlocked)
            .unwrap()
            .is_equivalent(),
        "SAT attack returned a non-functional key"
    );
}

/// Table II shape on a DFLT: standalone SCOPE's guesses are no better than
/// KRATT's modified-subcircuit guesses.
#[test]
fn kratt_ol_guess_is_at_least_as_good_as_standalone_scope_on_ttlock() {
    let original = ripple_carry_adder(5).unwrap();
    let secret = SecretKey::from_u64(0b0110_1011, 8);
    let locked = TtLock::new(8).lock(&original, &secret).unwrap();

    let scope = ScopeAttack::new()
        .execute(&AttackRequest::oracle_less(&locked.circuit).with_budget(Budget::unlimited()))
        .unwrap();
    let scope_guess = scope.outcome.as_guess(&locked.circuit.key_input_names());
    let (scope_cdk, _) = score_guess(&locked, &scope_guess);

    let kratt = KrattAttack::new()
        .attack_oracle_less(&locked.circuit)
        .unwrap();
    let key_names: Vec<String> = locked
        .circuit
        .key_inputs()
        .iter()
        .map(|&n| locked.circuit.net_name(n).to_string())
        .collect();
    let (kratt_cdk, kratt_dk) = score_guess(&locked, &kratt.outcome.as_guess(&key_names));
    assert!(kratt_dk > 0);
    assert!(
        kratt_cdk + 2 >= scope_cdk,
        "KRATT-OL ({kratt_cdk}) should not be clearly worse than SCOPE ({scope_cdk})"
    );
}

/// KRATT under the OG model needs dramatically fewer oracle queries than the
/// SAT attack family spends before giving up.
#[test]
fn kratt_og_query_count_is_modest() {
    let original = ripple_carry_adder(5).unwrap();
    let secret = SecretKey::from_u64(0b110010, 6);
    let locked = TtLock::new(6).lock(&original, &secret).unwrap();
    let oracle = Oracle::new(original.clone()).unwrap();
    let report = KrattAttack::new()
        .attack_oracle_guided(&locked.circuit, &oracle)
        .unwrap();
    assert_eq!(
        report.outcome.exact_key().unwrap().to_u64(),
        secret.to_u64()
    );
    assert!(
        oracle.queries() <= 1 << 7,
        "expected a modest number of oracle queries, got {}",
        oracle.queries()
    );
}
