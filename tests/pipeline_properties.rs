//! Property-based integration tests over the whole pipeline.

use kratt::KrattAttack;
use kratt_attacks::Oracle;
use kratt_benchmarks::random_logic::RandomLogicSpec;
use kratt_locking::{AntiSat, Cac, CasLock, LockingTechnique, SarLock, SecretKey, TtLock};
use kratt_synth::{check_equivalence, resynthesize, ResynthesisOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn host(seed: u64) -> kratt_netlist::Circuit {
    RandomLogicSpec::new(format!("host{seed}"), 12, 4, 60, seed).generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any SFLT on any random host: KRATT-OL recovers a functionally correct
    /// key, before and after resynthesis.
    #[test]
    fn kratt_ol_always_unlocks_sflts(seed in 0u64..1000, technique_index in 0usize..3, resynth: bool) {
        let original = host(seed);
        let technique: Box<dyn LockingTechnique> = match technique_index {
            0 => Box::new(SarLock::new(6)),
            1 => Box::new(AntiSat::new(6)),
            _ => Box::new(CasLock::new(6)),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let secret = SecretKey::random(&mut rng, technique.key_bits());
        let locked = technique.lock(&original, &secret).unwrap();
        let netlist = if resynth {
            resynthesize(&locked.circuit, &ResynthesisOptions::with_seed(seed)).unwrap()
        } else {
            locked.circuit.clone()
        };
        let report = KrattAttack::new().attack_oracle_less(&netlist).unwrap();
        let key = report.outcome.exact_key().expect("SFLT must fall to the QBF path").clone();
        let unlocked = kratt_locking::common::apply_key(&netlist, &key).unwrap();
        prop_assert!(check_equivalence(&original, &unlocked).unwrap().is_equivalent());
    }

    /// Any DFLT on any random host: KRATT-OG recovers the exact secret.
    #[test]
    fn kratt_og_always_recovers_dflt_secrets(seed in 0u64..1000, use_cac: bool) {
        let original = host(seed.wrapping_add(77));
        let technique: Box<dyn LockingTechnique> = if use_cac {
            Box::new(Cac::new(5))
        } else {
            Box::new(TtLock::new(5))
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let secret = SecretKey::random(&mut rng, technique.key_bits());
        let locked = technique.lock(&original, &secret).unwrap();
        let oracle = Oracle::new(original).unwrap();
        let report = KrattAttack::new().attack_oracle_guided(&locked.circuit, &oracle).unwrap();
        let key = report.outcome.exact_key().expect("DFLT must fall to structural analysis");
        prop_assert_eq!(key.to_u64(), secret.to_u64());
    }

    /// Locking then unlocking with the secret is always the identity, even
    /// through a `.bench` round trip.
    #[test]
    fn lock_roundtrip_is_identity(seed in 0u64..1000, technique_index in 0usize..4) {
        let original = host(seed.wrapping_add(31));
        let technique: Box<dyn LockingTechnique> = match technique_index {
            0 => Box::new(SarLock::new(6)),
            1 => Box::new(AntiSat::new(6)),
            2 => Box::new(TtLock::new(6)),
            _ => Box::new(Cac::new(6)),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let secret = SecretKey::random(&mut rng, technique.key_bits());
        let locked = technique.lock(&original, &secret).unwrap();
        let text = kratt_netlist::bench::write(&locked.circuit).unwrap();
        let reparsed = kratt_netlist::bench::parse("roundtrip", &text).unwrap();
        let unlocked = kratt_locking::common::apply_key(&reparsed, &secret).unwrap();
        prop_assert!(check_equivalence(&original, &unlocked).unwrap().is_equivalent());
    }
}
