//! Crash-resume drill for the campaign service: a run halted mid-sweep
//! journals only the cells it finished; re-running against the same journal
//! replays those verdicts (zero re-attacks) and attacks only the holes, and
//! the merged report is semantically identical to an uninterrupted run.

use kratt_suite::attacks::{Budget, Campaign, CampaignBuilder, CampaignHost, CorpusCache};
use kratt_suite::locking::scheme_registry;
use std::path::Path;
use std::time::Duration;

fn host(width: usize, name: &str) -> kratt_suite::netlist::Circuit {
    let mut circuit = kratt_suite::benchmarks::arith::ripple_carry_adder(width).unwrap();
    circuit.set_name(name);
    circuit
}

/// The 2 schemes × 2 hosts × 2 attacks grid of the scheme-campaign test,
/// single-worker so the halt point is deterministic.
fn grid() -> CampaignBuilder {
    Campaign::builder()
        .spec_strs(["sarlock", "rll:k=4,seed=2"])
        .hosts([
            CampaignHost::new("rca5", host(5, "rca5"), 4),
            CampaignHost::new("rca6", host(6, "rca6"), 4),
        ])
        .attacks(["sat", "kratt"])
        .budget(Budget::with_time_limit(Duration::from_secs(20)))
        .workers(1)
}

#[test]
fn interrupted_campaign_resumes_from_the_journal() {
    let dir = std::env::temp_dir().join("kratt_campaign_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("journal.jsonl");
    let _ = std::fs::remove_file(&journal);

    let attack_registry = kratt_suite::kratt::attack_registry();
    let scheme_registry = scheme_registry();

    // Leg 1: the "crash" — halt after 3 of the 8 cells commit.
    let halted = grid()
        .journal(&journal)
        .halt_after_cells(3)
        .build()
        .unwrap();
    let report1 = halted
        .run(&attack_registry, &scheme_registry, &CorpusCache::new())
        .unwrap();
    assert_eq!(report1.cells.len(), 8);
    assert_eq!(report1.attacked(), 3);
    assert_eq!(report1.interrupted(), 5);
    assert!(Path::new(&journal).is_file(), "the journal must persist");

    // Leg 2: the resume — same journal, no halt. Every cell leg 1 finished
    // replays from disk; only the 5 holes are scheduled.
    let resumed = grid().journal(&journal).build().unwrap();
    let report2 = resumed
        .run(&attack_registry, &scheme_registry, &CorpusCache::new())
        .unwrap();
    assert_eq!(report2.cells.len(), 8);
    assert_eq!(
        report2.replayed, 3,
        "leg 1's verdicts must replay, not re-run"
    );
    assert_eq!(
        report2.scheduler.jobs, 5,
        "only unrecorded cells may be scheduled"
    );
    assert_eq!(report2.attacked(), 5);
    assert_eq!(report2.interrupted(), 0);
    // The cells leg 1 attacked are exactly the replayed ones of leg 2.
    for (cell1, cell2) in report1.cells.iter().zip(&report2.cells) {
        assert_eq!(
            cell2.replayed,
            cell1.outcome.is_some(),
            "{}/{}/{}: a finished cell replays, an interrupted one re-attacks",
            cell2.host,
            cell2.scheme,
            cell2.attack
        );
    }

    // The merged report is semantically the one an uninterrupted run yields.
    let uninterrupted = grid().build().unwrap();
    let report3 = uninterrupted
        .run(&attack_registry, &scheme_registry, &CorpusCache::new())
        .unwrap();
    assert_eq!(report2.cells.len(), report3.cells.len());
    for (merged, reference) in report2.cells.iter().zip(&report3.cells) {
        assert_eq!(merged.host, reference.host);
        assert_eq!(merged.scheme, reference.scheme);
        assert_eq!(merged.attack, reference.attack);
        assert_eq!(
            merged.outcome, reference.outcome,
            "{}/{}/{}",
            merged.host, merged.scheme, merged.attack
        );
        assert_eq!(merged.verdict, reference.verdict);
        assert_eq!(merged.key, reference.key);
        assert_eq!(merged.cdk, reference.cdk);
        assert_eq!(merged.dk, reference.dk);
    }
    assert_eq!(report2.unverified_exact_claims(), 0);

    let _ = std::fs::remove_file(&journal);
}
