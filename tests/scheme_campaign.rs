//! Integration test of the scheme registry + campaign pipeline: specs are
//! parsed, hosts are locked on the fly (once per instance, content-addressed),
//! attacks run through the harness, and every claimed key is verified against
//! the planted secret.

use kratt_suite::attacks::{Budget, Campaign, CampaignHost, CorpusCache, Verdict};
use kratt_suite::locking::{scheme_registry, SchemeSpec};
use kratt_suite::netlist::bench;
use std::time::Duration;

fn host(width: usize, name: &str) -> kratt_suite::netlist::Circuit {
    kratt_suite::benchmarks::arith::ripple_carry_adder(width)
        .unwrap()
        .renamed(name)
}

trait Renamed {
    fn renamed(self, name: &str) -> Self;
}

impl Renamed for kratt_suite::netlist::Circuit {
    fn renamed(mut self, name: &str) -> Self {
        self.set_name(name);
        self
    }
}

#[test]
fn scheme_registry_locks_reproducibly_through_the_umbrella() {
    let registry = scheme_registry();
    let host = host(6, "rca6");
    let spec: SchemeSpec = "antisat:k=6,seed=3".parse().unwrap();
    let first = registry.lock(&spec, &host).unwrap();
    let second = registry.lock(&spec, &host).unwrap();
    assert_eq!(
        bench::write(&first.circuit).unwrap(),
        bench::write(&second.circuit).unwrap(),
        "a seeded spec re-locks to a bit-identical netlist"
    );
    // The planted key restores the original function.
    let unlocked = first.apply_key(&first.secret).unwrap();
    assert!(kratt_suite::netlist::sim::exhaustively_equivalent(&host, &unlocked).unwrap());
}

#[test]
fn campaign_closes_the_lock_attack_verify_loop() {
    let campaign = Campaign::builder()
        .spec_strs(["sarlock", "rll:k=4,seed=2"])
        .hosts([
            CampaignHost::new("rca5", host(5, "rca5"), 4),
            CampaignHost::new("rca6", host(6, "rca6"), 4),
        ])
        .attacks(["sat", "kratt"])
        .budget(Budget::with_time_limit(Duration::from_secs(20)))
        .build()
        .unwrap();
    let report = campaign
        .run(
            &kratt_suite::kratt::attack_registry(),
            &scheme_registry(),
            &CorpusCache::new(),
        )
        .unwrap();

    assert_eq!(report.cells.len(), 8);
    assert_eq!(
        report.locked_instances, 4,
        "two attacks per instance must share one lock"
    );
    // The SAT attack breaks every 4-bit instance well inside the budget and
    // each claimed key must independently verify against the planted secret.
    for cell in report.cells.iter().filter(|cell| cell.attack == "sat") {
        assert_eq!(
            cell.outcome,
            Some("exact-key"),
            "{}/{}",
            cell.host,
            cell.scheme
        );
        assert_eq!(cell.verdict, Verdict::Verified, "{}", cell.scheme);
        assert_eq!(cell.cdk, cell.dk);
    }
    assert_eq!(report.unverified_exact_claims(), 0);

    // Renders stay machine- and human-readable.
    let json = report.to_json();
    assert!(json.contains("\"locked_instances\":4"));
    assert!(json.contains("\"verdict\":\"verified\""));
    assert!(report.render().contains("verified"));
}
