//! Integration tests of the cut/NPN rewriting pass and the AIG-native DIP
//! engine against the full scheme registry: `Aig::rewrite` must preserve the
//! function of every locked host (exhaustively packed-swept up to 12 inputs,
//! fraig-proved above), and the gate-level and AIG-native CEGAR engines must
//! agree on the recovered key across the Table-I × scheme grid.

use kratt_attacks::{Attack, AttackRequest, Budget, DipEngineKind, Oracle, SatAttack};
use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_benchmarks::iscas::IscasCircuit;
use kratt_benchmarks::random_logic::RandomLogicSpec;
use kratt_locking::{scheme_registry, SchemeSpec};
use kratt_netlist::Aig;
use kratt_synth::{check_equivalence, resynthesize, Effort, ResynthesisOptions};
use proptest::prelude::*;
use std::time::Duration;

/// One spec per registered scheme, all at a 4-bit key so the SAT family
/// exhausts the key space in at most 16 DIPs.
const ALL_SCHEME_SPECS: [&str; 10] = [
    "sarlock:k=4",
    "antisat:k=4",
    "caslock:k=4",
    "genantisat:k=4",
    "ttlock:k=4",
    "cac:k=4",
    "sfll-hd:k=4",
    "sfll-flex:bits=2,patterns=2",
    "lutlock:addr=2",
    "rll:k=4,seed=2",
];

/// Schemes whose planted secret is the *unique* functionally correct key, so
/// both CEGAR engines must land on it exactly. The Anti-SAT family is
/// excluded because its correct-key set is larger than a point, and
/// SFLL-Flex because its cube *set* is order-insensitive (permuting the
/// per-pattern cubes of the key yields an equivalent key), so two engines
/// may legitimately pick different members.
const UNIQUE_KEY_SCHEMES: [&str; 6] = ["sarlock", "ttlock", "cac", "sfll-hd", "lutlock", "rll"];

/// Bit-parallel exhaustive equivalence over every input pattern; bounded to
/// 12 inputs (4096 patterns = 64 packed words).
fn exhaustively_equivalent_aigs(a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.input_names(), b.input_names(), "interfaces must match");
    assert_eq!(a.output_names(), b.output_names(), "interfaces must match");
    let n = a.num_inputs();
    assert!(n <= 12, "exhaustive sweep is bounded to 12 inputs, got {n}");
    let patterns = 1u64 << n;
    let mut base = 0u64;
    while base < patterns {
        let lanes = (patterns - base).min(64) as usize;
        let words: Vec<u64> = (0..n)
            .map(|i| {
                let mut w = 0u64;
                for lane in 0..lanes {
                    w |= ((base + lane as u64) >> i & 1) << lane;
                }
                w
            })
            .collect();
        let mask = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        let va = a.eval_words(&words);
        let vb = b.eval_words(&words);
        for (oa, ob) in a.outputs().iter().zip(b.outputs()) {
            if (a.lit_word(&va, *oa) ^ b.lit_word(&vb, *ob)) & mask != 0 {
                return false;
            }
        }
        base += lanes as u64;
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every registered scheme on random hosts: lowering the locked circuit
    /// and rewriting it must preserve the function on every (data, key)
    /// pattern and never grow the network.
    #[test]
    fn rewrite_preserves_every_scheme_locked_host(seed in 0u64..50, scheme in 0usize..10) {
        // 7 data inputs + the 4 key inputs keeps the locked circuit inside
        // the 12-input exhaustive-sweep bound.
        let host = RandomLogicSpec::new(format!("host{seed}"), 7, 3, 40, seed).generate();
        let spec: SchemeSpec = ALL_SCHEME_SPECS[scheme].parse().unwrap();
        let locked = scheme_registry().lock(&spec, &host).unwrap();
        let aig = Aig::from_circuit(&locked.circuit).unwrap();
        prop_assert!(aig.num_inputs() <= 12);
        let rewritten = aig.rewrite();
        prop_assert!(
            exhaustively_equivalent_aigs(&aig, &rewritten),
            "{} on seed {seed} changed function",
            ALL_SCHEME_SPECS[scheme]
        );
        prop_assert!(
            rewritten.num_ands() <= aig.stats().ands,
            "{} on seed {seed} grew: {} -> {}",
            ALL_SCHEME_SPECS[scheme],
            aig.stats().ands,
            rewritten.num_ands()
        );
        prop_assert!(rewritten.check_invariants().is_empty());
    }
}

/// Above the exhaustive bound the fraig pipeline carries the proof: high
/// effort resynthesis (whose scrambler is `Aig::rewrite`) of every scheme's
/// lock of a 17-input host must stay equivalent under `check_equivalence`.
#[test]
fn rewrite_is_fraig_equivalent_on_locked_hosts_above_the_sweep_bound() {
    let registry = scheme_registry();
    let host = ripple_carry_adder(8).unwrap();
    for spec_str in ALL_SCHEME_SPECS {
        let spec: SchemeSpec = spec_str.parse().unwrap();
        let locked = registry.lock(&spec, &host).unwrap();
        assert!(
            Aig::from_circuit(&locked.circuit).unwrap().num_inputs() > 12,
            "{spec_str}: host must exceed the exhaustive bound"
        );
        let variant = resynthesize(
            &locked.circuit,
            &ResynthesisOptions::with_seed(1).effort(Effort::High),
        )
        .unwrap();
        assert!(
            check_equivalence(&locked.circuit, &variant)
                .unwrap()
                .is_equivalent(),
            "{spec_str}: high-effort rewrite changed the locked function"
        );
    }
}

/// The Table-I × scheme grid: on every cell where an engine finishes, its key
/// must unlock the host (and equal the planted secret on unique-key schemes,
/// which makes the two engines' keys identical); the AIG engine must succeed
/// on every cell the gate engine does, and on the two tractable hosts both
/// engines must break every scheme. c6288's multiplier array produces
/// genuinely hard CEGAR instances, so out-of-budget is tolerated there — but
/// only as long as the AIG engine still dominates.
#[test]
fn dip_engines_agree_across_the_table1_scheme_grid() {
    let registry = scheme_registry();
    for circuit in IscasCircuit::ALL {
        let host = circuit.generate_scaled(0.02);
        // c6288's grid cells mostly time the *gate* engine out at any budget
        // worth waiting for; a short fuse keeps the test honest and fast.
        let (hard_host, budget_secs) = match circuit {
            IscasCircuit::C6288 => (true, 4),
            _ => (false, 10),
        };
        let mut aig_successes = 0usize;
        for spec_str in ALL_SCHEME_SPECS {
            let spec: SchemeSpec = spec_str.parse().unwrap();
            let locked = registry.lock(&spec, &host).unwrap();
            let mut recovered = Vec::new();
            for engine in [DipEngineKind::Gate, DipEngineKind::Aig] {
                let cell = format!("{}/{spec_str}/{}", circuit.name(), engine.name());
                let oracle = Oracle::new(host.clone()).unwrap();
                let budget = Budget {
                    time_limit: Some(Duration::from_secs(budget_secs)),
                    ..Budget::default()
                };
                let run = SatAttack::new()
                    .with_engine(engine)
                    .execute(
                        &AttackRequest::oracle_guided(&locked.circuit, &oracle).with_budget(budget),
                    )
                    .unwrap();
                let key = match run.outcome.exact_key() {
                    Some(key) => key.clone(),
                    None => {
                        assert!(
                            hard_host,
                            "{cell}: expected an exact key, got {}",
                            run.outcome.kind()
                        );
                        recovered.push(None);
                        continue;
                    }
                };
                let unlocked = locked.apply_key(&key).unwrap();
                assert!(
                    check_equivalence(&host, &unlocked).unwrap().is_equivalent(),
                    "{cell}: recovered key does not unlock"
                );
                if UNIQUE_KEY_SCHEMES.contains(&spec.technique()) {
                    assert_eq!(
                        key.to_u64(),
                        locked.secret.to_u64(),
                        "{cell}: unique-key scheme must yield the planted secret"
                    );
                }
                recovered.push(Some(key));
            }
            let (gate_key, aig_key) = (&recovered[0], &recovered[1]);
            assert!(
                aig_key.is_some() || gate_key.is_none(),
                "{}/{spec_str}: the AIG engine must break every cell the gate engine does",
                circuit.name()
            );
            aig_successes += usize::from(aig_key.is_some());
        }
        assert!(
            aig_successes >= if hard_host { 5 } else { ALL_SCHEME_SPECS.len() },
            "{}: AIG engine broke only {aig_successes}/10 schemes",
            circuit.name()
        );
    }
}
