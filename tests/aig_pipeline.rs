//! Integration tests of the AIG core IR across the pipeline: lowering and
//! raising locked netlists keeps them locked, AIG-based resynthesis
//! preserves the planted key for every registry scheme, and the fraig
//! equivalence pipeline proves (and refutes) keys end to end.

use kratt_suite::locking::common::apply_key;
use kratt_suite::locking::{scheme_registry, SchemeSpec};
use kratt_suite::netlist::aig::Aig;
use kratt_suite::netlist::sim::exhaustively_equivalent;
use kratt_suite::netlist::Circuit;
use kratt_suite::synth::{
    check_equivalence, check_equivalence_with_stats, resynthesize, Effort, EquivalenceResult,
    ResynthesisOptions,
};

fn host() -> Circuit {
    let mut c = kratt_suite::benchmarks::arith::ripple_carry_adder(6).unwrap();
    c.set_name("rca6");
    c
}

/// Every registry scheme: lock, resynthesise through the AIG pipeline, and
/// check the planted key still restores the original function exactly.
#[test]
fn aig_resynthesis_preserves_the_planted_key_for_every_scheme() {
    let registry = scheme_registry();
    let original = host();
    for name in registry.names() {
        let spec: SchemeSpec = name.parse().unwrap();
        let spec = spec.or_key_bits(8);
        let locked = registry
            .lock(&spec, &original)
            .unwrap_or_else(|e| panic!("{name}: locking failed: {e}"));
        let variant = resynthesize(
            &locked.circuit,
            &ResynthesisOptions::with_seed(0xA16).effort(Effort::High),
        )
        .unwrap_or_else(|e| panic!("{name}: resynthesis failed: {e}"));
        assert_eq!(
            variant.key_inputs().len(),
            locked.circuit.key_inputs().len(),
            "{name}: resynthesis must keep every key input"
        );
        let unlocked = apply_key(&variant, &locked.secret)
            .unwrap_or_else(|e| panic!("{name}: applying the planted key failed: {e}"));
        assert!(
            exhaustively_equivalent(&original, &unlocked).unwrap(),
            "{name}: planted key no longer unlocks the resynthesised variant"
        );
    }
}

/// Every registry scheme: the locked netlist survives a `Circuit → Aig →
/// Circuit` round trip bit-exactly (checked exhaustively over the full
/// data+key interface).
#[test]
fn locked_netlists_round_trip_through_the_aig() {
    let registry = scheme_registry();
    let original = host();
    for name in registry.names() {
        let spec: SchemeSpec = name.parse().unwrap();
        let spec = spec.or_key_bits(8);
        let locked = registry
            .lock(&spec, &original)
            .unwrap_or_else(|e| panic!("{name}: locking failed: {e}"));
        let aig = Aig::from_circuit(&locked.circuit).unwrap();
        assert_eq!(aig.num_inputs(), locked.circuit.num_inputs());
        let raised = aig.to_circuit().unwrap();
        assert_eq!(
            raised.key_inputs().len(),
            locked.circuit.key_inputs().len(),
            "{name}: raising must keep key inputs"
        );
        assert!(
            exhaustively_equivalent(&locked.circuit, &raised).unwrap(),
            "{name}: AIG round trip changed the locked function"
        );
    }
}

/// The fraig pipeline end to end on the adversarial verification case: a
/// SARLock wrong key corrupts exactly one input pattern, which random
/// simulation never hits — the SAT stage must refute it, while the correct
/// key must be proven equivalent (with the host logic hashing across the
/// miter halves).
#[test]
fn fraig_equivalence_proves_and_refutes_keys() {
    let registry = scheme_registry();
    let original = host();
    let spec: SchemeSpec = "sarlock:k=8".parse().unwrap();
    let locked = registry.lock(&spec, &original).unwrap();

    let good = locked.apply_key(&locked.secret).unwrap();
    let (result, stats) = check_equivalence_with_stats(&original, &good, None, None).unwrap();
    assert!(result.is_equivalent(), "planted key must verify");
    assert!(
        stats.aig_nodes > 0 && !stats.fell_back_to_miter,
        "shared hashing plus the sweep must close the proof: {stats:?}"
    );

    let wrong =
        kratt_suite::locking::SecretKey::from_u64(locked.secret.to_u64() ^ 1, locked.secret.len());
    let bad = locked.apply_key(&wrong).unwrap();
    match check_equivalence(&original, &bad).unwrap() {
        EquivalenceResult::NotEquivalent(cex) => {
            // The counterexample must be the one corrupted pattern.
            let mut pattern = vec![false; original.num_inputs()];
            for (pos, &net) in original.inputs().iter().enumerate() {
                let name = original.net_name(net);
                if let Some(&(_, value)) = cex.iter().find(|(n, _)| n == name) {
                    pattern[pos] = value;
                }
            }
            let expected = original.simulate(&pattern).unwrap();
            let got = bad.simulate(&pattern).unwrap();
            assert_ne!(expected, got, "counterexample must distinguish the pair");
        }
        other => panic!("a one-pattern corruption must be refuted, got {other:?}"),
    }
}

/// Resynthesis stays deterministic per seed across the whole registry: the
/// same seed re-produces a bit-identical netlist, different seeds diverge.
#[test]
fn aig_resynthesis_is_seed_deterministic_on_locked_hosts() {
    let registry = scheme_registry();
    let original = host();
    let spec: SchemeSpec = "ttlock:k=8".parse().unwrap();
    let locked = registry.lock(&spec, &original).unwrap();
    let options = ResynthesisOptions::with_seed(42).effort(Effort::Medium);
    let first = resynthesize(&locked.circuit, &options).unwrap();
    let second = resynthesize(&locked.circuit, &options).unwrap();
    let render = kratt_suite::netlist::bench::write(&first).unwrap();
    assert_eq!(
        render,
        kratt_suite::netlist::bench::write(&second).unwrap(),
        "same seed must reproduce the identical netlist"
    );
    let other = resynthesize(&locked.circuit, &ResynthesisOptions::with_seed(43)).unwrap();
    assert_ne!(
        render,
        kratt_suite::netlist::bench::write(&other).unwrap(),
        "different seeds must diverge structurally"
    );
}
