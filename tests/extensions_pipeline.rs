//! Cross-crate integration tests for the extension features: the §V locking
//! schemes and their reconstruction flow, the FALL baseline, the synthesis
//! passes (SAT sweeping, technology mapping), the interchange formats
//! (Verilog, DIMACS, QDIMACS) and the corruption metrics — each exercised on
//! top of the same lock → transform → attack pipeline as the paper's
//! experiments.

use kratt::extraction::extract_locked_subcircuit;
use kratt::og::{recover_protected_patterns, StructuralAnalysisConfig};
use kratt::reconstruct::reconstruct_original_from_patterns;
use kratt::removal::remove_locking_unit;
use kratt::{KrattAttack, ThreatOutcome};
use kratt_attacks::{score_guess, Attack, AttackRequest, FallAttack, Oracle};
use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_benchmarks::small::majority;
use kratt_locking::metrics::{corruption_profile, exact_corrupted_patterns};
use kratt_locking::{LockingTechnique, LutLock, SarLock, SecretKey, SfllFlex, SfllHd, TtLock};
use kratt_netlist::sim::exhaustively_equivalent;
use kratt_netlist::{bench, verilog};
use kratt_qbf::ExistsForallSolver;
use kratt_sat::cnf::Cnf;
use kratt_sat::Encoder;
use kratt_synth::passes::{map_to_cell_library, sat_sweep, CellLibrary, SatSweepOptions};
use kratt_synth::{check_equivalence, resynthesize, Effort, ResynthesisOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// The §V pipeline on SFLL-Flex: resynthesise the locked netlist (as the
/// paper does with Genus), recover every stripped pattern through the oracle,
/// and rebuild a circuit equivalent to the original.
#[test]
fn sfll_flex_reconstruction_survives_resynthesis() {
    let original = ripple_carry_adder(3).unwrap();
    let secret = SecretKey::from_bits(vec![true, true, false, false, false, true]);
    let locked = SfllFlex::new(3, 2).lock(&original, &secret).unwrap();
    let netlist = resynthesize(
        &locked.circuit,
        &ResynthesisOptions::with_seed(11).effort(Effort::Medium),
    )
    .unwrap();

    let artifacts = remove_locking_unit(&netlist).unwrap();
    let subcircuit = extract_locked_subcircuit(&artifacts).unwrap();
    let oracle = Oracle::new(original.clone()).unwrap();
    let patterns = recover_protected_patterns(
        &artifacts,
        &subcircuit,
        &oracle,
        &StructuralAnalysisConfig::default(),
    )
    .unwrap();
    // The AIG-based resynthesis can shift the critical-signal cut so the
    // stripped cone is larger than the restore unit alone; the recovery then
    // finds every pattern the larger FSC disagrees on (at least the two
    // ground-truth stripped patterns). What must hold exactly is the
    // reconstruction: patching all recovered patterns restores the original.
    assert!(
        patterns.len() >= 2,
        "both stripped patterns must be recovered, got {}",
        patterns.len()
    );
    let rebuilt = reconstruct_original_from_patterns(&artifacts, &patterns).unwrap();
    assert!(exhaustively_equivalent(&original, &rebuilt).unwrap());
}

/// The §V pipeline on LUT locking, with the locked netlist additionally
/// mapped onto a NAND2+INV cell library before the attack.
#[test]
fn lut_lock_reconstruction_survives_technology_mapping() {
    let original = ripple_carry_adder(3).unwrap();
    let secret = SecretKey::from_u64(0b0010_1000, 8);
    let locked = LutLock::new(3).lock(&original, &secret).unwrap();
    let mapped = map_to_cell_library(&locked.circuit, CellLibrary::Nand2Inv).unwrap();

    let artifacts = remove_locking_unit(&mapped).unwrap();
    let subcircuit = extract_locked_subcircuit(&artifacts).unwrap();
    let oracle = Oracle::new(original.clone()).unwrap();
    let patterns = recover_protected_patterns(
        &artifacts,
        &subcircuit,
        &oracle,
        &StructuralAnalysisConfig::default(),
    )
    .unwrap();
    assert_eq!(patterns.len(), 2);
    let rebuilt = reconstruct_original_from_patterns(&artifacts, &patterns).unwrap();
    assert!(exhaustively_equivalent(&original, &rebuilt).unwrap());
}

/// FALL and KRATT agree on TTLock, and KRATT still succeeds where FALL's
/// structural preconditions vanish (the locked subcircuit of an SFLT).
#[test]
fn fall_and_kratt_agree_on_ttlock() {
    let original = ripple_carry_adder(4).unwrap();
    let secret = SecretKey::from_u64(0xA5, 8);
    let locked = TtLock::new(8).lock(&original, &secret).unwrap();
    let oracle = Oracle::new(original.clone()).unwrap();

    let fall = FallAttack::new()
        .execute(&AttackRequest::oracle_guided(&locked.circuit, &oracle))
        .unwrap();
    assert_eq!(
        fall.outcome.exact_key().map(|k| k.to_u64()),
        Some(secret.to_u64())
    );

    let oracle = Oracle::new(original).unwrap();
    let kratt = KrattAttack::new()
        .attack_oracle_guided(&locked.circuit, &oracle)
        .unwrap();
    assert_eq!(
        kratt.outcome.exact_key().map(|k| k.to_u64()),
        Some(secret.to_u64())
    );
}

/// The full synthesis stack — resynthesis, SAT sweeping and technology
/// mapping — neither changes the function nor stops KRATT's QBF path from
/// recovering the SARLock key.
#[test]
fn kratt_breaks_sarlock_after_the_full_synthesis_stack() {
    let original = ripple_carry_adder(4).unwrap();
    let secret = SecretKey::from_u64(0x9C, 8);
    let locked = SarLock::new(8).lock(&original, &secret).unwrap();

    let resynthesised = resynthesize(
        &locked.circuit,
        &ResynthesisOptions::with_seed(23).effort(Effort::High),
    )
    .unwrap();
    let swept = sat_sweep(&resynthesised, &SatSweepOptions::default()).unwrap();
    let mapped = map_to_cell_library(&swept, CellLibrary::Nor2Inv).unwrap();
    assert!(check_equivalence(&locked.circuit, &mapped)
        .unwrap()
        .is_equivalent());

    let report = KrattAttack::new().attack_oracle_less(&mapped).unwrap();
    let key = report.outcome.exact_key().expect("QBF path recovers a key");
    let unlocked = kratt_locking::common::apply_key(&mapped, key).unwrap();
    assert!(check_equivalence(&original, &unlocked)
        .unwrap()
        .is_equivalent());
}

/// A locked circuit survives the .bench → Verilog → .bench round trip and the
/// recovered netlist is still attackable.
#[test]
fn locked_netlists_round_trip_through_verilog_and_stay_attackable() {
    let original = majority();
    let secret = SecretKey::from_u64(0b110, 3);
    let locked = SarLock::new(3).lock(&original, &secret).unwrap();

    let verilog_text = verilog::write(&locked.circuit).unwrap();
    let from_verilog = verilog::parse(&verilog_text).unwrap();
    assert!(exhaustively_equivalent(&locked.circuit, &from_verilog).unwrap());
    let bench_text = bench::write(&from_verilog).unwrap();
    let from_bench = bench::parse("roundtrip", &bench_text).unwrap();
    assert!(exhaustively_equivalent(&locked.circuit, &from_bench).unwrap());
    assert_eq!(from_bench.key_inputs().len(), 3);

    let report = KrattAttack::new().attack_oracle_less(&from_bench).unwrap();
    assert_eq!(
        report.outcome.exact_key().map(|k| k.to_u64()),
        Some(secret.to_u64())
    );
}

/// The QDIMACS export and the in-tree 2QBF engine describe the same instance:
/// the engine's witness is the secret, and the exported prefix quantifies the
/// key variables existentially.
#[test]
fn qdimacs_export_matches_the_solved_instance() {
    let original = majority();
    let secret = SecretKey::from_u64(0b011, 3);
    let locked = SarLock::new(3).lock(&original, &secret).unwrap();
    let artifacts = remove_locking_unit(&locked.circuit).unwrap();
    let unit = &artifacts.unit;
    let solver = ExistsForallSolver::new(
        unit,
        &unit.key_inputs(),
        &unit.data_inputs(),
        unit.outputs()[0],
        false,
    );
    let text = solver.to_qdimacs();
    assert!(text.lines().any(|l| l.starts_with("p cnf")));
    assert!(
        text.lines()
            .filter(|l| l.starts_with("c exists keyinput"))
            .count()
            == 3
    );
    let witness = solver.solve();
    let witness = witness.witness().expect("SARLock unit is breakable");
    let recovered: u64 = (0..3)
        .map(|i| u64::from(witness[&format!("keyinput{i}")]) << i)
        .sum();
    assert_eq!(recovered, secret.to_u64());
}

/// The DIMACS bridge: a Tseitin-encoded locked circuit solves identically
/// before and after a round trip through the text format.
#[test]
fn dimacs_round_trip_preserves_the_locked_instance() {
    let original = majority();
    let locked = SarLock::new(3)
        .lock(&original, &SecretKey::from_u64(0b001, 3))
        .unwrap();
    let mut cnf = Cnf::new();
    let encoding = Encoder::new().encode(&mut cnf, &locked.circuit, &HashMap::new());
    let parsed = Cnf::from_dimacs(&cnf.to_dimacs()).unwrap();
    assert_eq!(parsed, cnf);
    assert!(parsed.num_vars() >= locked.circuit.num_inputs());
    assert_eq!(encoding.outputs().len(), locked.circuit.num_outputs());
    assert!(parsed.solve().is_sat());
}

/// Corruption metrics across families: point-function SFLTs corrupt exactly
/// one pattern per wrong key, TTLock two, SFLL-HD(h) a larger sphere — and
/// the secret key never corrupts anything, before or after resynthesis.
#[test]
fn corruption_metrics_reflect_the_point_function_hierarchy() {
    let original = ripple_carry_adder(3).unwrap();
    let mut rng = StdRng::seed_from_u64(5);

    // All seven inputs of the 3-bit adder are protected, so the paper's
    // Fig. 2 counts apply exactly: one corrupted pattern per wrong key for
    // the SFLT, two for TTLock.
    let sar = SarLock::new(7)
        .lock(&original, &SecretKey::from_u64(0b1101010, 7))
        .unwrap();
    let tt = TtLock::new(7)
        .lock(&original, &SecretKey::from_u64(0b0010101, 7))
        .unwrap();
    let hd = SfllHd::new(7, 2)
        .lock(&original, &SecretKey::from_u64(0b0110011, 7))
        .unwrap();

    let wrong = SecretKey::from_u64(0b1000111, 7);
    let sar_corrupted = exact_corrupted_patterns(&original, &sar.circuit, &wrong).unwrap();
    let tt_corrupted = exact_corrupted_patterns(&original, &tt.circuit, &wrong).unwrap();
    let hd_corrupted = exact_corrupted_patterns(&original, &hd.circuit, &wrong).unwrap();
    assert_eq!(sar_corrupted, 1);
    assert_eq!(tt_corrupted, 2);
    assert!(hd_corrupted > tt_corrupted);

    // Secret keys stay clean even after resynthesis.
    for locked in [&sar, &tt, &hd] {
        let variant = resynthesize(
            &locked.circuit,
            &ResynthesisOptions::with_seed(2).effort(Effort::Medium),
        )
        .unwrap();
        assert_eq!(
            exact_corrupted_patterns(&original, &variant, &locked.secret).unwrap(),
            0,
            "{}",
            locked.technique
        );
    }

    // The sampled profile agrees with the exact picture: SFLTs/DFLTs have
    // near-zero wrong-key corruption on this host.
    let profile = corruption_profile(&original, &sar, 6, 512, &mut rng).unwrap();
    assert!(profile.mean_error_rate() < 0.1);
    assert_eq!(profile.per_key[0].1, 0.0);
}

/// The paper's §V point: for locking schemes whose restore table is meant to
/// be hidden, KRATT cannot recover the secret key — the oracle-less flow
/// either returns a partial guess (SFLL-Flex, whose restore unit has no
/// stuck-at key) or a provably *wrong* "key" (LUT locking, where the all-zero
/// key does stuck the restore output at 0 but leaves the FSC corrupted).
/// Key recovery failing is exactly why the reconstruction flow exists.
#[test]
fn oracle_less_kratt_cannot_recover_hidden_restore_keys() {
    let original = ripple_carry_adder(4).unwrap();
    let mut rng = StdRng::seed_from_u64(9);

    // SFLL-Flex: the restore unit is an OR of comparators, so neither QBF
    // problem has a solution and the OL path falls back to a partial guess.
    let flex = SfllFlex::new(4, 2);
    let secret = SecretKey::random(&mut rng, flex.key_bits());
    let locked = flex.lock(&original, &secret).unwrap();
    let report = KrattAttack::new()
        .attack_oracle_less(&locked.circuit)
        .unwrap();
    match report.outcome {
        ThreatOutcome::PartialGuess(ref guess) => {
            let (cdk, dk) = score_guess(&locked, guess);
            assert!(dk > 0, "SFLL-Flex: empty guess");
            assert!(cdk <= dk);
        }
        ThreatOutcome::OutOfTime => {}
        ThreatOutcome::ExactKey(ref key) => {
            let unlocked = kratt_locking::common::apply_key(&locked.circuit, key).unwrap();
            assert!(
                !check_equivalence(&original, &unlocked)
                    .unwrap()
                    .is_equivalent(),
                "SFLL-Flex keys must not be recoverable oracle-less"
            );
        }
    }

    // LUT locking: the all-zero key makes the restore LUT constant 0, so the
    // QBF step reports it — but it does not unlock the FSC (unless the secret
    // itself is all-zero). This false positive is the §V out-of-scope case.
    let lut = LutLock::new(3);
    let secret = SecretKey::from_u64(0b0100_0010, lut.key_bits());
    let locked = lut.lock(&original, &secret).unwrap();
    let report = KrattAttack::new()
        .attack_oracle_less(&locked.circuit)
        .unwrap();
    if let ThreatOutcome::ExactKey(ref key) = report.outcome {
        let unlocked = kratt_locking::common::apply_key(&locked.circuit, key).unwrap();
        assert!(
            !check_equivalence(&original, &unlocked)
                .unwrap()
                .is_equivalent(),
            "a reported LUT key must not unlock (the secret is non-trivial)"
        );
    }
}
