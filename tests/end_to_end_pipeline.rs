//! End-to-end integration tests: lock → resynthesise → attack, across crates.

use kratt::{KrattAttack, ThreatOutcome};
use kratt_attacks::{score_guess, Oracle};
use kratt_benchmarks::arith::{array_multiplier, ripple_carry_adder};
use kratt_locking::{
    AntiSat, Cac, CasLock, GenAntiSat, LockingTechnique, SarLock, SecretKey, SfllHd, TtLock,
};
use kratt_synth::{check_equivalence, resynthesize, Effort, ResynthesisOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Locks, resynthesises, then verifies that the stored secret still unlocks
/// the resynthesised netlist (the pipeline the experiment harness relies on).
#[test]
fn resynthesised_locked_circuits_still_unlock_with_the_secret() {
    let original = ripple_carry_adder(5).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let techniques: Vec<Box<dyn LockingTechnique>> = vec![
        Box::new(SarLock::new(8)),
        Box::new(AntiSat::new(8)),
        Box::new(CasLock::new(8)),
        Box::new(GenAntiSat::new(8)),
        Box::new(TtLock::new(8)),
        Box::new(Cac::new(8)),
        Box::new(SfllHd::new(8, 0)),
    ];
    for technique in techniques {
        let secret = SecretKey::random(&mut rng, technique.key_bits());
        let locked = technique.lock(&original, &secret).unwrap();
        let variant = resynthesize(
            &locked.circuit,
            &ResynthesisOptions::with_seed(3).effort(Effort::Medium),
        )
        .unwrap();
        let unlocked = kratt_locking::common::apply_key(&variant, &secret).unwrap();
        assert!(
            check_equivalence(&original, &unlocked)
                .unwrap()
                .is_equivalent(),
            "{}: secret key no longer unlocks after resynthesis",
            technique.kind()
        );
    }
}

/// KRATT's oracle-less QBF path must survive resynthesis of the locked
/// netlist (the locking unit no longer has its textbook shape).
#[test]
fn kratt_ol_breaks_resynthesised_sflts() {
    let original = array_multiplier(5).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let techniques: Vec<Box<dyn LockingTechnique>> = vec![
        Box::new(SarLock::new(8)),
        Box::new(AntiSat::new(8)),
        Box::new(CasLock::new(8)),
    ];
    for technique in techniques {
        let secret = SecretKey::random(&mut rng, technique.key_bits());
        let locked = technique.lock(&original, &secret).unwrap();
        let variant = resynthesize(
            &locked.circuit,
            &ResynthesisOptions::with_seed(11).effort(Effort::High),
        )
        .unwrap();
        let report = KrattAttack::new().attack_oracle_less(&variant).unwrap();
        let key = report
            .outcome
            .exact_key()
            .unwrap_or_else(|| panic!("{}: expected an exact key", technique.kind()))
            .clone();
        let unlocked = kratt_locking::common::apply_key(&variant, &key).unwrap();
        assert!(
            check_equivalence(&original, &unlocked)
                .unwrap()
                .is_equivalent(),
            "{}: recovered key does not unlock the resynthesised netlist",
            technique.kind()
        );
    }
}

/// KRATT's oracle-guided structural analysis must recover the exact secret of
/// resynthesised DFLTs.
#[test]
fn kratt_og_breaks_resynthesised_dflts() {
    let original = ripple_carry_adder(5).unwrap();
    let oracle = Oracle::new(original.clone()).unwrap();
    let mut rng = StdRng::seed_from_u64(21);
    let techniques: Vec<Box<dyn LockingTechnique>> = vec![
        Box::new(TtLock::new(6)),
        Box::new(Cac::new(6)),
        Box::new(SfllHd::new(6, 0)),
    ];
    for technique in techniques {
        let secret = SecretKey::random(&mut rng, technique.key_bits());
        let locked = technique.lock(&original, &secret).unwrap();
        let variant = resynthesize(
            &locked.circuit,
            &ResynthesisOptions::with_seed(5).effort(Effort::Medium),
        )
        .unwrap();
        let report = KrattAttack::new()
            .attack_oracle_guided(&variant, &oracle)
            .unwrap();
        match &report.outcome {
            ThreatOutcome::ExactKey(key) => {
                assert_eq!(
                    key.to_u64(),
                    secret.to_u64(),
                    "{}: recovered key differs from the secret",
                    technique.kind()
                );
            }
            other => panic!("{}: expected an exact key, got {other:?}", technique.kind()),
        }
    }
}

/// The oracle-less DFLT path produces guesses and scores sensibly even after
/// resynthesis (the Table II shape: dk > 0, cdk <= dk).
#[test]
fn kratt_ol_dflt_guesses_score_sensibly() {
    let original = ripple_carry_adder(5).unwrap();
    let secret = SecretKey::from_u64(0b10110100, 8);
    let locked = TtLock::new(8).lock(&original, &secret).unwrap();
    let variant = resynthesize(&locked.circuit, &ResynthesisOptions::with_seed(13)).unwrap();
    let mut relocked = locked.clone();
    relocked.circuit = variant;
    let report = KrattAttack::new()
        .attack_oracle_less(&relocked.circuit)
        .unwrap();
    let key_names: Vec<String> = relocked
        .circuit
        .key_inputs()
        .iter()
        .map(|&n| relocked.circuit.net_name(n).to_string())
        .collect();
    let (cdk, dk) = score_guess(&relocked, &report.outcome.as_guess(&key_names));
    assert!(dk > 0, "expected some deciphered bits");
    assert!(cdk <= dk);
}

/// Writing a locked circuit to `.bench` text and parsing it back must not
/// change what any attack sees.
#[test]
fn bench_round_trip_preserves_attack_results() {
    let original = ripple_carry_adder(4).unwrap();
    let secret = SecretKey::from_u64(0b1100, 4);
    let locked = TtLock::new(4).lock(&original, &secret).unwrap();
    let text = kratt_netlist::bench::write(&locked.circuit).unwrap();
    let reparsed = kratt_netlist::bench::parse("reparsed", &text).unwrap();
    assert_eq!(reparsed.key_inputs().len(), 4);
    let oracle = Oracle::new(original).unwrap();
    let report = KrattAttack::new()
        .attack_oracle_guided(&reparsed, &oracle)
        .unwrap();
    assert_eq!(
        report.outcome.exact_key().unwrap().to_u64(),
        secret.to_u64()
    );
}
