//! Soundness of the kratt-dataflow abstract domains against 64-lane packed
//! simulation: on random gate-soup circuits and on registry-locked
//! instances, no fact any of the five shipped domains reports may
//! contradict the concrete values of [`Aig::eval_words`] — the concrete
//! value always lies in the concretisation of the abstract one.
//!
//! Per domain, "never contradict" concretises to:
//!
//! * **ternary** — a node `Zero`/`One` under a pin set simulates to the
//!   all-zeros / all-ones word whenever the pinned inputs take their pinned
//!   values in every lane.
//! * **support** — flipping the word of one input only changes nodes whose
//!   support contains that input (key bit or data flag).
//! * **unateness** — a node positive (negative) unate in a key bit never
//!   falls (rises) in any lane when that bit rises; independent nodes do
//!   not move at all.
//! * **probability** — the exact probabilities `0.0`/`1.0` are reserved
//!   for structural constants, so such nodes simulate to constant words.
//! * **observability** — an input the backward pass declares unobservable
//!   under a cofactor cannot change any output while the cofactor holds.

use kratt_benchmarks::random_logic::RandomLogicSpec;
use kratt_dataflow::{
    propagate, KeySupport, ObservabilityAnalysis, ProbabilityAnalysis, Ternary, Unateness,
    UnatenessAnalysis,
};
use kratt_locking::{scheme_registry, SchemeSpec};
use kratt_netlist::{Aig, Circuit, GateType, NetId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random gate soup over four data inputs and three key inputs: every
/// gate type in the library, reconvergent fanout, two outputs.
fn random_locked_circuit(seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(format!("soup{seed}"));
    let mut nets: Vec<NetId> = (0..4)
        .map(|i| c.add_input(format!("x{i}")).unwrap())
        .collect();
    for i in 0..3 {
        nets.push(c.add_input(format!("keyinput{i}")).unwrap());
    }
    let binary = [
        GateType::And,
        GateType::Nand,
        GateType::Or,
        GateType::Nor,
        GateType::Xor,
        GateType::Xnor,
    ];
    for g in 0..16 {
        let a = nets[rng.gen_range(0..nets.len())];
        let out = if rng.gen_bool(0.2) {
            c.add_gate(GateType::Not, format!("g{g}"), &[a]).unwrap()
        } else {
            let ty = binary[rng.gen_range(0..binary.len())];
            let b = nets[rng.gen_range(0..nets.len())];
            c.add_gate(ty, format!("g{g}"), &[a, b]).unwrap()
        };
        nets.push(out);
    }
    c.mark_output(*nets.last().unwrap());
    c.mark_output(nets[nets.len() - 3]);
    c
}

/// The input index of every input node, for pinning words by node id.
fn input_index_of(aig: &Aig) -> impl Fn(u32) -> usize + '_ {
    move |node| {
        aig.input_nodes()
            .iter()
            .position(|&n| n == node)
            .expect("a key node is an input node")
    }
}

/// Ternary: under a random pin set, `Zero`/`One` nodes simulate to
/// constant words when the pins hold in every lane.
fn check_ternary(aig: &Aig, rng: &mut StdRng) {
    let index_of = input_index_of(aig);
    let mut pins: Vec<(u32, bool)> = Vec::new();
    for &node in aig.input_nodes() {
        if rng.gen_bool(0.4) {
            pins.push((node, rng.gen_bool(0.5)));
        }
    }
    let values = propagate(aig, &pins);
    let mut words: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
    for &(node, value) in &pins {
        words[index_of(node)] = if value { !0 } else { 0 };
    }
    let sim = aig.eval_words(&words);
    for node in 0..aig.num_nodes() {
        match values[node] {
            Ternary::Zero => assert_eq!(sim[node], 0, "node {node} is abstractly Zero"),
            Ternary::One => assert_eq!(sim[node], !0, "node {node} is abstractly One"),
            Ternary::X => {}
        }
    }
}

/// Support: flipping one input word only moves nodes that list the input
/// in their support (the key bit, or the data flag for non-key inputs).
fn check_support(aig: &Aig, rng: &mut StdRng) {
    let support = KeySupport::compute(aig);
    let index_of = input_index_of(aig);
    let key_index_of: Vec<(usize, usize)> = support
        .keys()
        .enumerate()
        .map(|(k, (node, _))| (k, index_of(node)))
        .collect();
    let words: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
    let base = aig.eval_words(&words);
    // One key input and one data input, when the circuit has them.
    for (key, input) in key_index_of
        .iter()
        .copied()
        .map(|(k, i)| (Some(k), i))
        .chain(
            aig.input_nodes()
                .iter()
                .enumerate()
                .find(|&(_, &node)| !support.keys().any(|(k, _)| k == node))
                .map(|(i, _)| (None, i)),
        )
    {
        let mut flipped = words.clone();
        flipped[input] = !flipped[input];
        let moved = aig.eval_words(&flipped);
        for node in 0..aig.num_nodes() {
            if base[node] == moved[node] {
                continue;
            }
            match key {
                Some(k) => assert!(
                    support.depends_on(node as u32, k),
                    "node {node} moved with key bit {k} outside its support"
                ),
                None => assert!(
                    support.deps(node as u32).data,
                    "node {node} moved with a data input but claims no data dependence"
                ),
            }
        }
    }
}

/// Unateness: per key bit, compare the all-zeros and all-ones cofactor
/// words lane by lane.
fn check_unateness(aig: &Aig, rng: &mut StdRng) {
    let support = KeySupport::compute(aig);
    let unate = UnatenessAnalysis::compute(aig);
    let index_of = input_index_of(aig);
    let words: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
    for (k, (key_node, _)) in support.keys().enumerate() {
        let mut low = words.clone();
        low[index_of(key_node)] = 0;
        let mut high = words.clone();
        high[index_of(key_node)] = !0;
        let w0 = aig.eval_words(&low);
        let w1 = aig.eval_words(&high);
        for node in 0..aig.num_nodes() {
            match unate.of_node(node as u32, k) {
                Unateness::Independent => assert_eq!(
                    w0[node], w1[node],
                    "node {node} moved with key bit {k} it is independent of"
                ),
                Unateness::Positive => assert_eq!(
                    w0[node] & !w1[node],
                    0,
                    "node {node} fell on a rising key bit {k} despite positive unateness"
                ),
                Unateness::Negative => assert_eq!(
                    w1[node] & !w0[node],
                    0,
                    "node {node} rose on a rising key bit {k} despite negative unateness"
                ),
                Unateness::Binate => {}
            }
        }
    }
}

/// Probability: the exact `0.0`/`1.0` are structural constants, so they
/// simulate to constant words under any input words.
fn check_probability(aig: &Aig, rng: &mut StdRng) {
    let p = ProbabilityAnalysis::compute(aig);
    let words: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
    let sim = aig.eval_words(&words);
    for (node, &word) in sim.iter().enumerate() {
        if p.of_node(node as u32) == 0.0 {
            assert_eq!(word, 0, "node {node} has p = 0.0 but is no constant");
        }
        if p.of_node(node as u32) == 1.0 {
            assert_eq!(word, !0, "node {node} has p = 1.0 but is no constant");
        }
    }
}

/// Observability: an *input* the backward pass declares unobservable under
/// a one-bit key cofactor cannot change any output while that cofactor
/// holds in every lane.
fn check_observability(aig: &Aig, rng: &mut StdRng) {
    let support = KeySupport::compute(aig);
    let index_of = input_index_of(aig);
    for (key_node, _) in support.keys() {
        for value in [false, true] {
            let analysis = ObservabilityAnalysis::compute(aig, &[(key_node, value)]);
            let mut words: Vec<u64> = (0..aig.num_inputs()).map(|_| rng.gen()).collect();
            words[index_of(key_node)] = if value { !0 } else { 0 };
            let base = aig.eval_words(&words);
            for (i, &input) in aig.input_nodes().iter().enumerate() {
                if input == key_node || analysis.is_observable(input) {
                    continue;
                }
                let mut flipped = words.clone();
                flipped[i] = !flipped[i];
                let moved = aig.eval_words(&flipped);
                for (&olit, oname) in aig.outputs().iter().zip(aig.output_names()) {
                    assert_eq!(
                        aig.lit_word(&base, olit),
                        aig.lit_word(&moved, olit),
                        "output `{oname}` saw an input declared unobservable under \
                         the key cofactor"
                    );
                }
            }
        }
    }
}

/// Runs every domain check on one AIG with a seeded word generator.
fn check_all_domains(aig: &Aig, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    check_ternary(aig, &mut rng);
    check_support(aig, &mut rng);
    check_unateness(aig, &mut rng);
    check_probability(aig, &mut rng);
    check_observability(aig, &mut rng);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random gate soups: every domain stays sound against packed
    /// simulation.
    #[test]
    fn abstract_facts_never_contradict_packed_simulation(seed in 0u64..1000) {
        let circuit = random_locked_circuit(seed);
        let aig = Aig::from_circuit(&circuit).unwrap();
        check_all_domains(&aig, seed);
    }

    /// Registry-locked random hosts: the locking structure (comparators,
    /// flip signals, restore units) exercises the shapes the lints key on.
    #[test]
    fn locked_registry_instances_are_sound(seed in 0u64..500, scheme_index in 0usize..10) {
        let host = RandomLogicSpec::new(format!("host{seed}"), 8, 2, 30, seed).generate();
        let registry = scheme_registry();
        let names = registry.names();
        let spec: SchemeSpec = names[scheme_index % names.len()].parse().unwrap();
        let spec = spec.or_key_bits(4);
        let locked = registry.lock(&spec, &host).unwrap();
        let aig = Aig::from_circuit(&locked.circuit).unwrap();
        check_all_domains(&aig, seed);
    }
}
