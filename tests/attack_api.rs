//! Conformance suite for the unified attack API: every attack in the full
//! registry is exercised through the same `Attack::execute` surface and must
//! (a) succeed on an appropriately locked small host within budget, (b)
//! return the out-of-budget outcome — not hang, not error — on an
//! already-exhausted budget, and (c) accept exactly the threat models its
//! `supports` claims.

use kratt_attacks::{
    score_guess, AttackError, AttackOutcome, AttackRequest, Budget, Oracle, ThreatModel,
};
use kratt_benchmarks::arith::ripple_carry_adder;
use kratt_locking::{LockedCircuit, LockingTechnique, SarLock, SecretKey, TtLock};
use kratt_netlist::sim::exhaustively_equivalent;
use kratt_netlist::Circuit;

/// The planted secrets of the two conformance hosts.
const SFLT_SECRET: u64 = 0b101;
const DFLT_SECRET: u64 = 0b0110;

/// A small SFLT instance (SARLock with 3 key bits): every oracle-guided
/// attack and the QBF path break it quickly.
fn sflt_host() -> (Circuit, LockedCircuit) {
    let original = ripple_carry_adder(4).unwrap();
    let locked = SarLock::new(3)
        .lock(&original, &SecretKey::from_u64(SFLT_SECRET, 3))
        .unwrap();
    (original, locked)
}

/// A small DFLT instance (TTLock with 4 key bits) for FALL, whose functional
/// analysis targets stripped-functionality locking specifically.
fn dflt_host() -> (Circuit, LockedCircuit) {
    let original = ripple_carry_adder(4).unwrap();
    let locked = TtLock::new(4)
        .lock(&original, &SecretKey::from_u64(DFLT_SECRET, 4))
        .unwrap();
    (original, locked)
}

/// The host each attack is expected to break (FALL needs the DFLT).
fn host_for(attack: &str) -> (Circuit, LockedCircuit) {
    if attack == "fall" {
        dflt_host()
    } else {
        sflt_host()
    }
}

/// Success criterion (a), per attack semantics: exact attacks must produce a
/// functionally correct key, SCOPE must fully decipher the SARLock key from
/// the mask asymmetry, the removal attack must recover the original circuit,
/// and AppSAT must at least settle on a key.
fn assert_success(
    attack: &str,
    run: &kratt_attacks::AttackRun,
    original: &Circuit,
    locked: &LockedCircuit,
) {
    match attack {
        "removal" => {
            let recovered = run
                .outcome
                .recovered_circuit()
                .unwrap_or_else(|| panic!("{attack}: expected a recovered circuit"));
            assert!(
                exhaustively_equivalent(original, recovered).unwrap(),
                "{attack}: recovered circuit differs from the original"
            );
        }
        "scope" | "scope-resynth" => {
            let guess = run
                .outcome
                .as_guess(&kratt_attacks::key_input_names(&locked.circuit));
            let (cdk, dk) = score_guess(locked, &guess);
            assert_eq!(
                (cdk, dk),
                (3, 3),
                "{attack}: SARLock mask asymmetry must decide all bits"
            );
        }
        "appsat" => {
            // AppSAT's design goal is an *approximately* correct key; on a
            // point function the settled key may legitimately be wrong on
            // one protected pattern, so only require that it produced one.
            assert!(
                run.exact_key().is_some(),
                "{attack}: expected a settled key"
            );
        }
        _ => {
            let key = run
                .exact_key()
                .unwrap_or_else(|| panic!("{attack}: expected an exact key, got {:?}", run.outcome))
                .clone();
            let unlocked = locked.apply_key(&key).unwrap();
            assert!(
                exhaustively_equivalent(original, &unlocked).unwrap(),
                "{attack}: recovered key does not unlock the circuit"
            );
        }
    }
}

#[test]
fn every_registered_attack_is_constructible_and_named_consistently() {
    let registry = kratt::attack_registry();
    let names = registry.names();
    for expected in [
        "kratt",
        "sat",
        "double-dip",
        "appsat",
        "fall",
        "removal",
        "scope",
    ] {
        assert!(
            names.contains(&expected),
            "`{expected}` missing from the registry"
        );
    }
    for name in names {
        let attack = registry.build(name).unwrap();
        assert_eq!(
            attack.name(),
            name,
            "registry name and Attack::name must agree"
        );
        assert!(
            ThreatModel::ALL.iter().any(|&model| attack.supports(model)),
            "{name}: must support at least one threat model"
        );
    }
}

#[test]
fn every_attack_recovers_its_planted_target_within_budget() {
    let registry = kratt::attack_registry();
    for name in registry.names() {
        let attack = registry.build(name).unwrap();
        let (original, locked) = host_for(name);
        let oracle = Oracle::new(original.clone()).unwrap();
        let request = AttackRequest::oracle_guided(&locked.circuit, &oracle);
        let run = attack
            .execute(&request)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(run.attack, name);
        assert_eq!(run.threat_model, ThreatModel::OracleGuided);
        assert_success(name, &run, &original, &locked);
    }
}

#[test]
fn a_zero_budget_returns_out_of_budget_instead_of_hanging() {
    let registry = kratt::attack_registry();
    let (original, locked) = sflt_host();
    let oracle = Oracle::new(original).unwrap();
    for name in registry.names() {
        let attack = registry.build(name).unwrap();
        let request =
            AttackRequest::oracle_guided(&locked.circuit, &oracle).with_budget(Budget::zero());
        let run = attack
            .execute(&request)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            run.outcome.is_out_of_budget(),
            "{name}: zero budget must report out-of-budget, got {:?}",
            run.outcome
        );
    }
}

#[test]
fn supports_matches_what_execute_accepts() {
    let registry = kratt::attack_registry();
    let (original, locked) = sflt_host();
    let oracle = Oracle::new(original).unwrap();
    for name in registry.names() {
        let attack = registry.build(name).unwrap();
        for model in ThreatModel::ALL {
            let request = match model {
                ThreatModel::OracleLess => AttackRequest::oracle_less(&locked.circuit),
                ThreatModel::OracleGuided => AttackRequest::oracle_guided(&locked.circuit, &oracle),
            };
            let result = attack.execute(&request);
            if attack.supports(model) {
                assert!(
                    result.is_ok(),
                    "{name}: claims to support {model} but rejected the request: {:?}",
                    result.err()
                );
            } else {
                assert!(
                    matches!(result, Err(AttackError::Unsupported { .. })),
                    "{name}: must reject the unsupported {model} model with Unsupported"
                );
            }
        }
    }
}

#[test]
fn runs_carry_telemetry_and_serialise_to_json() {
    let registry = kratt::attack_registry();
    let (original, locked) = sflt_host();
    let oracle = Oracle::new(original).unwrap();
    let request = AttackRequest::oracle_guided(&locked.circuit, &oracle);
    let run = registry.build("sat").unwrap().execute(&request).unwrap();
    assert!(
        !run.steps.is_empty(),
        "DIP-family runs must report step timings"
    );
    assert!(
        run.oracle_queries > 0,
        "the SAT attack must spend oracle queries"
    );
    let json = run.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"attack\":\"sat\""));
    assert!(json.contains("\"threat_model\":\"oracle-guided\""));
    assert!(json.contains("\"kind\":\"exact-key\""));

    // KRATT's run reports the Fig. 4 steps it actually took.
    let kratt_run = registry.build("kratt").unwrap().execute(&request).unwrap();
    let step_names: Vec<&str> = kratt_run.steps.iter().map(|s| s.name.as_str()).collect();
    assert!(step_names.contains(&"logic-removal"));
    assert!(step_names.contains(&"qbf"));
}

#[test]
fn the_matrix_harness_reproduces_the_comparative_shape() {
    // A miniature Table III: on a wider point function the SAT family runs
    // out of a tiny budget while KRATT's QBF path still pins the key —
    // reproduced here through the parallel harness.
    use kratt_attacks::{Harness, MatrixCase};
    use std::time::Duration;

    let original = ripple_carry_adder(4).unwrap();
    let secret = SecretKey::from_u64(0x16b & 0x1ff, 9);
    let locked = SarLock::new(9).lock(&original, &secret).unwrap();
    let registry = kratt::attack_registry();
    let attacks = vec![
        registry.build("sat").unwrap(),
        registry.build("kratt").unwrap(),
    ];
    let cases = vec![MatrixCase::oracle_guided(
        "adder/SARLock-9",
        locked.circuit,
        original,
    )];
    let budget = Budget {
        time_limit: Some(Duration::from_secs(2)),
        max_iterations: 6,
        ..Budget::default()
    };
    let rows = Harness::with_workers(2).run_matrix(&attacks, &cases, &budget);
    assert_eq!(rows.len(), 2);
    let sat = rows[0].run().expect("sat executes");
    let kratt_run = rows[1].run().expect("kratt executes");
    assert!(
        sat.outcome.is_out_of_budget(),
        "the SAT attack must run out of 6 iterations on a 9-bit point function"
    );
    assert!(
        matches!(kratt_run.outcome, AttackOutcome::ExactKey(_)),
        "KRATT's QBF path must still pin the key"
    );
    assert_eq!(kratt_run.exact_key().unwrap().to_u64(), 0x16b & 0x1ff);
}
