//! Offline stand-in for the parts of [`criterion` 0.5](https://docs.rs/criterion)
//! that the KRATT workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the API subset the workspace's benches call:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size`, `bench_function`, `bench_with_input`, `finish`),
//! [`BenchmarkId::new`], [`Bencher::iter`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It measures plain wall-clock time with a small fixed number of samples
//! and prints one line per benchmark — no warm-up statistics, outlier
//! analysis, plots or HTML reports. When invoked with `--test` (as
//! `cargo test --benches` does for `harness = false` targets) or with
//! `CRITERION_SMOKE=1`, each benchmark body runs exactly once so the
//! benches double as smoke tests.

use std::time::{Duration, Instant};

/// Runs one benchmark body and accumulates its timing.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, calling it `self.iterations` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifies one parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function_name, self.parameter)
    }
}

/// True when the benches should run each body exactly once (smoke mode):
/// under `cargo test --benches` (which passes `--test`) or when
/// `CRITERION_SMOKE=1`.
fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
        || std::env::var("CRITERION_SMOKE").is_ok_and(|v| v == "1")
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let samples = if smoke_mode() { 1 } else { sample_size.max(1) };
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut iterations = 1u64;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed / iterations.max(1) as u32;
        best = best.min(per_iter);
        total += bencher.elapsed;
        iterations = 1;
    }
    println!("bench: {label:<50} best {best:>12.3?}  ({samples} samples, total {total:.3?})");
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Three samples keeps `cargo bench` runtimes sane for the heavy
        // end-to-end attack kernels while still exposing gross regressions.
        Criterion { sample_size: 3 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            sample_size: 3,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Real criterion insists on n >= 10; the shim just bounds the cost.
        self.sample_size = n.clamp(1, 5);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.render());
        let mut g = |b: &mut Bencher| f(b, input);
        run_one(&label, self.sample_size, &mut g);
        self
    }

    pub fn finish(self) {}
}

mod macros {
    /// Declares a function that runs a list of benchmark functions
    /// (shim of `criterion::criterion_group!`; only the simple form).
    #[macro_export]
    macro_rules! criterion_group {
        ($name:ident, $($target:path),+ $(,)?) => {
            pub fn $name() {
                let mut criterion = $crate::Criterion::default();
                $( $target(&mut criterion); )+
            }
        };
    }

    /// Declares the `main` function for a `harness = false` bench target
    /// (shim of `criterion::criterion_main!`).
    #[macro_export]
    macro_rules! criterion_main {
        ($($group:path),+ $(,)?) => {
            fn main() {
                $( $group(); )+
            }
        };
    }
}

/// Opaque value barrier (re-export of `std::hint::black_box`, which is what
/// `criterion::black_box` forwards to on modern toolchains).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut counter = 0u64;
        let mut criterion = Criterion::default();
        criterion.bench_function("counts", |b| b.iter(|| counter += 1));
        assert!(counter > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10);
        let mut hits = 0u32;
        for (label, value) in [("a", 1u32), ("b", 2)] {
            group.bench_with_input(BenchmarkId::new("case", label), &value, |b, &v| {
                b.iter(|| hits += v);
            });
        }
        group.finish();
        assert!(hits >= 3);
    }
}
