//! Type-based strategies for `param: Type` macro parameters.

/// A type whose whole interesting domain can be enumerated (shim of
/// `proptest::arbitrary::Arbitrary` specialised to deterministic
/// enumeration).
pub trait Arbitrary: Sized {
    fn samples() -> Vec<Self>;
}

impl Arbitrary for bool {
    fn samples() -> Vec<bool> {
        vec![false, true]
    }
}

impl Arbitrary for u8 {
    fn samples() -> Vec<u8> {
        (0..=u8::MAX).step_by(5).collect()
    }
}
