//! Value-producing strategies. The shim enumerates deterministically
//! instead of sampling randomly: every strategy yields an evenly spaced,
//! capped walk over its domain.

use std::ops::{Range, RangeInclusive};

/// Maximum number of cases enumerated per strategy (per parameter).
/// Override with the `PROPTEST_CASES` environment variable.
pub fn max_cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

/// A source of test values (shim of `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    /// The deterministic sample set for this strategy, at most `cap` values.
    fn samples_capped(&self, cap: usize) -> Vec<Self::Value>;

    /// The sample set at the default cap.
    fn samples(&self) -> Vec<Self::Value> {
        self.samples_capped(max_cases())
    }
}

/// Evenly spaced indices `0..len`, at most `cap` of them, always including 0
/// (and thereby biasing toward the low end where workspace seeds live).
fn spaced(len: u128, cap: usize) -> impl Iterator<Item = u128> {
    let cap = cap.max(1) as u128;
    let step = len.div_ceil(cap).max(1);
    (0..len).step_by(usize::try_from(step).unwrap_or(usize::MAX).max(1))
}

macro_rules! int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn samples_capped(&self, cap: usize) -> Vec<$t> {
                assert!(self.start < self.end, "empty proptest range");
                let len = self.end as u128 - self.start as u128;
                spaced(len, cap)
                    .map(|off| (self.start as u128 + off) as $t)
                    .collect()
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn samples_capped(&self, cap: usize) -> Vec<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty proptest range");
                let len = end as u128 - start as u128 + 1;
                spaced(len, cap)
                    .map(|off| (start as u128 + off) as $t)
                    .collect()
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);
