//! The error type property-test bodies return.

use std::fmt;

/// Why a single test case failed (shim of
/// `proptest::test_runner::TestCaseError`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion or an explicit `fail`.
    Fail(String),
    /// The case asked to be skipped.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(reason) => write!(f, "{reason}"),
            TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Per-`proptest!` block configuration (shim of
/// `proptest::test_runner::ProptestConfig`). Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Total number of cases to execute per test function.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The effective total-case budget: the configured count, bounded by the
    /// `PROPTEST_CASES` environment override.
    pub fn total_cases(config: &ProptestConfig) -> usize {
        (config.cases as usize)
            .min(crate::strategy::max_cases())
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}
