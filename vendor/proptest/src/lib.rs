//! Offline stand-in for the parts of [`proptest` 1.x](https://docs.rs/proptest)
//! that the KRATT workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the API subset the workspace's property tests call:
//!
//! * the [`proptest!`] macro over functions whose parameters are either
//!   range strategies (`seed in 0u64..100`) or type-based strategies
//!   (`value: bool`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * [`test_runner::TestCaseError`] with its `fail` constructor.
//!
//! Instead of random sampling with shrinking, this shim enumerates each
//! strategy's domain deterministically, capping it at
//! [`strategy::max_cases`] evenly spaced samples (default 64, override
//! with the `PROPTEST_CASES` environment variable). Every workspace
//! property test draws a small integer seed and derives all further
//! randomness itself, so deterministic enumeration gives equal or better
//! coverage than sampling — and failures reproduce without a persistence
//! file.

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. Supports the subset of the real macro's grammar
/// used in this workspace:
///
/// ```ignore
/// proptest::proptest! {
///     /// Doc comment.
///     #[test]
///     fn my_property(seed in 0u64..100, flag: bool) {
///         proptest::prop_assert!(seed < 100);
///     }
/// }
/// ```
///
/// Note the `#[test]` attribute is written by the caller (as with real
/// proptest) and passed through verbatim.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_cap: usize =
                    $crate::test_runner::ProptestConfig::total_cases(&($cfg));
                let mut __proptest_executed: usize = 0;
                $crate::__proptest_body!(__proptest_cap, __proptest_executed, ($($params)*) $body);
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_cap: usize = $crate::strategy::max_cases();
                let mut __proptest_executed: usize = 0;
                $crate::__proptest_body!(__proptest_cap, __proptest_executed, ($($params)*) $body);
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cap:ident, $count:ident, ($var:ident in $strategy:expr $(,)?) $body:block) => {
        for $var in $crate::strategy::Strategy::samples_capped(&($strategy), $cap) {
            if $count >= $cap {
                break;
            }
            $crate::__proptest_exec!($count, $body);
        }
    };
    ($cap:ident, $count:ident, ($var:ident in $strategy:expr, $($rest:tt)+) $body:block) => {
        for $var in $crate::strategy::Strategy::samples_capped(&($strategy), $cap) {
            if $count >= $cap {
                break;
            }
            $crate::__proptest_body!($cap, $count, ($($rest)+) $body);
        }
    };
    ($cap:ident, $count:ident, ($var:ident : $ty:ty $(,)?) $body:block) => {
        for $var in <$ty as $crate::arbitrary::Arbitrary>::samples() {
            if $count >= $cap {
                break;
            }
            $crate::__proptest_exec!($count, $body);
        }
    };
    ($cap:ident, $count:ident, ($var:ident : $ty:ty, $($rest:tt)+) $body:block) => {
        for $var in <$ty as $crate::arbitrary::Arbitrary>::samples() {
            if $count >= $cap {
                break;
            }
            $crate::__proptest_body!($cap, $count, ($($rest)+) $body);
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_exec {
    ($count:ident, $body:block) => {
        $count += 1;
        let __proptest_result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
            (|| {
                $body;
                ::std::result::Result::Ok(())
            })();
        if let ::std::result::Result::Err(__proptest_err) = __proptest_result {
            ::std::panic!("proptest case failed (case {}): {}", $count, __proptest_err);
        }
    };
}

/// Asserts a condition inside a property test, failing the current case
/// (rather than panicking directly) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts two values are not equal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    crate::proptest! {
        /// The macro runs bodies and binds range samples.
        #[test]
        fn range_strategy_bounds(x in 3u64..10) {
            crate::prop_assert!((3..10).contains(&x));
        }

        /// Multiple parameters nest correctly, mixing both strategy kinds.
        #[test]
        fn mixed_parameters(seed in 0u64..5, flag: bool) {
            crate::prop_assert!(seed < 5);
            crate::prop_assert_eq!(flag as u64 * 2, if flag { 2 } else { 0 });
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_assertion_panics() {
        let mut count = 0usize;
        crate::__proptest_exec!(count, {
            crate::prop_assert!(false, "forced failure");
        });
    }

    crate::proptest! {
        #![proptest_config(crate::test_runner::ProptestConfig::with_cases(5))]

        /// The config form caps the TOTAL number of executed cases.
        #[test]
        fn config_caps_total_cases(seed in 0u64..1000, flag: bool) {
            // 5 cases despite a 1000 x 2 domain: the budget check breaks out.
            crate::prop_assert!(seed < 1000);
            let _ = flag;
        }
    }

    #[test]
    fn inclusive_range_samples() {
        let samples = crate::strategy::Strategy::samples(&(1usize..=4));
        assert_eq!(samples, vec![1, 2, 3, 4]);
    }

    #[test]
    fn capped_enumeration_stays_in_range_and_hits_endpoints() {
        let samples = crate::strategy::Strategy::samples(&(0u64..1000));
        assert!(samples.len() <= crate::strategy::max_cases().max(2));
        assert_eq!(samples.first(), Some(&0));
        assert!(samples.iter().all(|&s| s < 1000));
    }
}
