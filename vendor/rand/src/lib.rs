//! Offline stand-in for the parts of [`rand` 0.8](https://docs.rs/rand/0.8)
//! that the KRATT workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the API surface the workspace calls:
//!
//! * [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer
//!   ranges) and [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast and statistically solid for simulation and test workloads. It is
//! **not** a cryptographic generator and does not reproduce the exact
//! stream of the real `rand::rngs::StdRng` (ChaCha12); nothing in the
//! workspace depends on a particular stream, only on determinism per seed.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform value in `[0, span)` via widening multiply (`span == 0` means the
/// full 64-bit domain). The multiply method has a bias below 2^-32 for the
/// span sizes used here, which is irrelevant for simulation workloads.
pub(crate) fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (the `Standard` distribution).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // 53 uniform mantissa bits, the same construction rand 0.8 uses.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&w));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn unsized_rng_bound_works() {
        // Mirrors the `R: Rng + ?Sized` signatures in kratt-locking.
        fn flip<R: Rng + ?Sized>(rng: &mut R) -> bool {
            rng.gen_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = flip(&mut rng);
    }
}
