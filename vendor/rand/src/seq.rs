//! Sequence helpers: shuffling and random selection on slices.

use crate::{uniform_u64, Rng};

/// Extension trait for slices (mirrors `rand::seq::SliceRandom`).
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64(rng, (i + 1) as u64) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_u64(rng, self.len() as u64) as usize])
        }
    }
}
