//! The `Standard` distribution and uniform range sampling.

use crate::{uniform_u64, RngCore};
use std::ops::{Range, RangeInclusive};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution over a type's whole domain
/// (`[0, 1)` for floats).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() >> 63 != 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled from uniformly, consuming the range
/// (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {:?}..{:?}",
                    self.start,
                    self.end
                );
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $u as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(
                    start <= end,
                    "cannot sample empty range {:?}..={:?}",
                    start,
                    end
                );
                let span_minus_one = end.wrapping_sub(start) as $u as u64;
                // span_minus_one + 1 == 0 encodes the full 64-bit domain for
                // uniform_u64, which is exactly what a saturated range means.
                let offset = uniform_u64(rng, span_minus_one.wrapping_add(1));
                start.wrapping_add(offset as $u as $t)
            }
        }
    )*};
}

range_int!(
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    usize => usize,
    i8 => u8,
    i16 => u16,
    i32 => u32,
    i64 => u64,
    isize => usize,
);
